//! Failure injection: the §3.2.2c safety claims.
//!
//! "A misbehaving application will not crash the kernel. … when a used
//! packet buffer chunk is to be recycled, its metadata will be strictly
//! validated and verified by the kernel. Similarly, a misbehaving
//! application will not crash other applications."

use wirecap::chunk::{ChunkId, ChunkMeta};
use wirecap::pool::{RecycleError, RingBufferPool};
use wirecap::WireCapConfig;

fn pool() -> RingBufferPool {
    RingBufferPool::open(0, 0, &WireCapConfig::basic(256, 8, 0))
}

fn captured_meta(p: &mut RingBufferPool) -> ChunkMeta {
    for _ in 0..256 {
        assert!(p.on_dma(0));
    }
    let (metas, _) = p.capture_full();
    metas[0]
}

#[test]
fn forged_chunk_ids_are_rejected_without_corruption() {
    let mut p = pool();
    let good = captured_meta(&mut p);
    for bad_id in [999u32, u32::MAX, 8, 100] {
        let mut forged = good;
        forged.id.chunk_id = bad_id;
        assert_eq!(p.recycle(&forged), Err(RecycleError::BadChunkId));
        assert!(p.is_consistent(), "pool corrupted by forged id {bad_id}");
    }
    // The genuine metadata still works afterwards.
    assert_eq!(p.recycle(&good), Ok(()));
}

#[test]
fn cross_pool_metadata_cannot_free_another_apps_chunks() {
    // Two applications, two pools (different ring ids).
    let mut app1 = RingBufferPool::open(0, 0, &WireCapConfig::basic(256, 8, 0));
    let mut app2 = RingBufferPool::open(0, 1, &WireCapConfig::basic(256, 8, 0));
    let meta1 = captured_meta(&mut app1);
    // App 2 replays app 1's metadata at its own kernel interface.
    assert_eq!(app2.recycle(&meta1), Err(RecycleError::WrongPool));
    assert!(app2.is_consistent());
    // App 1 is unaffected.
    assert_eq!(app1.recycle(&meta1), Ok(()));
}

#[test]
fn double_recycle_is_rejected() {
    let mut p = pool();
    let meta = captured_meta(&mut p);
    assert_eq!(p.recycle(&meta), Ok(()));
    assert_eq!(p.recycle(&meta), Err(RecycleError::NotCaptured));
    assert!(p.is_consistent());
}

#[test]
fn recycling_an_attached_chunk_is_rejected() {
    // An application guessing the id of a chunk still attached to the
    // ring must not be able to free it under the NIC.
    let mut p = pool();
    let good = captured_meta(&mut p);
    // Chunk id 1 is attached (0 was captured; 1-3 attached at open, and
    // a spare was attached to replace 0).
    let mut forged = good;
    forged.id = ChunkId {
        nic_id: 0,
        ring_id: 0,
        chunk_id: 1,
    };
    // Even with a correctly-guessed process address the state check fires.
    forged.process_address = good.process_address + (256 * wirecap::config::CELL_BYTES as u64);
    let err = p.recycle(&forged).unwrap_err();
    assert!(
        matches!(err, RecycleError::NotCaptured | RecycleError::BadAddress),
        "{err:?}"
    );
    assert!(p.is_consistent());
}

#[test]
fn address_forgery_is_rejected() {
    let mut p = pool();
    let good = captured_meta(&mut p);
    let mut forged = good;
    forged.process_address ^= 0x1000;
    assert_eq!(p.recycle(&forged), Err(RecycleError::BadAddress));
    assert!(p.is_consistent());
}

#[test]
fn hostile_recycle_storm_leaves_pool_functional() {
    // A loop of garbage recycles interleaved with real traffic: the pool
    // must neither panic nor leak chunks.
    let mut p = pool();
    let mut captured = Vec::new();
    for round in 0u64..50 {
        for _ in 0..64 {
            p.on_dma(round);
        }
        let (metas, _) = p.capture_full();
        captured.extend(metas);
        // Hostile garbage.
        let _ = p.recycle(&ChunkMeta {
            id: ChunkId {
                nic_id: (round % 3) as u16,
                ring_id: (round % 2) as u16,
                chunk_id: (round * 37) as u32,
            },
            process_address: round.wrapping_mul(0x9e3779b97f4a7c15),
            pkt_count: 1,
            offloaded: false,
            first_fill_ns: 0,
        });
        assert!(p.is_consistent(), "round {round}");
        // Legitimate recycling keeps the system flowing.
        if let Some(meta) = captured.pop() {
            p.recycle(&meta).unwrap();
            p.replenish();
        }
    }
    // Drain: everything still accounted for.
    for meta in captured {
        p.recycle(&meta).unwrap();
    }
    p.replenish();
    assert!(p.is_consistent());
}
