//! Tier-1 smoke: the live scrape endpoint end to end.
//!
//! A real (threaded) engine run with `WIRECAP_TELEMETRY_LISTEN` set to
//! an ephemeral port, scraped over a plain [`TcpStream`] while traffic
//! flows: `/metrics` must render valid Prometheus text exposition and
//! `/snapshot.json` the unified snapshot schema, both carrying the
//! run's real counters. A second test pins the escape hatch: with the
//! sampler disabled (`WIRECAP_TELEMETRY_SAMPLE_MS=0`) the engine still
//! captures and the endpoint still serves direct snapshots — only the
//! sampled series goes away.
//!
//! The engine reads its telemetry configuration from the environment at
//! start, so the env-touching tests serialize on one lock (integration
//! tests in this binary share a process).

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

/// Serializes tests that mutate the `WIRECAP_TELEMETRY_*` environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Scoped environment override: sets on construction, restores on drop
/// (even on panic), so one test's env never leaks into another's.
struct EnvGuard {
    key: &'static str,
    prior: Option<std::ffi::OsString>,
}

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> Self {
        let prior = std::env::var_os(key);
        std::env::set_var(key, value);
        EnvGuard { key, prior }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match self.prior.take() {
            Some(v) => std::env::set_var(self.key, v),
            None => std::env::remove_var(self.key),
        }
    }
}

fn inject_flows(nic: &Arc<LiveNic>, n: u16) {
    let mut b = PacketBuilder::new();
    for i in 0..n {
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, (i % 200) as u8 + 1),
            9_000 + i,
            Ipv4Addr::new(10, 0, 0, 1),
            443,
        );
        let pkt = b.build_packet(u64::from(i), &flow, 128).unwrap();
        nic.inject(pkt).unwrap();
    }
}

/// One HTTP/1.1 GET over a fresh connection; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("reading reply");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("headers/body separator");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

#[test]
fn scrape_endpoint_serves_a_live_run() {
    let _env = ENV_LOCK.lock().unwrap();
    let _listen = EnvGuard::set("WIRECAP_TELEMETRY_LISTEN", "127.0.0.1:0");
    let _sample = EnvGuard::set("WIRECAP_TELEMETRY_SAMPLE_MS", "5");

    let nic = LiveNic::new(1, 4096);
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 1_500_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();
    let addr = engine
        .telemetry_addr()
        .expect("WIRECAP_TELEMETRY_LISTEN was set");

    let consumer = {
        let mut c = engine.consumer(0);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(chunk) = c.next_chunk() {
                n += chunk.len() as u64;
                c.recycle(chunk);
            }
            n
        })
    };
    inject_flows(&nic, 4_000);

    // Scrape mid-run: both documents must be well-formed whenever they
    // are fetched, not only at shutdown.
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");

    nic.stop();
    let consumed = consumer.join().unwrap();
    assert_eq!(consumed, 4_000, "endpoint must not perturb capture");

    // Post-drain scrape: the counters now cover the whole run.
    let (status, prom) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // Prometheus text exposition: every exposed family carries # HELP /
    // # TYPE headers and per-queue sample lines.
    for family in [
        "wirecap_captured_packets_total",
        "wirecap_delivered_packets_total",
        "wirecap_capture_queue_watermark",
        "wirecap_latency_ns",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {family} ")),
            "{family}:\n{prom}"
        );
    }
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wirecap_captured_packets_total{") && l.ends_with("} 4000")),
        "whole-run counter:\n{prom}"
    );
    assert!(
        prom.contains("wirecap_latency_ns_bucket{"),
        "latency histogram exposed per queue:\n{prom}"
    );

    let (status, body) = http_get(addr, "/snapshot.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let snap: telemetry::EngineSnapshot =
        serde_json::from_str(&body).expect("snapshot.json parses into the schema");
    let total = snap.total();
    assert_eq!(total.captured_packets, 4_000);
    assert_eq!(total.delivered_packets, 4_000);
    assert!(
        total.latency_ns.count > 0,
        "latency histogram populated by the run"
    );

    // The sampler was live too: the series document reflects it.
    let (status, body) = http_get(addr, "/series.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"samples\""), "series doc: {body}");

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    engine.shutdown();
    // The endpoint dies with the engine.
    assert!(TcpStream::connect(addr).is_err(), "endpoint must stop");
}

#[test]
fn trace_json_serves_chrome_trace_events_from_a_live_run() {
    let _env = ENV_LOCK.lock().unwrap();
    let _listen = EnvGuard::set("WIRECAP_TELEMETRY_LISTEN", "127.0.0.1:0");
    let _sample = EnvGuard::set("WIRECAP_TELEMETRY_SAMPLE_MS", "0");

    let nic = LiveNic::new(1, 4096);
    let cfg = WireCapConfig::builder()
        .cells(64)
        .chunks(32)
        .capture_timeout_ns(1_500_000)
        .span_sample_n(1) // trace every chunk
        .build()
        .unwrap();
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();
    let addr = engine.telemetry_addr().expect("endpoint requested");

    let consumer = {
        let mut c = engine.consumer(0);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(chunk) = c.next_chunk() {
                n += chunk.len() as u64;
                c.recycle(chunk);
            }
            n
        })
    };
    inject_flows(&nic, 2_000);
    nic.stop();
    assert_eq!(consumer.join().unwrap(), 2_000);

    let (status, trace) = http_get(addr, "/trace.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // Chrome trace-event JSON: an array of objects, every one carrying
    // ph/ts/pid/tid — the contract chrome://tracing / Perfetto loads.
    let parsed: serde::Value = serde_json::from_str(trace.trim()).expect("trace.json parses");
    let events = match parsed {
        serde::Value::Arr(evs) => evs,
        other => panic!("trace.json must be an array, got {other:?}"),
    };
    let mut complete_events = 0usize;
    for e in &events {
        for key in ["ph", "ts", "pid", "tid"] {
            assert!(e.field(key).is_some(), "missing {key}: {e:?}");
        }
        if matches!(e.field("ph"), Some(serde::Value::Str(ph)) if ph == "X") {
            complete_events += 1;
            assert!(e.field("dur").is_some(), "complete event without dur");
        }
    }
    assert!(
        complete_events > 0,
        "a fully sampled run must emit span events; got {} events",
        events.len()
    );

    // The snapshot decomposes the same run per stage.
    let (status, body) = http_get(addr, "/snapshot.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let snap: telemetry::EngineSnapshot = serde_json::from_str(&body).unwrap();
    let total = snap.total();
    assert!(
        total.stage_deliver_ns.count > 0,
        "per-stage histograms populated when span tracing is on"
    );
    assert_eq!(
        total.latency_ns.count, total.stage_deliver_ns.count,
        "sample_n = 1 stages every latency sample"
    );

    // Leave the scraped document where scripts/check.sh validates it
    // with an external JSON parser.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/check-trace.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out, &trace).ok();

    engine.shutdown();
}

#[test]
fn sampler_escape_hatch_still_captures_and_serves() {
    let _env = ENV_LOCK.lock().unwrap();
    let _listen = EnvGuard::set("WIRECAP_TELEMETRY_LISTEN", "127.0.0.1:0");
    let _sample = EnvGuard::set("WIRECAP_TELEMETRY_SAMPLE_MS", "0");

    let nic = LiveNic::new(1, 4096);
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 1_500_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();
    let addr = engine.telemetry_addr().expect("endpoint without sampler");

    let consumer = {
        let mut c = engine.consumer(0);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(chunk) = c.next_chunk() {
                n += chunk.len() as u64;
                c.recycle(chunk);
            }
            n
        })
    };
    inject_flows(&nic, 1_000);
    nic.stop();
    assert_eq!(consumer.join().unwrap(), 1_000, "sampler off, capture on");

    // Direct snapshots still serve; the sampled series does not exist.
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (status, _) = http_get(addr, "/series.json");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    engine.shutdown();
}

#[test]
fn no_telemetry_env_means_no_endpoint() {
    let _env = ENV_LOCK.lock().unwrap();
    let _listen = EnvGuard::set("WIRECAP_TELEMETRY_LISTEN", "");
    let _sample = EnvGuard::set("WIRECAP_TELEMETRY_SAMPLE_MS", "0");

    let nic = LiveNic::new(1, 1024);
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 1_500_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();
    assert!(engine.telemetry_addr().is_none(), "inert env, no endpoint");
    nic.stop();
    engine.shutdown();
}
