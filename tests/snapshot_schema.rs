//! Golden test: the unified snapshot schema the figure binaries emit.
//!
//! A deterministic simulation run is serialized and compared byte-for-
//! byte against `tests/golden/engine_snapshot.json`, so any change to
//! the `EngineSnapshot` / `QueueTelemetry` wire format is a deliberate,
//! reviewed diff. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test snapshot_schema
//! ```
//!
//! A second test checks schema *uniformity*: every engine kind emits a
//! snapshot carrying the same field set, so downstream `scripts/`
//! tooling can consume any of them interchangeably.

use apps::harness::{run, EngineKind};
use engines::EngineConfig;
use telemetry::EngineSnapshot;
use traffic::WireRateGen;
use wirecap::WireCapConfig;

/// Every `QueueTelemetry` field name, in schema order — the contract
/// the golden file locks down.
const QUEUE_FIELDS: &[&str] = &[
    "queue",
    "offered_packets",
    "captured_packets",
    "delivered_packets",
    "capture_drop_packets",
    "delivery_drop_packets",
    "nic_drop_packets",
    "forwarded_packets",
    "transmitted_packets",
    "sealed_chunks",
    "partial_chunks",
    "recycled_chunks",
    "offloaded_in_chunks",
    "offloaded_out_chunks",
    "disk_written_packets",
    "disk_drop_packets",
    "steal_in_chunks",
    "steal_out_chunks",
    "stolen_packets",
    "worker_parks",
    "claim_contention",
    "flow_tracked_packets",
    "flow_evicted_flows",
    "flow_evicted_packets",
    "flow_hash_collisions",
    "steal_queue_len",
    "reorder_occupancy",
    "flow_table_occupancy",
    "capture_queue_len",
    "capture_queue_watermark",
    "free_chunks",
    "ring_ready",
    "ring_used",
    "capture_queue_depth",
    "chunk_fill",
    "batch_size",
    "latency_ns",
    "latency_p999_ns",
    "stage_backend_ns",
    "stage_queue_wait_ns",
    "stage_claim_ns",
    "stage_reorder_ns",
    "stage_deliver_ns",
    "stage_disk_ns",
];

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/engine_snapshot.json")
}

/// The deterministic reference run: WireCAP-A over two queues against
/// the paper's burst workload.
fn reference_snapshot() -> EngineSnapshot {
    let cfg = EngineConfig::paper(300);
    let mut g = WireRateGen::paper_burst(5_000);
    let res = run(
        EngineKind::WireCap(WireCapConfig::advanced(64, 100, 0.6, 300)),
        2,
        cfg,
        &mut g,
    );
    res.telemetry
}

#[test]
fn snapshot_json_matches_golden() {
    let json = reference_snapshot().to_json() + "\n";
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run UPDATE_GOLDEN=1 cargo test --test snapshot_schema");
    assert_eq!(
        json, golden,
        "snapshot schema drifted from tests/golden/engine_snapshot.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn snapshot_round_trips_through_json() {
    let snap = reference_snapshot();
    let back: EngineSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
    assert_eq!(back.engine, snap.engine);
    assert_eq!(back.queues, snap.queues);
}

#[test]
fn every_engine_emits_the_same_schema() {
    let kinds = [
        EngineKind::Dna,
        EngineKind::Netmap,
        EngineKind::PfRing,
        EngineKind::PfPacket,
        EngineKind::Psioe,
        EngineKind::Dpdk,
        EngineKind::DpdkAppOffload(0.6),
        EngineKind::WireCap(WireCapConfig::advanced(64, 100, 0.6, 300)),
    ];
    let cfg = EngineConfig::paper(0);
    for kind in kinds {
        let mut g = WireRateGen::paper_burst(2_000);
        let res = run(kind, 2, cfg, &mut g);
        let snap = &res.telemetry;
        assert_eq!(snap.queues.len(), 2, "{}", snap.engine);
        let json = snap.to_json();
        for field in QUEUE_FIELDS {
            assert!(
                json.contains(&format!("\"{field}\"")),
                "{}: missing field {field}",
                snap.engine
            );
        }
        // Each snapshot carries real accounting, not zeros.
        let total = snap.total();
        assert!(total.offered_packets > 0, "{}", snap.engine);
        assert!(total.captured_packets > 0, "{}", snap.engine);
        // And the Prometheus rendering exposes the same counters.
        let prom = snap.to_prometheus();
        assert!(prom.contains("wirecap_captured_packets_total"));
        assert!(prom.contains("wirecap_chunk_fill_bucket") || !prom.is_empty());
    }
}
