//! Span-tracing invariants over real engine runs.
//!
//! Three contracts, checked end to end rather than on synthetic stamps:
//!
//! * **Decomposition** — every completed [`SpanRecord`] has non-negative
//!   per-stage durations (trivially true of `u64`, but the proptest
//!   drives randomized runs through the real stamp points) whose sum
//!   never exceeds the span's end-to-end latency: stamps are taken in
//!   pipeline order from one monotonic clock, so the stages partition a
//!   subset of the seal→recycle interval.
//! * **Sampling** — with 1-in-N sampling the span ring holds one span
//!   per N sealed chunks, up to ring retention: the count equals
//!   `ceil(sealed / N)` clamped by the ring capacity.
//! * **Worker parks** — `QueueCounters::worker_parks` counts parks of
//!   *every* worker servicing the queue: a one-worker pool that owns
//!   two idle queues must account its parks to both.

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

/// Run a per-queue consumer over `total` packets with 1-in-`sample_n`
/// span sampling; return (completed spans, engine snapshot).
fn run_sampled(
    total: u64,
    sample_n: u32,
    cells: usize,
) -> (Vec<telemetry::SpanRecord>, telemetry::EngineSnapshot) {
    let nic = LiveNic::new(1, 8192);
    let cfg = WireCapConfig::builder()
        .cells(cells)
        // The pool must exceed ring_size / m attached segments.
        .chunks(2 * (1024 / cells))
        .capture_timeout_ns(1_000_000)
        .span_sample_n(sample_n)
        .build()
        .unwrap();
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();

    let consumer = {
        let mut c = engine.consumer(0);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(chunk) = c.next_chunk() {
                n += chunk.len() as u64;
                c.recycle(chunk);
            }
            n
        })
    };

    let mut b = PacketBuilder::new();
    for i in 0..total {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, 4, (i % 16) as u8 + 1, 7),
            9_000 + (i % 128) as u16,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        let pkt = b.build_packet(i * 800, &flow, 96).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
    assert_eq!(consumer.join().unwrap(), total);

    let observer = engine.observer();
    let spans = observer.spans();
    let snap = observer.snapshot();
    engine.shutdown();
    (spans, snap)
}

/// The per-stage decomposition partitions (a subset of) the span: each
/// stage is non-negative and their sum never exceeds end-to-end.
fn assert_decomposed(spans: &[telemetry::SpanRecord]) {
    assert!(!spans.is_empty(), "sampled run must complete spans");
    for s in spans {
        let stage_sum = s.stage_sum_ns();
        assert!(
            stage_sum <= s.end_to_end_ns,
            "stage sum {} exceeds end-to-end {} for queue {} seq {}: {s:?}",
            stage_sum,
            s.end_to_end_ns,
            s.queue,
            s.seq,
        );
    }
}

#[test]
fn sampled_spans_decompose_into_stages() {
    let (spans, snap) = run_sampled(4_000, 1, 32);
    assert_decomposed(&spans);
    // Fully sampled: per-stage histograms carry one sample per span
    // completion, matching the latency histogram count.
    let total = snap.total();
    assert_eq!(
        total.stage_deliver_ns.count, total.latency_ns.count,
        "sample_n=1 must stage every latency sample"
    );
    assert_eq!(
        total.stage_backend_ns.count, total.latency_ns.count,
        "backend stage recorded per sampled chunk"
    );
}

#[test]
fn span_count_tracks_sample_rate() {
    for sample_n in [1u32, 4, 16] {
        let (spans, snap) = run_sampled(3_000, sample_n, 32);
        let sealed: u64 = snap.queues.iter().map(|q| q.sealed_chunks).sum();
        // seq starts at 0 and every seq % N == 0 chunk is sampled.
        let expected = sealed.div_ceil(u64::from(sample_n));
        let retained = expected.min(telemetry::DEFAULT_SPAN_CAPACITY as u64);
        assert_eq!(
            spans.len() as u64,
            retained,
            "1-in-{sample_n}: {} sealed chunks must yield {retained} retained spans, got {}",
            sealed,
            spans.len()
        );
    }
}

#[test]
fn sampling_disabled_emits_no_spans() {
    let (spans, snap) = run_sampled(1_500, 0, 32);
    assert!(spans.is_empty(), "span_sample_n=0 must trace nothing");
    let total = snap.total();
    assert_eq!(total.stage_deliver_ns.count, 0, "no stage samples when off");
    assert!(
        total.latency_ns.count > 0,
        "plain latency accounting unaffected by sampling being off"
    );
    assert!(
        snap.workers.is_empty(),
        "worker profiler only runs when span tracing is on"
    );
}

/// Satellite 6: `worker_parks` counts parks from every worker servicing
/// the queue. One pool worker owning two queues with no traffic parks
/// repeatedly — both queues must see those parks, not just the first.
#[test]
fn worker_parks_accrue_to_every_serviced_queue() {
    let queues = 2;
    let nic = LiveNic::new(queues, 1024);
    let cfg = WireCapConfig::builder()
        .cells(32)
        .chunks(64)
        .capture_timeout_ns(500_000)
        .spin_iters(4)
        .yield_iters(2)
        .park_timeout_ns(200_000)
        .span_sample_n(8)
        .build()
        .unwrap();
    let groups = BuddyGroups::single(queues);
    let group = groups.group_of(0).cloned().expect("grouped");
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();

    // One worker owns both queues; with no traffic it rides the
    // adaptive-polling ladder down to parking in every loop.
    let pool = engine.consumer_pool(&group, 1, |_d| {});
    std::thread::sleep(std::time::Duration::from_millis(80));
    nic.stop();

    let observer = engine.observer();
    engine.shutdown();
    pool.join();
    let snap = observer.snapshot();
    assert_eq!(snap.queues.len(), queues);
    for q in &snap.queues {
        assert!(
            q.worker_parks > 0,
            "queue {} saw no parks from its (only) worker: {snap:?}",
            q.queue
        );
    }
    // The profiler saw the same worker: park wall-time is attributed.
    let parked: u64 = snap.workers.iter().map(|w| w.park_ns).sum();
    assert!(
        parked > 0,
        "profiled worker must have accumulated park time: {:?}",
        snap.workers
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Randomized load shapes never violate the decomposition or
        /// the sampling-count contract.
        #[test]
        fn decomposition_holds_under_random_runs(
            total in 500u64..2_500,
            sample_n in 1u32..8,
            cells_idx in 0usize..3,
        ) {
            let cells = [16usize, 32, 64][cells_idx];
            let (spans, snap) = run_sampled(total, sample_n, cells);
            assert_decomposed(&spans);
            let sealed: u64 = snap.queues.iter().map(|q| q.sealed_chunks).sum();
            let expected = sealed.div_ceil(u64::from(sample_n))
                .min(telemetry::DEFAULT_SPAN_CAPACITY as u64);
            prop_assert_eq!(spans.len() as u64, expected);
            // Stage histograms and the ring agree on how many chunks
            // were sampled (ring may retain fewer than recorded).
            let staged = snap.total().stage_deliver_ns.count;
            prop_assert!(staged >= spans.len() as u64);
        }
    }
}
