//! Cross-crate property-based tests (proptest).
//!
//! These exercise the load-bearing invariants under randomized operation
//! sequences: chunk conservation in the ring buffer pool, descriptor
//! conservation in rings, end-to-end accounting consistency of every
//! engine, and determinism of the workload generators.

use apps::harness::{run, EngineKind};
use engines::EngineConfig;
use proptest::prelude::*;
use traffic::{generate_border_trace, BorderTraceConfig, TraceCursor, TrafficSource};
use wirecap::pool::RingBufferPool;
use wirecap::WireCapConfig;

#[derive(Debug, Clone)]
enum PoolOp {
    Dma,
    Capture,
    Partial,
    RecycleOldest,
    Replenish,
}

fn arb_pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        8 => Just(PoolOp::Dma),
        2 => Just(PoolOp::Capture),
        1 => Just(PoolOp::Partial),
        3 => Just(PoolOp::RecycleOldest),
        1 => Just(PoolOp::Replenish),
    ]
}

proptest! {
    /// Chunk conservation: free + attached + captured == R after every
    /// operation sequence, and armed cells never exceed the ring.
    #[test]
    fn pool_conserves_chunks(ops in proptest::collection::vec(arb_pool_op(), 1..400)) {
        let cfg = WireCapConfig::basic(64, 20, 0);
        let mut pool = RingBufferPool::open(0, 0, &cfg);
        let mut outstanding = Vec::new();
        let mut t = 0u64;
        for op in ops {
            t += 10_000;
            match op {
                PoolOp::Dma => {
                    pool.on_dma(t);
                }
                PoolOp::Capture => {
                    let (metas, _) = pool.capture_full();
                    outstanding.extend(metas);
                }
                PoolOp::Partial => {
                    if let Some((meta, _)) = pool.capture_partial(t + 2_000_000, 1_000_000) {
                        outstanding.push(meta);
                    }
                }
                PoolOp::RecycleOldest => {
                    if !outstanding.is_empty() {
                        let meta = outstanding.remove(0);
                        prop_assert_eq!(pool.recycle(&meta), Ok(()));
                    }
                }
                PoolOp::Replenish => {
                    pool.replenish();
                }
            }
            prop_assert!(pool.is_consistent());
            prop_assert_eq!(
                pool.captured_chunks(),
                outstanding.len(),
                "captured chunks must match outstanding metadata"
            );
            prop_assert!(pool.armed_cells() <= cfg.ring_size);
        }
    }

    /// Every engine's accounting balances on arbitrary workloads:
    /// offered = captured + capture_drops, and all captured packets are
    /// eventually delivered, dropped, or still buffered.
    #[test]
    fn engine_accounting_balances(
        packets in 100u64..5_000,
        rate in 10_000.0f64..2_000_000.0,
        engine_idx in 0usize..7,
        queues in 1usize..4,
    ) {
        let kind = match engine_idx {
            0 => EngineKind::Dna,
            1 => EngineKind::Netmap,
            2 => EngineKind::PfRing,
            3 => EngineKind::Psioe,
            4 => EngineKind::Dpdk,
            5 => EngineKind::DpdkAppOffload(0.5),
            _ => EngineKind::WireCap(WireCapConfig::basic(64, 20, 300)),
        };
        let cfg = EngineConfig::paper(300);
        let mut gen = traffic::WireRateGen::new(packets, 64, rate, 16);
        let res = run(kind, queues, cfg, &mut gen);
        prop_assert!(res.total.is_consistent(), "{:?}", res.total);
        prop_assert_eq!(res.total.offered, packets);
        // After finish() the engine must have drained: nothing in flight.
        prop_assert_eq!(res.total.in_flight(), 0, "{:?}", res.total);
    }

    /// WireCAP never suffers delivery drops, for any basic-mode geometry.
    #[test]
    fn wirecap_never_delivery_drops(
        packets in 100u64..4_000,
        m_pow in 0usize..3,
        r in 6usize..40,
    ) {
        let m = [64usize, 128, 256][m_pow];
        let r = r.max(1024 / m + 1);
        let cfg = EngineConfig::paper(300);
        let mut gen = traffic::WireRateGen::new(packets, 64, 14_880_952.0, 4);
        let res = run(
            EngineKind::WireCap(WireCapConfig::basic(m, r, 300)),
            1,
            cfg,
            &mut gen,
        );
        prop_assert_eq!(res.total.delivery_drops, 0);
        prop_assert!(res.total.is_consistent());
    }

    /// Trace generation is deterministic and time-ordered for any seed.
    #[test]
    fn trace_generation_deterministic(seed in any::<u64>()) {
        let cfg = BorderTraceConfig {
            seed,
            packets: 3_000,
            duration_s: 2.0,
            flows: 60,
            max_flow_packets: 1_000.0,
            ..BorderTraceConfig::small()
        };
        let a = generate_border_trace(&cfg);
        let b = generate_border_trace(&cfg);
        prop_assert_eq!(a.records(), b.records());
        prop_assert!(a.records().windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        prop_assert_eq!(a.len(), 3_000);
    }

    /// The full experiment pipeline is deterministic: identical inputs
    /// yield bit-identical accounting, for every engine.
    #[test]
    fn experiments_are_deterministic(
        engine_idx in 0usize..7,
        seed in any::<u64>(),
    ) {
        let kind = match engine_idx {
            0 => EngineKind::Dna,
            1 => EngineKind::Netmap,
            2 => EngineKind::PfRing,
            3 => EngineKind::Psioe,
            4 => EngineKind::Dpdk,
            5 => EngineKind::DpdkAppOffload(0.6),
            _ => EngineKind::WireCap(WireCapConfig::advanced(64, 20, 0.6, 300)),
        };
        let cfg = EngineConfig::paper(300);
        let trace_cfg = BorderTraceConfig {
            seed,
            packets: 2_000,
            duration_s: 0.2,
            flows: 40,
            max_flow_packets: 500.0,
            ..BorderTraceConfig::small()
        };
        let trace = generate_border_trace(&trace_cfg);
        let mut c1 = TraceCursor::new(&trace);
        let r1 = run(kind, 3, cfg, &mut c1);
        let mut c2 = TraceCursor::new(&trace);
        let r2 = run(kind, 3, cfg, &mut c2);
        prop_assert_eq!(r1.per_queue, r2.per_queue);
        prop_assert_eq!(r1.copies, r2.copies);
    }

    /// Replay at any speed preserves order and count.
    #[test]
    fn replay_preserves_order(speed in 0.25f64..8.0, loops in 1u32..4) {
        let cfg = BorderTraceConfig {
            packets: 500,
            duration_s: 1.0,
            flows: 20,
            max_flow_packets: 100.0,
            ..BorderTraceConfig::small()
        };
        let trace = generate_border_trace(&cfg);
        let mut cursor = TraceCursor::new(&trace).with_speed(speed).looped(loops);
        let mut n = 0u64;
        let mut last = 0u64;
        while let Some(a) = cursor.next_arrival() {
            prop_assert!(a.ts_ns >= last, "time went backwards");
            last = a.ts_ns;
            n += 1;
        }
        prop_assert_eq!(n, 500 * u64::from(loops));
    }
}
