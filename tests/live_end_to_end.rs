//! Integration: the live (real-thread) engine end to end.
//!
//! Bounded, second-scale smoke runs of the concurrent implementation:
//! multi-queue capture with offloading, the multi_pkt_handler driver,
//! and loss accounting under deliberate overload.

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

fn cfg() -> WireCapConfig {
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 1_500_000;
    cfg
}

fn inject_flows(nic: &Arc<LiveNic>, n: u16, dst_last: u8) {
    let mut b = PacketBuilder::new();
    for i in 0..n {
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, (i % 200) as u8 + 1),
            9_000 + i,
            Ipv4Addr::new(10, 0, 0, dst_last),
            443,
        );
        let pkt = b.build_packet(u64::from(i), &flow, 128).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
}

#[test]
fn multi_queue_capture_accounts_every_packet() {
    let nic = LiveNic::new(4, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg())
        .groups(BuddyGroups::isolated(4))
        .start();
    let consumers: Vec<_> = (0..4)
        .map(|q| {
            let mut c = engine.consumer(q);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while let Some(chunk) = c.next_chunk() {
                    n += chunk.len() as u64;
                    c.recycle(chunk);
                }
                n
            })
        })
        .collect();
    inject_flows(&nic, 5_000, 1);
    nic.stop();
    let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let tel = engine.snapshot().total();
    let captured = tel.captured_packets;
    let dropped = tel.capture_drop_packets;
    engine.shutdown();
    assert_eq!(captured + dropped, 5_000);
    assert_eq!(consumed, captured);
    assert_eq!(dropped, 0, "no overload, no drops");
}

#[test]
fn multi_pkt_handler_processes_all_queues() {
    let nic = LiveNic::new(3, 4096);
    let injector = {
        let nic = Arc::clone(&nic);
        std::thread::spawn(move || {
            inject_flows(&nic, 2_000, 2);
            nic.stop();
        })
    };
    let reports = apps::multi_pkt_handler::run(Arc::clone(&nic), cfg(), 2);
    injector.join().unwrap();
    let processed: u64 = reports.iter().map(|r| r.processed).sum();
    let matched: u64 = reports.iter().map(|r| r.matched).sum();
    assert_eq!(processed, 2_000);
    assert_eq!(matched, 2_000, "all traffic matches 131.225.2 and udp");
    assert_eq!(reports.len(), 3);
}

#[test]
fn offloading_moves_chunks_in_live_mode() {
    // Two queues, one buddy group; a consumer only on queue 1, so queue
    // 0's chunks MUST offload to survive. Force offloading with T = 0.
    let nic = LiveNic::new(2, 8192);
    let mut config = WireCapConfig::advanced(64, 32, 0.0, 0);
    config.capture_timeout_ns = 1_500_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(config)
        .groups(BuddyGroups::single(2))
        .start();

    // A consumer on each queue; queue 0's consumer is deliberately slow.
    let fast = {
        let mut c = engine.consumer(1);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(chunk) = c.next_chunk() {
                n += chunk.len() as u64;
                c.recycle(chunk);
            }
            n
        })
    };
    let slow = {
        let mut c = engine.consumer(0);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while let Some(chunk) = c.next_chunk() {
                n += chunk.len() as u64;
                std::thread::sleep(std::time::Duration::from_micros(500));
                c.recycle(chunk);
            }
            n
        })
    };
    // All packets belong to ONE flow → one queue gets everything.
    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(131, 225, 2, 9),
        50_000,
        Ipv4Addr::new(10, 0, 0, 9),
        443,
    );
    for i in 0..6_000u64 {
        let pkt = b.build_packet(i, &flow, 128).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
    let total = fast.join().unwrap() + slow.join().unwrap();
    let tel = engine.snapshot().total();
    let offloaded = tel.offloaded_in_chunks;
    let captured = tel.captured_packets;
    engine.shutdown();
    assert_eq!(total, captured, "every captured packet is consumed");
    assert!(offloaded > 0, "offloading must have moved chunks");
}

#[test]
fn overload_produces_bounded_loss_accounting() {
    // Tiny pool, no consumer at all until the end: drops must be counted,
    // and captured + dropped must equal offered.
    let nic = LiveNic::new(1, 256);
    let mut config = WireCapConfig::basic(64, 17, 0); // pool = 1088 pkts
    config.capture_timeout_ns = 50_000_000; // effectively never
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(config)
        .groups(BuddyGroups::isolated(1))
        .start();

    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(131, 225, 2, 1),
        1,
        Ipv4Addr::new(10, 0, 0, 1),
        2,
    );
    let mut offered = 0u64;
    let mut wire_drops = 0u64;
    for i in 0..5_000u64 {
        let pkt = b.build_packet(i, &flow, 128).unwrap();
        offered += 1;
        if nic.inject(pkt).is_none() {
            wire_drops += 1;
        }
    }
    // Give the capture thread a moment to drain the NIC queue.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut c = engine.consumer(0);
    nic.stop();
    let mut consumed = 0u64;
    while let Some(chunk) = c.next_chunk() {
        consumed += chunk.len() as u64;
        c.recycle(chunk);
    }
    let t = engine.telemetry(0);
    let captured = t.captured_packets;
    let dropped = t.capture_drop_packets;
    engine.shutdown();
    assert_eq!(captured + dropped + wire_drops, offered);
    assert_eq!(consumed, captured);
    assert!(
        dropped + wire_drops > 0,
        "overload must be visible somewhere"
    );
}

/// §5e paradigm 1: "Multiple threads (or processes) of a packet-processing
/// application can access a single NIC receive queue, through the queue's
/// corresponding work-queue pair. Certainly, this approach incurs extra
/// synchronization overheads across these threads."
#[test]
fn multiple_consumers_share_one_queue() {
    let nic = LiveNic::new(1, 8192);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg())
        .groups(BuddyGroups::isolated(1))
        .start();
    let consumers: Vec<_> = (0..3)
        .map(|_| {
            let mut c = engine.consumer(0);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while let Some(chunk) = c.next_chunk() {
                    n += chunk.len() as u64;
                    c.recycle(chunk);
                }
                n
            })
        })
        .collect();
    // One flow: everything lands on queue 0, three threads share it.
    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(131, 225, 2, 7),
        7_000,
        Ipv4Addr::new(10, 0, 0, 7),
        443,
    );
    // Paced injection: the shared consumers must keep up with the
    // capture thread, or the (small, R = 32) pool exhausts — which is
    // correct engine behaviour but not what this test is about.
    for i in 0..4_000u64 {
        let pkt = b.build_packet(i, &flow, 128).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
        if i % 64 == 63 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    nic.stop();
    let per_thread: Vec<u64> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
    let dropped = engine.telemetry(0).capture_drop_packets;
    engine.shutdown();
    assert_eq!(per_thread.iter().sum::<u64>() + dropped, 4_000);
    assert_eq!(dropped, 0, "paced load must be lossless: {per_thread:?}");
}

/// §5e paradigm 2: application-level steering atop the capture stream —
/// more application queues than NIC queues, at the cost of one copy.
#[test]
fn app_level_steering_over_live_capture() {
    use wirecap::steering::AppSteering;
    let nic = LiveNic::new(2, 8192);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg())
        .groups(BuddyGroups::isolated(2))
        .start();
    let steering = AppSteering::new(16, 4096);
    let dispatchers: Vec<_> = (0..2)
        .map(|q| {
            let mut c = engine.consumer(q);
            let s = Arc::clone(&steering);
            std::thread::spawn(move || {
                let mut dropped = 0u64;
                while let Some(chunk) = c.next_chunk() {
                    dropped += s.dispatch_view(c.view(&chunk));
                    // The chunk recycles immediately — the copy decoupled it.
                    c.recycle(chunk);
                }
                dropped
            })
        })
        .collect();
    inject_flows(&nic, 3_000, 3);
    nic.stop();
    let dropped: u64 = dispatchers.into_iter().map(|d| d.join().unwrap()).sum();
    engine.shutdown();
    assert_eq!(dropped, 0);
    assert_eq!(steering.copied_packets(), 3_000);
    let delivered: u64 = (0..16).map(|i| steering.queue(i).enqueued()).sum();
    assert_eq!(delivered, 3_000);
    // The fan-out actually spread the traffic beyond the 2 NIC queues.
    let used = (0..16)
        .filter(|&i| steering.queue(i).enqueued() > 0)
        .count();
    assert!(used > 4, "only {used} app queues used");
}
