//! Buddy-offload accounting under early consumer shutdown.
//!
//! The audit behind this test: `offloaded_out_chunks` (home queue's
//! capture shard) and `offloaded_in_chunks` (target queue's peer shard)
//! are both incremented at stage time on the capture thread — the same
//! code path, before the chunk is even published — so no consumer-side
//! interleaving can split them. What a departing consumer *can* do is
//! strand offloaded chunks in the target queue's rings; the engine's
//! contract is that a later consumer on the same queue (SPSC hand-off,
//! never concurrent) finds and recycles them, leaving the global
//! accounting conserved:
//!
//! * Σ `offloaded_out_chunks` == Σ `offloaded_in_chunks`,
//! * Σ `delivered_packets` + Σ `delivery_drop_packets` ==
//!   Σ `captured_packets` (every packet that entered a chunk either
//!   reached an application or is explicitly counted as stranded by a
//!   departing consumer),
//! * Σ `recycled_chunks` == Σ `sealed_chunks` (every slot came home).
//!
//! The audit found — and `LiveConsumer::drop` now fixes — a real leak
//! here: a consumer dropped mid-run used to strand the chunks already
//! popped into its private inbox, permanently bleeding pool slots and
//! breaking all three equalities.
//!
//! The proptest drives randomized early-consumer-shutdown
//! interleavings: a single flow concentrates all traffic on one queue
//! (forcing offloads to its buddy once the backlog crosses T), the
//! buddy's consumer exits after a random number of chunks mid-run, and
//! a rescue consumer attaches afterwards to drain what was stranded.

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use shmring::ShmRingNic;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;
use telemetry::EngineSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::{CaptureBackend, LoopbackBackend, NicSimBackend, WireCapConfig};

/// Both loopback-capable backends, same two-queue geometry: the offload
/// conservation laws are a property of the engine, not of where frames
/// come from.
fn backends() -> Vec<Arc<dyn LoopbackBackend>> {
    vec![
        NicSimBackend::new(LiveNic::new(2, 8192)) as Arc<dyn LoopbackBackend>,
        ShmRingNic::new(2, 8192) as Arc<dyn LoopbackBackend>,
    ]
}

/// One randomized run: `total` packets of a single flow, the offload
/// target's consumer exiting after `early_chunks` chunks, and the home
/// queue's consumer slowed by `busy_sleep_us` per chunk (backlog
/// pressure that makes offloading fire). `llc_kb > 0` switches the
/// pool to `CacheResident` tuning at that LLC budget (DESIGN.md
/// §4.16) — offloading and the stranded-chunk rescue must conserve
/// with a shrunk pool and depth-bounded refills just as with the
/// `Throughput` default. Returns the final snapshot.
fn run_interleaving(
    backend: Arc<dyn LoopbackBackend>,
    total: u64,
    early_chunks: usize,
    busy_sleep_us: u64,
    llc_kb: u64,
) -> EngineSnapshot {
    let mut cfg = WireCapConfig::advanced(32, 40, 0.2, 0);
    cfg.capture_timeout_ns = 1_000_000;
    if llc_kb > 0 {
        cfg.tuning = wirecap::TuningMode::CacheResident {
            llc_bytes: llc_kb * 1024,
        };
    }
    let upcast: Arc<dyn CaptureBackend> = backend.clone();
    let engine = LiveWireCap::builder()
        .backend(upcast)
        .config(cfg)
        .groups(BuddyGroups::single(2))
        .start();

    // A single flow RSS-hashes every packet to one queue; learn which
    // from the first injection so the test is independent of the hash.
    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(10, 7, 7, 7),
        7_777,
        Ipv4Addr::new(131, 225, 2, 1),
        443,
    );
    let first = b.build_packet(0, &flow, 120).unwrap();
    let busy = loop {
        match backend.inject(first.clone()) {
            Some(q) => break q,
            None => std::thread::yield_now(),
        }
    };
    let target = 1 - busy;

    // Home-queue consumer: runs to completion, artificially slow so the
    // capture queue backs up past T and offloading engages.
    let busy_thread = {
        let mut c = engine.consumer(busy);
        std::thread::spawn(move || {
            while let Some(chunk) = c.next_chunk() {
                if busy_sleep_us > 0 {
                    std::thread::sleep(Duration::from_micros(busy_sleep_us));
                }
                c.recycle(chunk);
            }
        })
    };

    // The early-exit consumer on the offload target: takes at most
    // `early_chunks` chunks, recycles them, then drops mid-run —
    // stranding whatever lands on the target's rings afterwards.
    let early_thread = {
        let mut c = engine.consumer(target);
        std::thread::spawn(move || {
            for _ in 0..early_chunks {
                match c.next_chunk() {
                    Some(chunk) => c.recycle(chunk),
                    None => break,
                }
            }
        })
    };

    let injector = {
        let backend = Arc::clone(&backend);
        std::thread::spawn(move || {
            let mut b = PacketBuilder::new();
            let flow = FlowKey::udp(
                Ipv4Addr::new(10, 7, 7, 7),
                7_777,
                Ipv4Addr::new(131, 225, 2, 1),
                443,
            );
            for i in 1..total {
                let pkt = b.build_packet(i * 1_000, &flow, 120).unwrap();
                while backend.inject(pkt.clone()).is_none() {
                    std::thread::yield_now();
                }
            }
            backend.stop().expect("stop backend");
        })
    };

    // Rescue: after the early consumer is gone (sequential hand-off on
    // the same queue — never two concurrent SPSC consumers), a fresh
    // consumer drains the stranded chunks to end-of-stream. It must
    // start before the injector joins: with nobody popping the target's
    // rings, the busy capture thread's flush would wedge and the NIC
    // ring behind it would fill.
    early_thread.join().expect("early consumer panicked");
    let mut rescue = engine.consumer(target);
    while let Some(chunk) = rescue.next_chunk() {
        rescue.recycle(chunk);
    }
    injector.join().expect("injector panicked");
    busy_thread.join().expect("busy consumer panicked");
    drop(rescue); // flush its delivery tally before snapshotting
    let snapshot = engine.snapshot();
    engine.shutdown();
    snapshot
}

fn assert_conserved(snap: &EngineSnapshot, total: u64) {
    let out: u64 = snap.queues.iter().map(|q| q.offloaded_out_chunks).sum();
    let inn: u64 = snap.queues.iter().map(|q| q.offloaded_in_chunks).sum();
    assert_eq!(out, inn, "offload out/in drifted: {snap:?}");
    let captured: u64 = snap.queues.iter().map(|q| q.captured_packets).sum();
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    let delivery_dropped: u64 = snap.queues.iter().map(|q| q.delivery_drop_packets).sum();
    assert_eq!(
        delivered + delivery_dropped,
        captured,
        "packets lost between capture and delivery: {snap:?}"
    );
    let sealed: u64 = snap.queues.iter().map(|q| q.sealed_chunks).sum();
    let recycled: u64 = snap.queues.iter().map(|q| q.recycled_chunks).sum();
    assert_eq!(recycled, sealed, "chunk slots leaked: {snap:?}");
    let dropped: u64 = snap.queues.iter().map(|q| q.capture_drop_packets).sum();
    assert_eq!(
        captured + dropped,
        total,
        "captured + capture-dropped must cover every injected packet: {snap:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conservation holds across randomized early-shutdown
    /// interleavings: any exit point of the target's consumer, any
    /// backlog pressure on the home queue, on every backend, under
    /// either tuning mode (`llc_kb == 0` is `Throughput`; otherwise
    /// `CacheResident` at a randomized LLC budget).
    #[test]
    fn offload_accounting_survives_early_consumer_exit(
        total in 1_500u64..5_000,
        early_chunks in 0usize..12,
        busy_sleep_us in 0u64..200,
        llc_kb in prop_oneof![Just(0u64), 256u64..16_384],
    ) {
        for backend in backends() {
            let snap = run_interleaving(backend, total, early_chunks, busy_sleep_us, llc_kb);
            assert_conserved(&snap, total);
        }
    }
}

/// Deterministic companion: pressure high enough that offloading
/// demonstrably fires (the proptest above must hold whether or not it
/// does; this pins that the scenario actually exercises the offload
/// path and the stranded-chunk rescue).
#[test]
fn offloads_fire_and_survive_target_consumer_exit() {
    for backend in backends() {
        let name = backend.name();
        let snap = run_interleaving(backend, 6_000, 2, 300, 0);
        assert_conserved(&snap, 6_000);
        let out: u64 = snap.queues.iter().map(|q| q.offloaded_out_chunks).sum();
        assert!(
            out > 0,
            "{name}: scenario failed to trigger offloading: {snap:?}"
        );
    }
}
