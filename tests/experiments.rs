//! Integration tests: the paper's headline results at reduced scale.
//!
//! Each test runs a scaled-down version of an evaluation-section
//! experiment through the same code paths as the figure binaries and
//! asserts the *shape* the paper reports — who wins, in what order, and
//! where the crossovers fall.

use apps::harness::{run, EngineKind};
use engines::EngineConfig;
use traffic::{generate_border_trace, BorderTraceConfig, TraceCursor, WireRateGen};
use wirecap::WireCapConfig;

fn small_trace() -> traffic::Trace {
    generate_border_trace(&BorderTraceConfig::small())
}

/// Headline claim (§1): "WireCAP can capture and deliver 100% of the
/// network traffic to applications without loss while existing packet
/// capture engines suffer a packet drop rate ranging from 20% to 40%
/// under the same conditions."
#[test]
fn headline_wirecap_lossless_where_baselines_drop() {
    // A hot-queue regime: wire-rate burst of 20k packets against x=300.
    let cfg = EngineConfig::paper(300);
    let mut drops = Vec::new();
    for kind in [
        EngineKind::Dna,
        EngineKind::Netmap,
        EngineKind::PfRing,
        EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)),
    ] {
        let mut gen = WireRateGen::paper_burst(20_000);
        let res = run(kind, 1, cfg, &mut gen);
        drops.push((res.engine.clone(), res.drop_rate()));
    }
    let wirecap = drops.last().unwrap().1;
    assert_eq!(wirecap, 0.0, "WireCAP must be lossless: {drops:?}");
    for (name, d) in &drops[..3] {
        assert!(*d > 0.2, "{name} should drop >20%: {d}");
    }
}

/// Fig. 8 shape: at wire rate with x = 0, every zero-copy engine is
/// lossless at every P; PF_RING drops heavily.
#[test]
fn fig8_shape() {
    let cfg = EngineConfig::paper(0);
    for p in [1_000u64, 10_000, 100_000] {
        for kind in [
            EngineKind::Dna,
            EngineKind::Netmap,
            EngineKind::WireCap(WireCapConfig::basic(64, 100, 0)),
            EngineKind::WireCap(WireCapConfig::basic(256, 500, 0)),
        ] {
            let mut gen = WireRateGen::paper_burst(p);
            let res = run(kind, 1, cfg, &mut gen);
            assert_eq!(res.drop_rate(), 0.0, "{} at P={p}", res.engine);
        }
        let mut gen = WireRateGen::paper_burst(p);
        let pf = run(EngineKind::PfRing, 1, cfg, &mut gen);
        if p >= 10_000 {
            assert!(pf.drop_rate() > 0.3, "PF_RING at P={p}: {}", pf.drop_rate());
        }
    }
}

/// Fig. 9 shape: drop onset ordered by buffering capacity —
/// DNA (~ring) ≪ WireCAP-B-(256,100) (~25.6k) ≪ WireCAP-B-(256,500).
#[test]
fn fig9_buffering_order() {
    let cfg = EngineConfig::paper(300);
    let onset = |kind: EngineKind| -> u64 {
        for p in [2_000u64, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000] {
            let mut gen = WireRateGen::paper_burst(p);
            if run(kind, 1, cfg, &mut gen).drop_rate() > 0.01 {
                return p;
            }
        }
        u64::MAX
    };
    let dna = onset(EngineKind::Dna);
    let wc_small = onset(EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)));
    let wc_big = onset(EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)));
    assert!(dna < wc_small, "dna {dna} vs wc(256,100) {wc_small}");
    assert!(
        wc_small < wc_big,
        "wc(256,100) {wc_small} vs wc(256,500) {wc_big}"
    );
    // The paper's specific observations: DNA drops by P = 6 000;
    // WireCAP-B-(256,500) is lossless at P = 100 000.
    assert!(dna <= 5_000);
    assert!(wc_big > 100_000);
}

/// Fig. 10 shape: equal R·M ⇒ equal drop behaviour.
#[test]
fn fig10_rm_invariance() {
    let cfg = EngineConfig::paper(300);
    let mut rates = Vec::new();
    for (m, r) in [(64usize, 400usize), (128, 200), (256, 100)] {
        let mut gen = WireRateGen::paper_burst(50_000);
        let res = run(
            EngineKind::WireCap(WireCapConfig::basic(m, r, 300)),
            1,
            cfg,
            &mut gen,
        );
        rates.push(res.drop_rate());
    }
    for w in rates.windows(2) {
        assert!((w[0] - w[1]).abs() < 0.02, "{rates:?}");
    }
}

/// Table 1 shape on the trace: Type-II engines suffer only capture
/// drops, PF_RING converts them into delivery drops, and the hot queue
/// dominates.
#[test]
fn tab1_shape() {
    let trace = {
        // A hotter small trace: push the hot queue past one core
        // (~130 k p/s total, hot queue ≈ 1.5× one core's 38.8 k p/s).
        generate_border_trace(&BorderTraceConfig {
            packets: 400_000,
            duration_s: 3.0,
            ..BorderTraceConfig::small()
        })
    };
    let cfg = EngineConfig::paper(300);
    let mut cursor = TraceCursor::new(&trace);
    let dna = run(EngineKind::Dna, 6, cfg, &mut cursor);
    let mut cursor = TraceCursor::new(&trace);
    let netmap = run(EngineKind::Netmap, 6, cfg, &mut cursor);
    let mut cursor = TraceCursor::new(&trace);
    let pfring = run(EngineKind::PfRing, 6, cfg, &mut cursor);

    // Type-II: capture drops only.
    assert!(dna.total.capture_drops > 0);
    assert_eq!(dna.total.delivery_drops, 0);
    assert!(netmap.total.capture_drops > 0);
    // NETMAP's sync-quantized reclaim drops at least as much as DNA.
    assert!(netmap.drop_rate() >= dna.drop_rate());
    // PF_RING: no capture drops at these rates, delivery drops instead.
    assert_eq!(pfring.total.capture_drops, 0);
    assert!(pfring.total.delivery_drops > 0);
}

/// Fig. 11 shape: WireCAP-A ≤ WireCAP-B ≤ baselines at every queue
/// count. The small trace carries too few hot-queue packets to exhaust
/// the paper-sized (256,500) pools, so this runs a proportionally
/// scaled-down geometry: 16× replay speed (hot queue ≈ 1.3× one core)
/// against (64,20) pools (1 280 packets of buffering).
#[test]
fn fig11_ordering() {
    let trace = small_trace();
    let cfg = EngineConfig::paper(300);
    let rate = |kind: EngineKind, queues: usize| -> f64 {
        let mut cursor = TraceCursor::new(&trace).with_speed(16.0);
        run(kind, queues, cfg, &mut cursor).drop_rate()
    };
    for queues in [4usize, 6] {
        let dna = rate(EngineKind::Dna, queues);
        let wc_b = rate(
            EngineKind::WireCap(WireCapConfig::basic(64, 20, 300)),
            queues,
        );
        let wc_a = rate(
            EngineKind::WireCap(WireCapConfig::advanced(64, 20, 0.6, 300)),
            queues,
        );
        assert!(
            dna > 0.05,
            "baseline must struggle (queues={queues}): {dna}"
        );
        assert!(
            wc_b <= dna + 0.02,
            "B vs DNA (queues={queues}): {wc_b} vs {dna}"
        );
        assert!(
            wc_a < wc_b,
            "A must beat B (queues={queues}): {wc_a} vs {wc_b}"
        );
        assert!(wc_b > 0.0, "B must drop so A has something to fix");
    }
}

/// Fig. 13 shape: forwarding preserves the ordering, and WireCAP
/// transmits every packet it delivers.
#[test]
fn fig13_forwarding_ordering() {
    let trace = small_trace();
    let cfg = EngineConfig::paper_forwarding(300);
    let mut cursor = TraceCursor::new(&trace).with_speed(8.0);
    let dna = run(EngineKind::Dna, 4, cfg, &mut cursor);
    let mut cursor = TraceCursor::new(&trace).with_speed(8.0);
    let wc = run(
        EngineKind::WireCap(WireCapConfig::advanced(256, 100, 0.6, 300)),
        4,
        cfg,
        &mut cursor,
    );
    assert!(wc.drop_rate() < dna.drop_rate());
}

/// Fig. 12 shape: the offloading threshold matters less than having
/// offloading at all; all T values beat basic mode.
#[test]
fn fig12_any_threshold_beats_basic() {
    let trace = small_trace();
    let cfg = EngineConfig::paper(300);
    let mut cursor = TraceCursor::new(&trace).with_speed(16.0);
    let basic = run(
        EngineKind::WireCap(WireCapConfig::basic(64, 20, 300)),
        4,
        cfg,
        &mut cursor,
    )
    .drop_rate();
    assert!(basic > 0.0, "basic mode must drop under this load");
    for t in [0.6, 0.9] {
        let mut cursor = TraceCursor::new(&trace).with_speed(16.0);
        let adv = run(
            EngineKind::WireCap(WireCapConfig::advanced(64, 20, t, 300)),
            4,
            cfg,
            &mut cursor,
        )
        .drop_rate();
        assert!(adv < basic, "T={t}: {adv} vs basic {basic}");
    }
}
