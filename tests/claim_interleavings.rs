//! Exhaustive two-thread interleaving check for the claim CAS protocol
//! (`wirecap::claim::ClaimQueue::try_claim`, DESIGN.md §4.12).
//!
//! Loom is not available in this tree, so this is a hand-rolled model
//! checker: the consumer side of the protocol is restated as an
//! explicit step machine — one step per shared-memory access, exactly
//! mirroring `claim.rs` —
//!
//! 1. load `claim_pos`,
//! 2. load the target cell's ticket (then branch on
//!    published / empty / stale, a thread-local decision),
//! 3. CAS `claim_pos` forward (failure is the `Contended` outcome),
//! 4. read the value and release the ticket a lap ahead,
//!
//! and a DFS enumerates *every* interleaving of two claimer threads
//! over a prefilled, closed queue. Each terminal state must satisfy:
//! every item claimed exactly once (the step machine panics on a
//! double-take), both threads terminated via `Empty`, and the cursor
//! and tickets left exactly one lap ahead. A step budget bounds each
//! path, so a livelocking schedule fails loudly instead of hanging.
//!
//! The model checks the protocol's *logic* under sequential
//! consistency; the (stricter-than-needed) Acquire/Release pairing of
//! the real implementation is argued in `claim.rs`. A final smoke test
//! drives the real `ClaimQueue` through the schedule shapes the model
//! flags as interesting (contended claims) to tie the model to the
//! implementation.

use wirecap::{Claim, ClaimQueue};

const CAP: usize = 4;
const MASK: usize = CAP - 1;

/// Program counter of one modeled claimer, one variant per pending
/// shared-memory access.
#[derive(Clone, Debug)]
enum Pc {
    /// About to load `claim_pos`.
    Start,
    /// About to load the ticket of the cell at `pos`.
    LoadTicket { pos: usize },
    /// Ticket said published-and-unclaimed: about to CAS the cursor.
    Cas { pos: usize },
    /// Won the CAS: about to take the value and release the ticket.
    Take { pos: usize },
    /// Observed `Empty` on a closed queue: exited.
    Done,
}

#[derive(Clone)]
struct ThreadState {
    pc: Pc,
    claimed: Vec<u64>,
    contended: u32,
}

#[derive(Clone)]
struct Model {
    claim_pos: usize,
    tickets: [usize; CAP],
    values: [Option<u64>; CAP],
    threads: [ThreadState; 2],
    steps: u32,
}

impl Model {
    /// A closed queue prefilled with `items` (published at positions
    /// `0..items.len()`), exactly as `ClaimQueue::new` + `push` × n +
    /// `producer_done` leaves it.
    fn new(items: &[u64]) -> Self {
        assert!(items.len() <= CAP);
        let mut tickets = [0usize; CAP];
        let mut values = [None; CAP];
        for (i, t) in tickets.iter_mut().enumerate() {
            *t = i; // empty cell awaiting producer lap 0
        }
        for (pos, &v) in items.iter().enumerate() {
            values[pos] = Some(v);
            tickets[pos] = pos + 1; // published
        }
        let t = ThreadState {
            pc: Pc::Start,
            claimed: Vec::new(),
            contended: 0,
        };
        Model {
            claim_pos: 0,
            tickets,
            values,
            threads: [t.clone(), t],
            steps: 0,
        }
    }

    /// Executes thread `t`'s next atomic step.
    fn step(&mut self, t: usize, published: usize) {
        let pc = self.threads[t].pc.clone();
        match pc {
            Pc::Start => {
                let pos = self.claim_pos;
                self.threads[t].pc = Pc::LoadTicket { pos };
            }
            Pc::LoadTicket { pos } => {
                let ticket = self.tickets[pos & MASK] as isize;
                let dif = ticket - (pos as isize + 1);
                self.threads[t].pc = if dif == 0 {
                    Pc::Cas { pos }
                } else if dif < 0 {
                    // Empty. The real worker exits when the queue is
                    // also closed and empty; the model's queue is
                    // closed and a not-yet-published cell here can
                    // only be past the last item.
                    assert!(pos >= published, "spurious Empty at pos {pos}");
                    Pc::Done
                } else {
                    // Stale cursor: a peer claimed past this cell.
                    self.threads[t].contended += 1;
                    Pc::Start
                };
            }
            Pc::Cas { pos } => {
                if self.claim_pos == pos {
                    self.claim_pos = pos + 1;
                    self.threads[t].pc = Pc::Take { pos };
                } else {
                    // Lost the race — the explicit Contended outcome.
                    self.threads[t].contended += 1;
                    self.threads[t].pc = Pc::Start;
                }
            }
            Pc::Take { pos } => {
                let v = self.values[pos & MASK]
                    .take()
                    .unwrap_or_else(|| panic!("double claim of cell {pos}"));
                self.threads[t].claimed.push(v);
                self.tickets[pos & MASK] = pos + MASK + 1; // next lap
                self.threads[t].pc = Pc::Start;
            }
            Pc::Done => unreachable!("done threads are never scheduled"),
        }
    }
}

struct Stats {
    terminals: u64,
    max_contended: u32,
}

/// DFS over every interleaving; asserts each terminal state.
fn explore(model: Model, items: &[u64], stats: &mut Stats) {
    assert!(
        model.steps < 200,
        "step budget exceeded — livelock in the claim protocol model"
    );
    let runnable: Vec<usize> = (0..2)
        .filter(|&t| !matches!(model.threads[t].pc, Pc::Done))
        .collect();
    if runnable.is_empty() {
        stats.terminals += 1;
        stats.max_contended = stats
            .max_contended
            .max(model.threads[0].contended + model.threads[1].contended);
        // Every item claimed exactly once, across the two threads.
        let mut all: Vec<u64> = model.threads[0]
            .claimed
            .iter()
            .chain(model.threads[1].claimed.iter())
            .copied()
            .collect();
        all.sort_unstable();
        let mut want = items.to_vec();
        want.sort_unstable();
        assert_eq!(all, want, "items lost or duplicated");
        // Cursor consumed exactly the published prefix; every consumed
        // cell's ticket is one lap ahead.
        assert_eq!(model.claim_pos, items.len());
        for pos in 0..items.len() {
            assert_eq!(model.tickets[pos & MASK], pos + MASK + 1);
            assert!(model.values[pos & MASK].is_none());
        }
        return;
    }
    for t in runnable {
        let mut next = model.clone();
        next.steps += 1;
        next.step(t, items.len());
        explore(next, items, stats);
    }
}

#[test]
fn two_claimers_conserve_items_under_every_interleaving() {
    for items in [&[10u64][..], &[10, 20][..], &[10, 20, 30][..]] {
        let mut stats = Stats {
            terminals: 0,
            max_contended: 0,
        };
        explore(Model::new(items), items, &mut stats);
        assert!(stats.terminals > 0, "exploration reached no terminal state");
        if items.len() >= 2 {
            assert!(
                stats.max_contended > 0,
                "some schedule must exercise the Contended outcome"
            );
        }
        eprintln!(
            "claim_interleavings: {} items, {} terminal schedules, max contended {}",
            items.len(),
            stats.terminals,
            stats.max_contended
        );
    }
}

/// Ties the model to the real implementation: two real threads hammer
/// a small real `ClaimQueue`; conservation and the visible `Contended`
/// outcome must match what the model proved.
#[test]
fn real_claim_queue_matches_model_under_two_threads() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const N: u64 = 20_000;
    let q = Arc::new(ClaimQueue::new(CAP, 1));
    let sum = Arc::new(AtomicU64::new(0));
    let count = Arc::new(AtomicU64::new(0));
    let contended = Arc::new(AtomicU64::new(0));
    let claimers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            let contended = Arc::clone(&contended);
            std::thread::spawn(move || loop {
                match q.try_claim() {
                    Claim::Claimed(v) => {
                        sum.fetch_add(v, Ordering::Relaxed);
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                    Claim::Contended => {
                        contended.fetch_add(1, Ordering::Relaxed);
                        std::hint::spin_loop();
                    }
                    Claim::Empty => {
                        if q.is_closed() && q.is_empty() {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for i in 1..=N {
        while q.push(i).is_err() {
            std::thread::yield_now();
        }
    }
    q.producer_done();
    for c in claimers {
        c.join().unwrap();
    }
    assert_eq!(count.load(Ordering::Relaxed), N, "items lost or duplicated");
    assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
}
