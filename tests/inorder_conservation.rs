//! Concurrent-claim pool accounting under randomized interleavings,
//! with and without in-order delivery (DESIGN.md §4.12).
//!
//! Mirrors `steal_conservation.rs` for the COREC-style claim mode:
//! N workers drain the *same* queues' sealed streams through lock-free
//! claim words instead of deques and stealing. The audited invariants:
//!
//! * Σ `delivered_packets` + Σ `delivery_drop_packets` ==
//!   Σ `captured_packets` (every captured chunk reached a handler or
//!   was explicitly dropped by a forced stop — including chunks caught
//!   mid-claim or stranded behind a gap in the reorder buffer),
//! * Σ `recycled_chunks` == Σ `sealed_chunks` (every slot came home),
//! * Σ `steal_in_chunks` == Σ `steal_out_chunks` == 0 (claim mode
//!   never steals: the claim CAS is the load balancer),
//! * with `in_order`: per home queue, the handler observes strictly
//!   increasing sequence numbers, and no chunk is left in the reorder
//!   buffer after shutdown (`reorder_occupancy` drains to zero).
//!
//! Randomized worker stalls (a sleep on a pseudo-random subset of
//! chunks) force reorder-buffer occupancy and claim contention, so the
//! in-order path is exercised with real gaps, not just the fast path.
//! The pool tuning mode is randomized too (DESIGN.md §4.16): runs
//! alternate between `Throughput` and `CacheResident` at randomized
//! LLC budgets, so the shrunk-pool/fast-recycle path faces the same
//! interleavings — including forced stops — as the default.

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::EngineSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::{PoolWorkerReport, WireCapConfig};

/// One concurrent-claim pool run. `stall_us > 0` makes the handler
/// sleep on every chunk whose sequence number lands on a small residue
/// class, staggering workers so in-order runs accumulate real gaps.
/// `force_stop` tears the pool down right after the rings close,
/// exercising the claim-drain and reorder-strand sweep. `llc_kb > 0`
/// switches the pool to `CacheResident` tuning at that LLC budget
/// (shrinking R and bounding the claim burst at the recycle depth —
/// the fast-recycle path must conserve under every interleaving too);
/// 0 keeps the `Throughput` default.
#[allow(clippy::too_many_arguments)]
fn run_concurrent(
    total: u64,
    queues: usize,
    workers: usize,
    flows: u16,
    stall_us: u64,
    in_order: bool,
    force_stop: bool,
    llc_kb: u64,
) -> (EngineSnapshot, Vec<PoolWorkerReport>, u64) {
    let nic = LiveNic::new(queues, 8192);
    let mut cfg = WireCapConfig::basic(32, 64, 0);
    cfg.capture_timeout_ns = 1_000_000;
    cfg.concurrent_queue = true;
    cfg.in_order = in_order;
    if llc_kb > 0 {
        cfg.tuning = wirecap::TuningMode::CacheResident {
            llc_bytes: llc_kb * 1024,
        };
    }
    let groups = BuddyGroups::single(queues);
    let group = groups.group_of(0).cloned().expect("queue 0 grouped");
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();

    let handled = Arc::new(AtomicU64::new(0));
    // Last sequence number the handler saw per home queue (u64::MAX =
    // none yet). In-order delivery is serialized per queue by the
    // reorder pump, so a swap-and-compare is race-free.
    let last_seq: Arc<Vec<AtomicU64>> =
        Arc::new((0..queues).map(|_| AtomicU64::new(u64::MAX)).collect());
    let pool = {
        let handled = Arc::clone(&handled);
        let last_seq = Arc::clone(&last_seq);
        engine.consumer_pool(&group, workers, move |d| {
            let mut bytes = 0usize;
            for p in d.view().iter() {
                bytes += p.data.len();
            }
            assert!(bytes > 0 || d.is_empty());
            if in_order {
                let prev = last_seq[d.home()].swap(d.seq(), Ordering::SeqCst);
                assert!(
                    prev == u64::MAX || d.seq() > prev,
                    "queue {} delivered seq {} after {}",
                    d.home(),
                    d.seq(),
                    prev
                );
            }
            handled.fetch_add(d.len() as u64, Ordering::Relaxed);
            if stall_us > 0 && d.seq() % 5 == 0 {
                std::thread::sleep(Duration::from_micros(stall_us));
            }
        })
    };

    let mut b = PacketBuilder::new();
    for i in 0..total {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, 9, (i % u64::from(flows.max(1))) as u8, 9),
            9_000 + (i % u64::from(flows.max(1))) as u16,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        let pkt = b.build_packet(i * 1_000, &flow, 96).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();

    // `shutdown()` abandons whatever is still in the NIC ring (the
    // backpressure design leaves overflow to the hardware's drop
    // accounting), so conservation against `total` is only meaningful
    // once capture has drained the ring. In-order runs make exhaustion
    // likely: the reorder pump serializes stalled handlers, chunks pool
    // up in the buffer, and capture parks out of free slots — wait for
    // every injected packet to be captured or capture-dropped first.
    // Forced stops still find work queued in the claim and reorder
    // buffers, so the drop-drain path stays exercised.
    let observer = engine.observer();
    loop {
        let s = observer.snapshot();
        let seen: u64 = s
            .queues
            .iter()
            .map(|q| q.captured_packets + q.capture_drop_packets)
            .sum();
        if seen >= total {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    engine.shutdown();
    let reports = if force_stop { pool.stop() } else { pool.join() };
    let snap = observer.snapshot();
    (snap, reports, handled.load(Ordering::Relaxed))
}

fn assert_conserved(snap: &EngineSnapshot, total: u64) {
    let steal_out: u64 = snap.queues.iter().map(|q| q.steal_out_chunks).sum();
    let steal_in: u64 = snap.queues.iter().map(|q| q.steal_in_chunks).sum();
    assert_eq!(steal_out, 0, "claim mode must never steal: {snap:?}");
    assert_eq!(steal_in, 0, "claim mode must never steal: {snap:?}");
    let captured: u64 = snap.queues.iter().map(|q| q.captured_packets).sum();
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    let delivery_dropped: u64 = snap.queues.iter().map(|q| q.delivery_drop_packets).sum();
    assert_eq!(
        delivered + delivery_dropped,
        captured,
        "packets lost between capture and the claim workers: {snap:?}"
    );
    let sealed: u64 = snap.queues.iter().map(|q| q.sealed_chunks).sum();
    let recycled: u64 = snap.queues.iter().map(|q| q.recycled_chunks).sum();
    assert_eq!(recycled, sealed, "chunk slots leaked: {snap:?}");
    let dropped: u64 = snap.queues.iter().map(|q| q.capture_drop_packets).sum();
    assert_eq!(
        captured + dropped,
        total,
        "captured + capture-dropped must cover every injected packet: {snap:?}"
    );
    let stranded: u64 = snap.queues.iter().map(|q| q.reorder_occupancy).sum();
    assert_eq!(stranded, 0, "chunks stranded in reorder buffers: {snap:?}");
}

/// Deterministic in-order smoke test (tier-1): skewed single-flow
/// traffic on one hot queue, three claim workers with staggered
/// stalls, strictly increasing delivery asserted in the handler.
#[test]
fn inorder_claims_deliver_sequenced_and_conserve() {
    let (snap, reports, handled) = run_concurrent(1_600, 2, 3, 1, 120, true, false, 0);
    assert_conserved(&snap, 1_600);
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    assert_eq!(handled, delivered, "handler saw every delivered packet");
    assert_eq!(
        reports.iter().map(|r| r.packets).sum::<u64>(),
        delivered,
        "worker reports disagree with telemetry"
    );
    assert_eq!(handled, 1_600, "natural join delivers everything");
}

/// A forced stop mid-claim drops whatever is still queued or stranded
/// behind a reorder gap, and the drops are accounted — no chunk is
/// left in the buffer, no slot leaks. Runs under `CacheResident`
/// tuning: the shrunk pool and the depth-bounded claim burst must not
/// perturb the forced-stop sweep.
#[test]
fn forced_stop_drains_reorder_buffer_without_leaks() {
    let (snap, reports, handled) = run_concurrent(2_000, 2, 3, 4, 150, true, true, 2 * 1024);
    assert_conserved(&snap, 2_000);
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    assert_eq!(handled, delivered);
    assert_eq!(reports.iter().map(|r| r.packets).sum::<u64>(), delivered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation and per-queue delivery order hold across
    /// randomized claim interleavings: any worker count, any flow
    /// spread, any stall pattern, graceful or forced teardown,
    /// ordered or unordered, under either tuning mode (`llc_kb == 0`
    /// is `Throughput`; otherwise `CacheResident` budgets from a tiny
    /// 256 KiB up past the pool's full working set).
    #[test]
    fn claim_accounting_survives_random_interleavings(
        total in 400u64..2_500,
        queues in 1usize..4,
        workers in 1usize..5,
        flows in 1u16..8,
        stall_us in 0u64..150,
        in_order in any::<bool>(),
        force_stop in any::<bool>(),
        llc_kb in prop_oneof![Just(0u64), 256u64..16_384],
    ) {
        let (snap, reports, handled) =
            run_concurrent(total, queues, workers, flows, stall_us, in_order, force_stop, llc_kb);
        assert_conserved(&snap, total);
        let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
        prop_assert_eq!(handled, delivered);
        prop_assert_eq!(reports.iter().map(|r| r.packets).sum::<u64>(), delivered);
        prop_assert_eq!(reports.len(), workers);
        if !force_stop {
            prop_assert_eq!(handled, total, "natural join delivers everything");
        }
    }
}
