//! Tier-1 smoke test for the capture-to-disk subsystem.
//!
//! Runs the `capture_and_save` workload end to end against a tempdir:
//! a live multi-queue engine, the `capdisk` sink with an aggressive
//! rotation policy, and a throttled variant that forces the
//! graceful-degradation path. The contract under test is the headline
//! one from DESIGN.md: a slow (or even absent) disk never stalls
//! capture, and every delivered packet is accounted for exactly —
//! `delivered == written + disk_drop`, with the written side readable
//! back out of standard pcapng files.

use capdisk::{read_pcapng, DiskSinkConfig, FileFormat, RotationPolicy, SinkMode};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::Arc;
use wirecap::WireCapConfig;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wirecap-c2d-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn inject_and_stop(nic: &Arc<LiveNic>, total: u64) {
    let mut b = PacketBuilder::new();
    for i in 0..total {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, 2, (i % 250) as u8, 1),
            (3_000 + i % 7_000) as u16,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        let pkt = b.build_packet(i * 2_000, &flow, 200).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
}

fn cfg() -> WireCapConfig {
    let mut cfg = WireCapConfig::basic(64, 48, 0);
    cfg.capture_timeout_ns = 2_000_000;
    cfg
}

/// The capture_and_save smoke: full-speed disk, rotation splits the
/// stream, zero unaccounted packets, every file parses back.
#[test]
fn capture_and_save_round_trips_through_rotated_pcapng() {
    let dir = tempdir("smoke");
    let total = 6_000u64;
    let queues = 2;
    let nic = LiveNic::new(queues, 4096);
    let mut sink = DiskSinkConfig::new(&dir);
    sink.rotation = RotationPolicy {
        max_file_bytes: 96 << 10,
        max_file_duration: None,
    };
    let injector = {
        let nic = Arc::clone(&nic);
        std::thread::spawn(move || inject_and_stop(&nic, total))
    };
    let out = apps::save::run(Arc::clone(&nic), cfg(), SinkMode::Disk(sink));
    injector.join().unwrap();

    let report = out.disk.as_ref().expect("disk mode");
    assert!(out.is_conserved(), "unaccounted packets: {report:?}");
    assert_eq!(out.delivered_packets, total);
    assert_eq!(report.written_packets() + report.dropped_packets(), total);

    // Telemetry and the sink report agree on both legs.
    let tel_written: u64 = out
        .snapshot
        .queues
        .iter()
        .map(|q| q.disk_written_packets)
        .sum();
    let tel_dropped: u64 = out
        .snapshot
        .queues
        .iter()
        .map(|q| q.disk_drop_packets)
        .sum();
    assert_eq!(tel_written, report.written_packets());
    assert_eq!(tel_dropped, report.dropped_packets());

    // Rotation produced a multi-file set and every file stands alone.
    let files = report.files();
    assert!(
        files.len() > queues,
        "expected rotation splits, got {files:?}"
    );
    let mut parsed = 0u64;
    for f in &files {
        let pf = read_pcapng(&std::fs::read(f).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        assert_eq!(pf.tsresol, 9, "nanosecond timestamps");
        parsed += pf.packets.len() as u64;
    }
    assert_eq!(parsed, report.written_packets());
    std::fs::remove_dir_all(&dir).ok();
}

/// The degradation smoke: a severely throttled emulated disk sheds
/// packets from the disk leg, capture itself stays lossless, and the
/// shed packets are counted — never silently lost.
#[test]
fn throttled_disk_degrades_gracefully_without_stalling_capture() {
    let dir = tempdir("throttle");
    let total = 8_000u64;
    let nic = LiveNic::new(2, 8192);
    let mut sink = DiskSinkConfig::new(&dir);
    sink.format = FileFormat::Pcap;
    sink.handoff_chunks = 2;
    sink.max_write_bps = Some(150_000);
    let injector = {
        let nic = Arc::clone(&nic);
        std::thread::spawn(move || inject_and_stop(&nic, total))
    };
    let out = apps::save::run(Arc::clone(&nic), cfg(), SinkMode::Disk(sink));
    injector.join().unwrap();

    let report = out.disk.as_ref().expect("disk mode");
    assert!(out.is_conserved(), "unaccounted packets: {report:?}");
    // The disk leg shed (the whole point of the throttle)…
    assert!(
        report.dropped_packets() > 0,
        "throttle never bit: {report:?}"
    );
    // …and global accounting stays exact: every injected packet is
    // either written, shed by the disk leg, or counted as a capture
    // drop — nothing vanishes.
    assert_eq!(
        out.delivered_packets + out.capture_drop_packets,
        total,
        "unaccounted packets: {report:?}"
    );
    assert_eq!(
        report.written_packets() + report.dropped_packets(),
        out.delivered_packets
    );
    // The capture side must not be *stalled* by the slow disk. Unpaced
    // injection on a loaded CI host can cost a few chunks to scheduler
    // jitter (the drainer is a plain thread), but a writer that
    // back-pressured capture would lose the majority of the run — so
    // bound the capture-side loss well below that.
    assert!(
        out.capture_drop_packets < total / 4,
        "slow disk appears to stall capture: {} of {total} capture-dropped",
        out.capture_drop_packets
    );
    std::fs::remove_dir_all(&dir).ok();
}
