//! Flow-accounting conservation under randomized pool schedules.
//!
//! The flow table's core invariant (DESIGN.md §4.15) is that eviction
//! loses identity but never counts: at any instant,
//!
//! * Σ live per-flow `packets` + `evicted_packets` == `tracked_packets`,
//! * and with every delivered frame parseable (synthetic traffic),
//!   Σ `tracked_packets` over the workers' sinks == Σ `delivered_packets`
//!   from the pool reports — even when the pool is forced down with
//!   chunks still queued (those count as delivery drops, not flows).
//!
//! The proptest drives randomized packet/queue/worker/flow schedules
//! through both the work-stealing pool and the concurrent claim path,
//! with tables sized small enough that eviction actually fires, and
//! checks the per-chunk telemetry flushes agree with the sinks.

use flowstat::{FlowSink, FlowSinkConfig};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};
use telemetry::EngineSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::{PoolWorkerReport, WireCapConfig};

struct FlowRun {
    sinks: Vec<FlowSink>,
    reports: Vec<PoolWorkerReport>,
    snap: EngineSnapshot,
    /// Ground truth: packets injected per flow.
    injected: HashMap<FlowKey, u64>,
}

fn flow_key(i: u64, flows: u16) -> FlowKey {
    let f = i % u64::from(flows.max(1));
    FlowKey::udp(
        Ipv4Addr::new(10, 9, (f % 250) as u8, 9),
        9_000 + f as u16,
        Ipv4Addr::new(131, 225, 2, 1),
        443,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_flow_pool(
    total: u64,
    queues: usize,
    workers: usize,
    flows: u16,
    table_capacity: usize,
    concurrent: bool,
    in_order: bool,
    force_stop: bool,
) -> FlowRun {
    let nic = LiveNic::new(queues, 8192);
    let mut cfg = WireCapConfig::basic(32, 64, 0);
    cfg.capture_timeout_ns = 1_000_000;
    cfg.concurrent_queue = concurrent;
    cfg.in_order = concurrent && in_order;
    let groups = BuddyGroups::single(queues);
    let group = groups.group_of(0).cloned().expect("queue 0 grouped");
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();

    let reg = engine.registry_handle();
    let sinks: Arc<Vec<Mutex<FlowSink>>> = Arc::new(
        (0..workers)
            .map(|_| {
                Mutex::new(FlowSink::new(FlowSinkConfig {
                    table_capacity,
                    topk_capacity: 16,
                }))
            })
            .collect(),
    );
    let pool = {
        let sinks = Arc::clone(&sinks);
        engine.consumer_pool(&group, workers, move |d| {
            let mut sink = sinks[d.worker()].lock().expect("sink poisoned");
            sink.record_frames(d.view().iter().map(|p| p.data));
            let deltas = sink.drain_deltas();
            drop(sink);
            let flow = &reg.queue(d.home()).flow.0;
            flow.flow_tracked_packets.add(deltas.packets);
            flow.flow_evicted_flows.add(deltas.evicted_flows);
            flow.flow_evicted_packets.add(deltas.evicted_packets);
            flow.flow_hash_collisions.add(deltas.hash_collisions);
        })
    };

    let mut injected: HashMap<FlowKey, u64> = HashMap::new();
    let mut b = PacketBuilder::new();
    for i in 0..total {
        let flow = flow_key(i, flows);
        *injected.entry(flow).or_insert(0) += 1;
        let pkt = b.build_packet(i * 1_000, &flow, 96).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();

    let observer = engine.observer();
    engine.shutdown();
    let reports = if force_stop { pool.stop() } else { pool.join() };
    let snap = observer.snapshot();
    let Ok(sinks) = Arc::try_unwrap(sinks) else {
        unreachable!("pool joined, sinks unshared");
    };
    let sinks = sinks
        .into_iter()
        .map(|m| m.into_inner().expect("sink poisoned"))
        .collect();
    FlowRun {
        sinks,
        reports,
        snap,
        injected,
    }
}

fn assert_flow_conserved(r: &FlowRun) {
    let delivered: u64 = r.reports.iter().map(|w| w.packets).sum();

    // Per sink: live counts plus the eviction aggregate cover exactly
    // the packets that sink recorded.
    let mut tracked = 0u64;
    let mut evicted_packets = 0u64;
    let mut per_flow: HashMap<FlowKey, u64> = HashMap::new();
    for s in &r.sinks {
        let st = s.stats();
        let live: u64 = s.table().iter().map(|(_, p, _)| p).sum();
        assert_eq!(
            live + st.evicted_packets,
            st.tracked_packets,
            "sink leaked packets between live flows and the eviction aggregate"
        );
        assert_eq!(s.unparsed(), 0, "synthetic frames always parse");
        tracked += st.tracked_packets;
        evicted_packets += st.evicted_packets;
        for (key, p, _) in s.table().iter() {
            *per_flow.entry(key.to_flow()).or_insert(0) += p;
        }
    }

    // Every delivered frame was recorded into exactly one sink.
    assert_eq!(tracked, delivered, "delivered vs tracked drifted");

    // Merged across workers, per-flow counts plus evictions cover
    // delivery; no flow exceeds its injected count.
    let merged_live: u64 = per_flow.values().sum();
    assert_eq!(merged_live + evicted_packets, delivered);
    for (flow, n) in &per_flow {
        let injected = r.injected.get(flow).copied().unwrap_or(0);
        assert!(
            *n <= injected,
            "flow {flow:?} counted {n} packets but only {injected} were injected"
        );
    }

    // The per-chunk telemetry flushes agree with the sinks' own books.
    let tel_tracked: u64 = r.snap.queues.iter().map(|q| q.flow_tracked_packets).sum();
    let tel_evicted: u64 = r.snap.queues.iter().map(|q| q.flow_evicted_packets).sum();
    assert_eq!(tel_tracked, tracked, "telemetry missed recorded packets");
    assert_eq!(tel_evicted, evicted_packets, "telemetry missed evictions");
}

/// Deterministic smoke: enough flows into a deliberately small table
/// that eviction must fire, and conservation still holds.
#[test]
fn eviction_pressure_conserves_counts() {
    let r = run_flow_pool(3_000, 2, 2, 500, 64, false, false, false);
    assert_flow_conserved(&r);
    let evicted: u64 = r.sinks.iter().map(|s| s.stats().evicted_flows).sum();
    assert!(
        evicted > 0,
        "500 flows against 64 slots must evict; stats: {:?}",
        r.sinks.iter().map(|s| s.stats()).collect::<Vec<_>>()
    );
}

/// Without eviction pressure, the merged per-flow counts are *exact*:
/// every flow's merged count equals its injected count.
#[test]
fn exact_per_flow_counts_without_eviction() {
    let r = run_flow_pool(2_000, 2, 3, 40, 4096, false, false, false);
    assert_flow_conserved(&r);
    let mut per_flow: HashMap<FlowKey, u64> = HashMap::new();
    for s in &r.sinks {
        for (key, p, _) in s.table().iter() {
            *per_flow.entry(key.to_flow()).or_insert(0) += p;
        }
    }
    assert_eq!(per_flow, r.injected, "merged per-flow counts must be exact");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation survives randomized schedules across both delivery
    /// modes, small tables (eviction), and forced stops (delivery
    /// drops never reach a sink).
    #[test]
    fn flow_accounting_survives_random_schedules(
        total in 400u64..2_000,
        queues in 1usize..3,
        workers in 1usize..4,
        flows in 1u16..300,
        table_shift in 5usize..13,
        concurrent in any::<bool>(),
        in_order in any::<bool>(),
        force_stop in any::<bool>(),
    ) {
        let r = run_flow_pool(
            total, queues, workers, flows, 1usize << table_shift,
            concurrent, in_order, force_stop,
        );
        assert_flow_conserved(&r);
        prop_assert_eq!(r.reports.len(), workers);
    }
}
