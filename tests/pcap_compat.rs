//! Integration: the Libpcap-compatible surface end to end.
//!
//! A monitoring application written against the pcap API must work
//! unchanged whether its packets come from a savefile, a rendered trace,
//! or the live WireCAP engine (§3.2.2e).

use netproto::Packet;
use pcap::capture::{Capture, VecSource};
use pcap::savefile::{read_file, write_file, Precision};
use traffic::{generate_border_trace, BorderTraceConfig};

/// The "application": counts packets matching the paper's filter.
fn count_matching(cap: &mut Capture<VecSource>) -> u64 {
    cap.set_filter_expr("131.225.2 and udp").unwrap();
    let mut n = 0;
    cap.loop_(|_| n += 1);
    n
}

fn rendered_trace() -> Vec<Packet> {
    let trace = generate_border_trace(&BorderTraceConfig {
        packets: 3_000,
        duration_s: 1.0,
        flows: 120,
        max_flow_packets: 500.0,
        ..BorderTraceConfig::small()
    });
    trace.render_all()
}

#[test]
fn same_verdicts_from_trace_and_savefile_roundtrip() {
    let packets = rendered_trace();

    // Path 1: straight from the rendered trace.
    let mut direct = Capture::new(VecSource::new(packets.clone()));
    let direct_count = count_matching(&mut direct);

    // Path 2: through a pcap savefile on disk (both precisions).
    for precision in [Precision::Nanos, Precision::Micros] {
        let mut file = Vec::new();
        write_file(&mut file, &packets, precision, 65_535).unwrap();
        let mut via_file = Capture::new(VecSource::from_savefile(&file).unwrap());
        assert_eq!(
            count_matching(&mut via_file),
            direct_count,
            "{precision:?} roundtrip changed filter verdicts"
        );
    }
}

#[test]
fn every_rendered_packet_is_well_formed() {
    for pkt in rendered_trace() {
        netproto::builder::validate_frame(&pkt.data).expect("trace renders valid frames");
    }
}

#[test]
fn savefile_preserves_timestamps_at_nanos() {
    let packets = rendered_trace();
    let mut file = Vec::new();
    write_file(&mut file, &packets, Precision::Nanos, 65_535).unwrap();
    let sf = read_file(&file[..]).unwrap();
    assert_eq!(sf.packets.len(), packets.len());
    for (a, b) in sf.packets.iter().zip(&packets) {
        assert_eq!(a.ts_ns, b.ts_ns);
        assert_eq!(a.data, b.data);
    }
}

#[test]
fn snaplen_capture_still_filters_correctly() {
    // Truncating to 96 bytes keeps all the headers the filter needs.
    let packets = rendered_trace();
    let mut full = Capture::new(VecSource::new(packets.clone()));
    let expect = count_matching(&mut full);

    let mut truncated = Capture::new(VecSource::new(packets));
    truncated.set_snaplen(96);
    assert_eq!(count_matching(&mut truncated), expect);
}

#[test]
fn dispatch_batching_equals_loop() {
    let packets = rendered_trace();
    let mut by_loop = Capture::new(VecSource::new(packets.clone()));
    let expect = count_matching(&mut by_loop);

    let mut by_dispatch = Capture::new(VecSource::new(packets));
    by_dispatch.set_filter_expr("131.225.2 and udp").unwrap();
    let mut n = 0;
    while by_dispatch.dispatch(7, |_| n += 1) > 0 {}
    assert_eq!(n, expect);
}
