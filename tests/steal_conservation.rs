//! Work-stealing pool accounting under randomized interleavings.
//!
//! Mirrors `offload_conservation.rs` one layer down: where that test
//! audits buddy-group offloading between capture threads, this one
//! audits chunk stealing between pool workers. The invariants are the
//! same shape, and both steal counters are incremented at the *same*
//! steal event (the thief charges the victim chunk's home queue with
//! `steal_out_chunks` and its own primary queue with `steal_in_chunks`
//! in one motion), so no interleaving can split them:
//!
//! * Σ `steal_in_chunks` == Σ `steal_out_chunks`,
//! * Σ `delivered_packets` + Σ `delivery_drop_packets` ==
//!   Σ `captured_packets` (every captured packet reached a handler or
//!   is explicitly counted as dropped by a forced pool stop),
//! * Σ `recycled_chunks` == Σ `sealed_chunks` (every slot came home —
//!   stealing moves handles, never slots, and recycling stays
//!   home-pool-only).
//!
//! A deterministic two-thread smoke test pins down the raw deque
//! (tier-1, run by `scripts/check.sh`), a deterministic skewed-traffic
//! run pins that stealing actually fires, and a proptest drives
//! randomized worker/queue/handler-latency schedules over the full
//! pool.

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::EngineSnapshot;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::{steal_deque, PoolWorkerReport, Steal, WireCapConfig};

/// Deterministic two-thread deque exercise: the owner pushes and pops
/// from the bottom while one thief steals from the top; every pushed
/// item comes out exactly once, on exactly one side.
#[test]
fn steal_smoke_two_threads_conserve_items() {
    const N: u64 = 50_000;
    let (mut owner, stealer) = steal_deque::<u64>(N as usize);
    let thief = std::thread::spawn(move || {
        let mut got = Vec::new();
        loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    if v == u64::MAX {
                        return got;
                    }
                    got.push(v);
                }
                Steal::Retry => {}
                Steal::Empty => std::thread::yield_now(),
            }
        }
    });
    let mut kept = Vec::new();
    for i in 0..N {
        owner.push(i).expect("deque sized to hold every item");
        // Interleave pops so both ends are contended.
        if i % 3 == 0 {
            if let Some(v) = owner.pop() {
                kept.push(v);
            }
        }
    }
    while let Some(v) = owner.pop() {
        kept.push(v);
    }
    // Sentinel: the deque is empty now, so the thief sees it next.
    owner.push(u64::MAX).unwrap();
    let mut stolen = thief.join().unwrap();
    assert!(owner.is_empty());
    kept.append(&mut stolen);
    kept.sort_unstable();
    assert_eq!(kept.len() as u64, N, "items lost or duplicated");
    for (i, v) in kept.iter().enumerate() {
        assert_eq!(*v, i as u64, "item set corrupted at {i}");
    }
}

/// One pool run: `total` packets spread over `flows` flows into a
/// `queues`-queue NIC, consumed by a `workers`-worker pool whose
/// handler sleeps `work_us` per chunk. When `force_stop` is set the
/// pool is torn down right after the rings close instead of joining
/// naturally, exercising the delivery-drop drain path.
fn run_pool(
    total: u64,
    queues: usize,
    workers: usize,
    flows: u16,
    work_us: u64,
    force_stop: bool,
) -> (EngineSnapshot, Vec<PoolWorkerReport>, u64) {
    let nic = LiveNic::new(queues, 8192);
    let mut cfg = WireCapConfig::basic(32, 64, 0);
    cfg.capture_timeout_ns = 1_000_000;
    let groups = BuddyGroups::single(queues);
    let group = groups.group_of(0).cloned().expect("queue 0 grouped");
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();

    let handled = Arc::new(AtomicU64::new(0));
    let pool = {
        let handled = Arc::clone(&handled);
        engine.consumer_pool(&group, workers, move |d| {
            // Touch the payload so the borrow is real, then simulate
            // per-chunk application work.
            let mut bytes = 0usize;
            for p in d.view().iter() {
                bytes += p.data.len();
            }
            assert!(bytes > 0 || d.is_empty());
            handled.fetch_add(d.len() as u64, Ordering::Relaxed);
            if work_us > 0 {
                std::thread::sleep(Duration::from_micros(work_us));
            }
        })
    };

    let mut b = PacketBuilder::new();
    for i in 0..total {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, 9, (i % u64::from(flows.max(1))) as u8, 9),
            9_000 + (i % u64::from(flows.max(1))) as u16,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        let pkt = b.build_packet(i * 1_000, &flow, 96).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();

    // Shutdown closes the rings; the pool then drains to end-of-stream
    // (join) or is forced down with work still queued (stop).
    let observer = engine.observer();
    engine.shutdown();
    let reports = if force_stop { pool.stop() } else { pool.join() };
    let snap = observer.snapshot();
    (snap, reports, handled.load(Ordering::Relaxed))
}

fn assert_conserved(snap: &EngineSnapshot, total: u64) {
    let steal_out: u64 = snap.queues.iter().map(|q| q.steal_out_chunks).sum();
    let steal_in: u64 = snap.queues.iter().map(|q| q.steal_in_chunks).sum();
    assert_eq!(steal_out, steal_in, "steal out/in drifted: {snap:?}");
    let captured: u64 = snap.queues.iter().map(|q| q.captured_packets).sum();
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    let delivery_dropped: u64 = snap.queues.iter().map(|q| q.delivery_drop_packets).sum();
    assert_eq!(
        delivered + delivery_dropped,
        captured,
        "packets lost between capture and the pool: {snap:?}"
    );
    let sealed: u64 = snap.queues.iter().map(|q| q.sealed_chunks).sum();
    let recycled: u64 = snap.queues.iter().map(|q| q.recycled_chunks).sum();
    assert_eq!(recycled, sealed, "chunk slots leaked: {snap:?}");
    let dropped: u64 = snap.queues.iter().map(|q| q.capture_drop_packets).sum();
    assert_eq!(
        captured + dropped,
        total,
        "captured + capture-dropped must cover every injected packet: {snap:?}"
    );
}

/// Deterministic pool smoke test (tier-1, run by `scripts/check.sh`):
/// skewed single-flow traffic concentrates every chunk on one queue, so
/// the worker owning the other queue can only contribute by stealing —
/// and conservation must survive it doing so.
#[test]
fn pool_steals_under_skew_and_conserves() {
    let (snap, reports, handled) = run_pool(1_600, 2, 2, 1, 100, false);
    assert_conserved(&snap, 1_600);
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    assert_eq!(handled, delivered, "handler saw every delivered packet");
    assert_eq!(
        reports.iter().map(|r| r.packets).sum::<u64>(),
        delivered,
        "worker reports disagree with telemetry"
    );
    let stolen: u64 = reports.iter().map(|r| r.stolen_chunks).sum();
    let steal_out: u64 = snap.queues.iter().map(|q| q.steal_out_chunks).sum();
    assert_eq!(stolen, steal_out, "report/telemetry steal counts differ");
    assert!(
        stolen > 0,
        "skewed traffic with a slow handler must provoke stealing: {reports:?}"
    );
}

/// A forced stop right after the rings close recycles queued chunks as
/// delivery drops — conservation holds without a graceful drain.
#[test]
fn forced_pool_stop_accounts_queued_chunks_as_drops() {
    let (snap, reports, handled) = run_pool(2_000, 2, 2, 4, 150, true);
    assert_conserved(&snap, 2_000);
    let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
    assert_eq!(handled, delivered);
    assert_eq!(reports.iter().map(|r| r.packets).sum::<u64>(), delivered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation holds across randomized steal/pop/recycle
    /// schedules: any worker count (including workers with no owned
    /// queue), any flow spread, any handler latency.
    #[test]
    fn pool_accounting_survives_random_interleavings(
        total in 400u64..2_500,
        queues in 1usize..4,
        workers in 1usize..5,
        flows in 1u16..8,
        work_us in 0u64..120,
        force_stop in any::<bool>(),
    ) {
        let (snap, reports, handled) =
            run_pool(total, queues, workers, flows, work_us, force_stop);
        assert_conserved(&snap, total);
        let delivered: u64 = snap.queues.iter().map(|q| q.delivered_packets).sum();
        prop_assert_eq!(handled, delivered);
        prop_assert_eq!(reports.iter().map(|r| r.packets).sum::<u64>(), delivered);
        prop_assert_eq!(reports.len(), workers);
    }
}
