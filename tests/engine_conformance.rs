//! Engine-conformance suite: every capture engine, same contracts.
//!
//! The harness treats all engines uniformly through the `CaptureEngine`
//! trait; these tests pin down the contract every implementation must
//! honor — empty runs, idle gaps, repeated finish, stats consistency at
//! every intermediate point, and independence from advance() cadence.

use apps::harness::EngineKind;
use engines::EngineConfig;
use sim::SimTime;
use wirecap::WireCapConfig;

fn all_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::Dna,
        EngineKind::Netmap,
        EngineKind::PfRing,
        EngineKind::PfPacket,
        EngineKind::Psioe,
        EngineKind::Dpdk,
        EngineKind::DpdkAppOffload(0.6),
        EngineKind::WireCap(WireCapConfig::basic(64, 20, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(64, 20, 0.6, 300)),
    ]
}

#[test]
fn empty_run_is_clean() {
    for kind in all_engines() {
        let mut e = kind.build(2, EngineConfig::paper(300));
        let end = e.finish(SimTime(0));
        assert_eq!(end, SimTime(0), "{}", e.name());
        let s = e.total_stats();
        assert_eq!(s.offered, 0, "{}", e.name());
        assert!(s.is_consistent(), "{}", e.name());
    }
}

#[test]
fn long_idle_gaps_do_not_bank_capacity_or_lose_packets() {
    for kind in all_engines() {
        let mut e = kind.build(1, EngineConfig::paper(300));
        // Three widely spaced packets: a second of idle between each.
        for i in 0..3u64 {
            e.on_arrival(SimTime(i * 1_000_000_000), 0, 64);
        }
        e.finish(SimTime(10_000_000_000));
        let s = e.total_stats();
        assert_eq!(s.offered, 3, "{}", e.name());
        assert_eq!(s.delivered, 3, "{}", e.name());
        assert_eq!(s.overall_drop_rate(), 0.0, "{}", e.name());
    }
}

#[test]
fn finish_is_idempotent() {
    for kind in all_engines() {
        let mut e = kind.build(1, EngineConfig::paper(300));
        for i in 0..500u64 {
            e.on_arrival(SimTime(i * 10_000), 0, 64);
        }
        let end1 = e.finish(SimTime(500 * 10_000));
        let stats1 = e.total_stats();
        let end2 = e.finish(end1);
        let stats2 = e.total_stats();
        assert_eq!(stats1, stats2, "{}", e.name());
        assert_eq!(end1, end2, "{}", e.name());
    }
}

#[test]
fn stats_consistent_at_every_intermediate_point() {
    for kind in all_engines() {
        let mut e = kind.build(2, EngineConfig::paper(300));
        for i in 0..2_000u64 {
            e.on_arrival(SimTime(i * 5_000), (i % 2) as usize, 64);
            if i % 97 == 0 {
                let s = e.total_stats();
                assert!(s.is_consistent(), "{} at i={i}: {s:?}", e.name());
            }
        }
        e.finish(SimTime(2_000 * 5_000));
        assert!(e.total_stats().is_consistent(), "{}", e.name());
    }
}

#[test]
fn interleaved_advance_calls_do_not_change_outcomes() {
    // Calling advance() between arrivals (as a poll-driven harness might)
    // must not change the final accounting.
    for kind in all_engines() {
        let cfg = EngineConfig::paper(300);
        let mut plain = kind.build(1, cfg);
        let mut chatty = kind.build(1, cfg);
        for i in 0..1_000u64 {
            let t = SimTime(i * 20_000);
            plain.on_arrival(t, 0, 64);
            chatty.advance(t);
            chatty.on_arrival(t, 0, 64);
            chatty.advance(SimTime(t.as_nanos() + 1_000));
        }
        plain.finish(SimTime(1_000 * 20_000));
        chatty.finish(SimTime(1_000 * 20_000));
        let a = plain.total_stats();
        let b = chatty.total_stats();
        // The fluid integrators floor whole completions at whatever step
        // boundaries they are advanced across, so a ±2-packet wobble at
        // different cadences is inherent; anything larger would mean the
        // cadence changed behaviour.
        let drops_a = a.capture_drops + a.delivery_drops;
        let drops_b = b.capture_drops + b.delivery_drops;
        assert!(
            drops_a.abs_diff(drops_b) <= 2,
            "{}: {a:?} vs {b:?}",
            plain.name()
        );
        assert!(
            a.delivered.abs_diff(b.delivered) <= 2,
            "{}: delivered {} vs {}",
            plain.name(),
            a.delivered,
            b.delivered
        );
    }
}

#[test]
fn names_are_distinct_and_stable() {
    let names: Vec<String> = all_engines()
        .iter()
        .map(|k| k.build(1, EngineConfig::paper(0)).name())
        .collect();
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate engine names: {names:?}"
    );
}

/// Live-backend conformance: the real-thread engine behind every
/// [`wirecap::CaptureBackend`] must honor the same contracts — the
/// conservation laws, the zero-copy hot path, and clean teardown —
/// whether frames come from `nicsim`'s owned-packet rings or from
/// `shmring`'s shared-memory descriptor rings.
mod live_backends {
    use netproto::{FlowKey, PacketBuilder};
    use nicsim::livenic::LiveNic;
    use shmring::ShmRingNic;
    use std::net::Ipv4Addr;
    use std::sync::{Arc, Mutex};
    use wirecap::arena::arena_allocations;
    use wirecap::buddy::BuddyGroups;
    use wirecap::live::LiveWireCap;
    use wirecap::{CaptureBackend, LoopbackBackend, NicSimBackend, WireCapConfig};

    /// Serializes the live tests in this binary: `arena_allocations()`
    /// is a global counter, so the zero-copy assertion must not race
    /// another live engine's start.
    static LIVE: Mutex<()> = Mutex::new(());

    /// Every loopback-capable backend, same geometry. A new conformant
    /// backend earns its row here and nowhere else.
    fn backends(queues: usize, depth: usize) -> Vec<Arc<dyn LoopbackBackend>> {
        vec![
            NicSimBackend::new(LiveNic::new(queues, depth)) as Arc<dyn LoopbackBackend>,
            ShmRingNic::new(queues, depth) as Arc<dyn LoopbackBackend>,
        ]
    }

    fn live_cfg() -> WireCapConfig {
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 1_500_000;
        cfg
    }

    fn flow(i: u16) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, (i % 200) as u8 + 1),
            9_000 + i,
            Ipv4Addr::new(10, 0, 0, 1),
            443,
        )
    }

    fn inject_flows(backend: &dyn LoopbackBackend, n: u16) {
        let mut b = PacketBuilder::new();
        for i in 0..n {
            let pkt = b.build_packet(u64::from(i), &flow(i), 128).unwrap();
            while backend.inject(pkt.clone()).is_none() {
                std::thread::yield_now();
            }
        }
    }

    #[test]
    fn conservation_laws_hold_on_every_backend() {
        let _live = LIVE.lock().unwrap_or_else(|e| e.into_inner());
        for backend in backends(2, 4096) {
            let name = backend.name();
            let upcast: Arc<dyn CaptureBackend> = backend.clone();
            let engine = LiveWireCap::builder()
                .backend(upcast)
                .config(live_cfg())
                .groups(BuddyGroups::isolated(2))
                .start();
            let consumers: Vec<_> = (0..2)
                .map(|q| {
                    let mut c = engine.consumer(q);
                    std::thread::spawn(move || {
                        let mut n = 0u64;
                        while let Some(chunk) = c.next_chunk() {
                            n += chunk.len() as u64;
                            c.recycle(chunk);
                        }
                        n
                    })
                })
                .collect();
            inject_flows(backend.as_ref(), 3_000);
            backend.stop().expect("stop backend");
            let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            let t = engine.snapshot().total();
            engine.shutdown();
            // offered folds in wire-side drops from the retried injects;
            // net of those, every packet that landed was offered once.
            assert_eq!(t.offered_packets - t.nic_drop_packets, 3_000, "{name}");
            assert_eq!(t.captured_packets + t.capture_drop_packets, 3_000, "{name}");
            assert_eq!(
                t.delivered_packets + t.delivery_drop_packets,
                t.captured_packets,
                "{name}"
            );
            assert_eq!(consumed, t.captured_packets, "{name}");
            assert_eq!(t.recycled_chunks, t.sealed_chunks, "{name}");
        }
    }

    #[test]
    fn hot_path_allocates_no_arena_buffers_on_any_backend() {
        let _live = LIVE.lock().unwrap_or_else(|e| e.into_inner());
        for backend in backends(1, 4096) {
            let name = backend.name();
            let upcast: Arc<dyn CaptureBackend> = backend.clone();
            let engine = LiveWireCap::builder()
                .backend(upcast)
                .config(live_cfg())
                .groups(BuddyGroups::isolated(1))
                .start();
            // All arena buffers exist as of here; capture and view-based
            // consumption must not add any, no matter the backend.
            let baseline = arena_allocations();
            let mut b = PacketBuilder::new();
            let mut c = engine.consumer(0);
            let mut consumed = 0u64;
            let mut bytes_seen = 0u64;
            for i in 0..2_048u64 {
                let pkt = b.build_packet(i, &flow(7), 128).unwrap();
                while backend.inject(pkt.clone()).is_none() {
                    std::thread::yield_now();
                }
                // Drain as we go so the small pool never exhausts.
                while let Some(chunk) = c.try_chunk() {
                    for p in c.view(&chunk).iter() {
                        bytes_seen += p.data.len() as u64;
                    }
                    consumed += chunk.len() as u64;
                    c.recycle(chunk);
                }
            }
            backend.stop().expect("stop backend");
            while let Some(chunk) = c.next_chunk() {
                for p in c.view(&chunk).iter() {
                    bytes_seen += p.data.len() as u64;
                }
                consumed += chunk.len() as u64;
                c.recycle(chunk);
            }
            let dropped = engine.telemetry(0).capture_drop_packets;
            engine.shutdown();
            assert_eq!(consumed + dropped, 2_048, "{name}");
            assert_eq!(bytes_seen, consumed * 128, "{name}");
            assert_eq!(
                arena_allocations(),
                baseline,
                "{name}: the hot path must not allocate arena buffers"
            );
        }
    }

    #[test]
    fn teardown_joins_cleanly_and_reports_stopped() {
        let _live = LIVE.lock().unwrap_or_else(|e| e.into_inner());
        for backend in backends(2, 1024) {
            let name = backend.name();
            let upcast: Arc<dyn CaptureBackend> = backend.clone();
            let engine = LiveWireCap::builder()
                .backend(upcast)
                .config(live_cfg())
                .groups(BuddyGroups::isolated(2))
                .start();
            let consumers: Vec<_> = (0..2)
                .map(|q| {
                    let mut c = engine.consumer(q);
                    std::thread::spawn(move || {
                        let mut n = 0u64;
                        while let Some(chunk) = c.next_chunk() {
                            n += chunk.len() as u64;
                            c.recycle(chunk);
                        }
                        n
                    })
                })
                .collect();
            inject_flows(backend.as_ref(), 500);
            backend.stop().expect("stop backend");
            assert!(backend.is_stopped(), "{name}");
            // Stop is idempotent, and a late inject must not panic (the
            // frame may land or drop; either is conformant).
            backend.stop().expect("second stop");
            let mut b = PacketBuilder::new();
            let _ = backend.inject(b.build_packet(9_999, &flow(9), 64).unwrap());
            let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            let t = engine.snapshot().total();
            engine.shutdown();
            assert_eq!(consumed, t.captured_packets, "{name}");
            assert!(
                t.captured_packets + t.capture_drop_packets >= 500,
                "{name}: teardown lost pre-stop packets"
            );
            assert_eq!(t.recycled_chunks, t.sealed_chunks, "{name}");
        }
    }
}
