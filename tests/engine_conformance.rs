//! Engine-conformance suite: every capture engine, same contracts.
//!
//! The harness treats all engines uniformly through the `CaptureEngine`
//! trait; these tests pin down the contract every implementation must
//! honor — empty runs, idle gaps, repeated finish, stats consistency at
//! every intermediate point, and independence from advance() cadence.

use apps::harness::EngineKind;
use engines::EngineConfig;
use sim::SimTime;
use wirecap::WireCapConfig;

fn all_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::Dna,
        EngineKind::Netmap,
        EngineKind::PfRing,
        EngineKind::PfPacket,
        EngineKind::Psioe,
        EngineKind::Dpdk,
        EngineKind::DpdkAppOffload(0.6),
        EngineKind::WireCap(WireCapConfig::basic(64, 20, 300)),
        EngineKind::WireCap(WireCapConfig::advanced(64, 20, 0.6, 300)),
    ]
}

#[test]
fn empty_run_is_clean() {
    for kind in all_engines() {
        let mut e = kind.build(2, EngineConfig::paper(300));
        let end = e.finish(SimTime(0));
        assert_eq!(end, SimTime(0), "{}", e.name());
        let s = e.total_stats();
        assert_eq!(s.offered, 0, "{}", e.name());
        assert!(s.is_consistent(), "{}", e.name());
    }
}

#[test]
fn long_idle_gaps_do_not_bank_capacity_or_lose_packets() {
    for kind in all_engines() {
        let mut e = kind.build(1, EngineConfig::paper(300));
        // Three widely spaced packets: a second of idle between each.
        for i in 0..3u64 {
            e.on_arrival(SimTime(i * 1_000_000_000), 0, 64);
        }
        e.finish(SimTime(10_000_000_000));
        let s = e.total_stats();
        assert_eq!(s.offered, 3, "{}", e.name());
        assert_eq!(s.delivered, 3, "{}", e.name());
        assert_eq!(s.overall_drop_rate(), 0.0, "{}", e.name());
    }
}

#[test]
fn finish_is_idempotent() {
    for kind in all_engines() {
        let mut e = kind.build(1, EngineConfig::paper(300));
        for i in 0..500u64 {
            e.on_arrival(SimTime(i * 10_000), 0, 64);
        }
        let end1 = e.finish(SimTime(500 * 10_000));
        let stats1 = e.total_stats();
        let end2 = e.finish(end1);
        let stats2 = e.total_stats();
        assert_eq!(stats1, stats2, "{}", e.name());
        assert_eq!(end1, end2, "{}", e.name());
    }
}

#[test]
fn stats_consistent_at_every_intermediate_point() {
    for kind in all_engines() {
        let mut e = kind.build(2, EngineConfig::paper(300));
        for i in 0..2_000u64 {
            e.on_arrival(SimTime(i * 5_000), (i % 2) as usize, 64);
            if i % 97 == 0 {
                let s = e.total_stats();
                assert!(s.is_consistent(), "{} at i={i}: {s:?}", e.name());
            }
        }
        e.finish(SimTime(2_000 * 5_000));
        assert!(e.total_stats().is_consistent(), "{}", e.name());
    }
}

#[test]
fn interleaved_advance_calls_do_not_change_outcomes() {
    // Calling advance() between arrivals (as a poll-driven harness might)
    // must not change the final accounting.
    for kind in all_engines() {
        let cfg = EngineConfig::paper(300);
        let mut plain = kind.build(1, cfg);
        let mut chatty = kind.build(1, cfg);
        for i in 0..1_000u64 {
            let t = SimTime(i * 20_000);
            plain.on_arrival(t, 0, 64);
            chatty.advance(t);
            chatty.on_arrival(t, 0, 64);
            chatty.advance(SimTime(t.as_nanos() + 1_000));
        }
        plain.finish(SimTime(1_000 * 20_000));
        chatty.finish(SimTime(1_000 * 20_000));
        let a = plain.total_stats();
        let b = chatty.total_stats();
        // The fluid integrators floor whole completions at whatever step
        // boundaries they are advanced across, so a ±2-packet wobble at
        // different cadences is inherent; anything larger would mean the
        // cadence changed behaviour.
        let drops_a = a.capture_drops + a.delivery_drops;
        let drops_b = b.capture_drops + b.delivery_drops;
        assert!(
            drops_a.abs_diff(drops_b) <= 2,
            "{}: {a:?} vs {b:?}",
            plain.name()
        );
        assert!(
            a.delivered.abs_diff(b.delivered) <= 2,
            "{}: delivered {} vs {}",
            plain.name(),
            a.delivered,
            b.delivered
        );
    }
}

#[test]
fn names_are_distinct_and_stable() {
    let names: Vec<String> = all_engines()
        .iter()
        .map(|k| k.build(1, EngineConfig::paper(0)).name())
        .collect();
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(
        unique.len(),
        names.len(),
        "duplicate engine names: {names:?}"
    );
}
