//! Integration tests for the zero-copy accounting across engines.
//!
//! The paper's taxonomy (§2.1, Table 2): Type-II engines and WireCAP are
//! zero-copy; Type-I engines copy every packet at least once; WireCAP's
//! only copy is the capture-timeout partial-chunk path.

use apps::harness::{run, EngineKind};
use engines::EngineConfig;
use traffic::WireRateGen;
use wirecap::WireCapConfig;

fn copies_for(kind: EngineKind, packets: u64, pps: f64) -> sim::stats::CopyMeter {
    let cfg = EngineConfig::paper(300);
    let mut gen = WireRateGen::new(packets, 64, pps, 8);
    run(kind, 1, cfg, &mut gen).copies
}

#[test]
fn type2_engines_never_copy() {
    for kind in [EngineKind::Dna, EngineKind::Netmap] {
        let copies = copies_for(kind, 10_000, 100_000.0);
        assert!(copies.is_zero_copy(), "{kind:?}: {copies:?}");
    }
}

#[test]
fn type1_engines_copy_every_packet() {
    // At 20 k p/s both Type-I engines keep up losslessly — and pay one
    // copy per packet for it.
    let copies = copies_for(EngineKind::PfRing, 10_000, 20_000.0);
    assert_eq!(copies.packets, 10_000);
    assert!(copies.bytes >= 10_000 * 60);
    let copies = copies_for(EngineKind::Psioe, 10_000, 20_000.0);
    assert_eq!(copies.packets, 10_000);
}

#[test]
fn wirecap_copies_only_timeout_partials() {
    // At 1 Mp/s a 256-cell chunk fills in 256 µs, far inside the capture
    // timeout: full chunks move zero-copy.
    let full = copies_for(
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        256 * 40,
        1_000_000.0,
    );
    assert!(full.is_zero_copy(), "{full:?}");

    // 40 full chunks + 100 stragglers: exactly 100 packets copied (the
    // timeout flushes the trailing partial chunk).
    let ragged = copies_for(
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        256 * 40 + 100,
        1_000_000.0,
    );
    assert_eq!(ragged.packets, 100, "{ragged:?}");
}

#[test]
fn wirecap_below_fill_rate_copies_via_timeout_by_design() {
    // §3.2.1's tradeoff made visible: a queue receiving slower than
    // M / timeout never fills a chunk, so the timeout path delivers
    // (and copies) everything — the price of bounded capture latency.
    let slow = copies_for(
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        2_000,
        10_000.0, // 10 k p/s ≪ 256 cells / 10 ms
    );
    assert_eq!(slow.packets, 2_000, "{slow:?}");
}

#[test]
fn copy_volume_scales_with_traffic_for_type1() {
    let small = copies_for(EngineKind::PfRing, 1_000, 20_000.0);
    let large = copies_for(EngineKind::PfRing, 4_000, 20_000.0);
    assert_eq!(large.packets, 4 * small.packets);
}
