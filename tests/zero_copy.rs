//! Integration tests for the zero-copy accounting across engines.
//!
//! The paper's taxonomy (§2.1, Table 2): Type-II engines and WireCAP are
//! zero-copy; Type-I engines copy every packet at least once; WireCAP's
//! only copy is the capture-timeout partial-chunk path.

use apps::harness::{run, EngineKind};
use engines::EngineConfig;
use traffic::WireRateGen;
use wirecap::WireCapConfig;

fn copies_for(kind: EngineKind, packets: u64, pps: f64) -> sim::stats::CopyMeter {
    let cfg = EngineConfig::paper(300);
    let mut gen = WireRateGen::new(packets, 64, pps, 8);
    run(kind, 1, cfg, &mut gen).copies
}

#[test]
fn type2_engines_never_copy() {
    for kind in [EngineKind::Dna, EngineKind::Netmap] {
        let copies = copies_for(kind, 10_000, 100_000.0);
        assert!(copies.is_zero_copy(), "{kind:?}: {copies:?}");
    }
}

#[test]
fn type1_engines_copy_every_packet() {
    // At 20 k p/s both Type-I engines keep up losslessly — and pay one
    // copy per packet for it.
    let copies = copies_for(EngineKind::PfRing, 10_000, 20_000.0);
    assert_eq!(copies.packets, 10_000);
    assert!(copies.bytes >= 10_000 * 60);
    let copies = copies_for(EngineKind::Psioe, 10_000, 20_000.0);
    assert_eq!(copies.packets, 10_000);
}

#[test]
fn wirecap_copies_only_timeout_partials() {
    // At 1 Mp/s a 256-cell chunk fills in 256 µs, far inside the capture
    // timeout: full chunks move zero-copy.
    let full = copies_for(
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        256 * 40,
        1_000_000.0,
    );
    assert!(full.is_zero_copy(), "{full:?}");

    // 40 full chunks + 100 stragglers: exactly 100 packets copied (the
    // timeout flushes the trailing partial chunk).
    let ragged = copies_for(
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        256 * 40 + 100,
        1_000_000.0,
    );
    assert_eq!(ragged.packets, 100, "{ragged:?}");
}

#[test]
fn wirecap_below_fill_rate_copies_via_timeout_by_design() {
    // §3.2.1's tradeoff made visible: a queue receiving slower than
    // M / timeout never fills a chunk, so the timeout path delivers
    // (and copies) everything — the price of bounded capture latency.
    let slow = copies_for(
        EngineKind::WireCap(WireCapConfig::basic(256, 100, 300)),
        2_000,
        10_000.0, // 10 k p/s ≪ 256 cells / 10 ms
    );
    assert_eq!(slow.packets, 2_000, "{slow:?}");
}

#[test]
fn copy_volume_scales_with_traffic_for_type1() {
    let small = copies_for(EngineKind::PfRing, 1_000, 20_000.0);
    let large = copies_for(EngineKind::PfRing, 4_000, 20_000.0);
    assert_eq!(large.packets, 4 * small.packets);
}

/// The live engine's hot path allocates nothing per packet: chunk cell
/// arenas are carved out once at `start`, and view-based consumption
/// reads borrowed slices straight out of them. `arena_allocations()`
/// counts every buffer the arena layer ever allocates — it must not
/// move between engine start and shutdown, no matter how many packets
/// flow through.
#[test]
fn live_view_consumption_allocates_no_arena_buffers() {
    use netproto::{FlowKey, PacketBuilder};
    use nicsim::livenic::LiveNic;
    use std::net::Ipv4Addr;
    use std::sync::Arc;
    use wirecap::arena::arena_allocations;
    use wirecap::buddy::BuddyGroups;
    use wirecap::live::LiveWireCap;
    use wirecap::NicSimBackend;

    let nic = LiveNic::new(1, 4096);
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 1_500_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();
    // All arena buffers exist as of here; capture and consumption must
    // not add any (other tests run concurrently and may build their own
    // arenas, so the counter is compared across this engine's threads
    // only via the data they observe — hence the single-threaded drain).
    let baseline = arena_allocations();

    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(131, 225, 2, 30),
        4_242,
        Ipv4Addr::new(10, 0, 0, 30),
        443,
    );
    let mut c = engine.consumer(0);
    let mut consumed = 0u64;
    let mut bytes_seen = 0u64;
    for i in 0..2_048u64 {
        let pkt = b.build_packet(i, &flow, 128).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
        // Drain as we go so the small pool never exhausts.
        while let Some(chunk) = c.try_chunk() {
            for p in c.view(&chunk).iter() {
                bytes_seen += p.data.len() as u64;
            }
            consumed += chunk.len() as u64;
            c.recycle(chunk);
        }
    }
    nic.stop();
    while let Some(chunk) = c.next_chunk() {
        for p in c.view(&chunk).iter() {
            bytes_seen += p.data.len() as u64;
        }
        consumed += chunk.len() as u64;
        c.recycle(chunk);
    }
    let dropped = engine.telemetry(0).capture_drop_packets;
    engine.shutdown();

    assert_eq!(consumed + dropped, 2_048);
    assert_eq!(bytes_seen, consumed * 128);
    assert_eq!(
        arena_allocations(),
        baseline,
        "the live hot path must not allocate arena buffers after start"
    );
}
