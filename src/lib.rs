//! Top-level facade for the WireCAP reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can
//! reach everything through one dependency. See README.md for the tour.

pub use apps;
pub use bpf;
pub use engines;
pub use netproto;
pub use nicsim;
pub use pcap;
pub use shmring;
pub use sim;
pub use traffic;
pub use wirecap;
