//! Offline stand-in for the `criterion` crate.
//!
//! A minimal timing-loop harness with the same surface the workspace's
//! benches use: `Criterion`, `benchmark_group` with `throughput` /
//! `sample_size` / `bench_function` / `finish`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! No statistics beyond best-of-N medians and no HTML reports — results
//! print to stderr, one line per benchmark.
//!
//! Set `CRITERION_QUICK=1` (or pass `--quick`) to shrink measurement
//! time for CI gates.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration element/byte counts for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some() || std::env::args().any(|a| a == "--quick")
}

/// The benchmark driver.
pub struct Criterion {
    measure: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        if quick_mode() {
            Criterion {
                measure: Duration::from_millis(20),
                samples: 3,
            }
        } else {
            Criterion {
                measure: Duration::from_millis(200),
                samples: 10,
            }
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            samples: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(self.measure, self.samples, f);
        report(name, result, None);
        self
    }

    /// Criterion's CLI/config entry point; a no-op here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Criterion's post-run summary; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of samples (kept for API compatibility; this
    /// shim's sampling is time-bounded).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.clamp(3, 100));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples.unwrap_or(self.criterion.samples);
        let result = run_bench(self.criterion.measure, samples, f);
        report(&format!("{}/{name}", self.name), result, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Measured wall-clock time per iteration, in nanoseconds.
    ns_per_iter: f64,
    measure: Duration,
}

impl Bencher {
    /// Times `f`, running it enough times to fill the measurement
    /// window, and records the per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: find an iteration count that takes ~1/5 of the
        // measurement window.
        let mut iters: u64 = 1;
        let calibrated = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.measure / 5 || iters >= 1 << 40 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() { 100 } else { 4 });
        };
        let _ = calibrated;
        // Measure: repeat the calibrated batch until the window closes,
        // keeping the fastest batch (least interference).
        let mut best = f64::INFINITY;
        let window = Instant::now();
        let mut batches = 0u32;
        while window.elapsed() < self.measure || batches < 2 {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = t0.elapsed().as_secs_f64() / iters as f64;
            best = best.min(per_iter);
            batches += 1;
        }
        self.ns_per_iter = best * 1e9;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(measure: Duration, _samples: usize, mut f: F) -> f64 {
    let mut b = Bencher {
        ns_per_iter: f64::NAN,
        measure,
    };
    f(&mut b);
    b.ns_per_iter
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let time = if ns_per_iter >= 1e6 {
        format!("{:.3} ms", ns_per_iter / 1e6)
    } else if ns_per_iter >= 1e3 {
        format!("{:.3} µs", ns_per_iter / 1e3)
    } else {
        format!("{ns_per_iter:.1} ns")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            eprintln!("{name:<50} {time:>12}/iter  {:>14.0} elem/s", rate);
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            eprintln!(
                "{name:<50} {time:>12}/iter  {:>10.1} MiB/s",
                rate / (1024.0 * 1024.0)
            );
        }
        None => eprintln!("{name:<50} {time:>12}/iter"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}
