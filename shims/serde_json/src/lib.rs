//! Offline stand-in for `serde_json`: renders and parses the serde
//! shim's [`serde::Value`] tree as JSON.

#![forbid(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Re-exported error type, as in the real crate.
pub use serde::Error as JsonError;

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Returns an error if a number is non-finite.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
///
/// # Errors
/// Returns an error if a number is non-finite.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::msg("non-finite float cannot be JSON"));
            }
            // `{}` prints 2.0 as "2"; keep a decimal point so the value
            // re-parses as a float-compatible number either way.
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), items.len(), indent, level, write_value)?,
        Value::Obj(fields) => {
            out.push('{');
            if fields.is_empty() {
                out.push('}');
                return Ok(());
            }
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn write_seq<'a, I, F>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    level: usize,
    mut write_item: F,
) -> Result<(), Error>
where
    I: Iterator<Item = &'a Value>,
    F: FnMut(&mut String, &Value, Option<&str>, usize) -> Result<(), Error>,
{
    out.push('[');
    if len == 0 {
        out.push(']');
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_item(out, item, indent, level + 1)?;
    }
    newline_indent(out, indent, level);
    out.push(']');
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(ind) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(ind);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let tail = std::str::from_utf8(rest)
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = tail.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::msg("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("q\"0\"\n".into())),
            ("count".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-7)),
            ("rate".into(), Value::F64(1.5)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("xs".into(), Value::Arr(vec![Value::U64(1), Value::U64(2)])),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_parse_as_integers() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }
}
