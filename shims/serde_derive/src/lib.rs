//! Derive macros for the in-tree serde shim.
//!
//! Parses the derive input directly from the proc-macro token stream
//! (no `syn`/`quote`, which are unavailable offline) and supports the
//! shapes this workspace actually uses:
//!
//! * named-field structs without generics;
//! * tuple structs with a single field (serialized transparently, like
//!   serde's newtype structs — `#[serde(transparent)]` is accepted and
//!   means the same thing here);
//! * multi-field tuple structs (serialized as arrays).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim): converts the struct to a
/// `serde::Value` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok(info) => gen_serialize(&info).parse().unwrap(),
        Err(e) => error(&e),
    }
}

/// Derives `serde::Deserialize` (shim): rebuilds the struct from a
/// `serde::Value` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok(info) => gen_deserialize(&info).parse().unwrap(),
        Err(e) => error(&e),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

struct StructInfo {
    name: String,
    kind: Kind,
}

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
}

fn parse_struct(input: TokenStream) -> Result<StructInfo, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes (doc comments, #[serde(...)], ...): skip.
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + bracket group
    }
    // Visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        Some(TokenTree::Ident(id)) => {
            return Err(format!(
                "serde shim derive supports structs only, found `{id}`"
            ))
        }
        _ => return Err("serde shim derive: unexpected input".into()),
    }
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: missing struct name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("serde shim derive does not support generic structs".into());
    }
    match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(StructInfo {
            name,
            kind: Kind::Named(parse_named_fields(g.stream())?),
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(StructInfo {
            name,
            kind: Kind::Tuple(count_tuple_fields(g.stream())),
        }),
        _ => Err("serde shim derive does not support unit structs".into()),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde shim derive: expected field name".into()),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}`"
                ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    let mut last_was_comma = false;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                last_was_comma = true;
                continue;
            }
            _ => {}
        }
        saw_any = true;
        last_was_comma = false;
    }
    if saw_any && !last_was_comma {
        fields += 1;
    }
    fields
}

fn gen_serialize(info: &StructInfo) -> String {
    let name = &info.name;
    let body = match &info.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", entries.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(info: &StructInfo) -> String {
    let name = &info.name;
    let body = match &info.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field({f:?})\
                         .ok_or_else(|| ::serde::Error::msg(\
                         concat!(\"missing field `\", {f:?}, \"`\")))?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .ok_or_else(|| ::serde::Error::msg(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Arr(items) => \
                         ::std::result::Result::Ok({name}({})),\n\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::msg(\"expected array\")),\n\
                 }}",
                entries.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
