//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//! * [`queue::ArrayQueue`] — a bounded lock-free MPMC queue (the classic
//!   Vyukov bounded-queue algorithm, the same one the real crate uses);
//! * [`utils::CachePadded`] — alignment padding to keep hot atomics on
//!   their own cache line.

pub mod utils {
    //! Miscellaneous utilities (cache-line padding).

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share a cache line (128 covers the spatial-prefetcher pairing on
    /// x86 and the 128-byte lines on some arm64 parts).
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.value.fmt(f)
        }
    }
}

pub mod queue {
    //! Concurrent queues.

    use super::utils::CachePadded;
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Slot<T> {
        stamp: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue.
    ///
    /// Vyukov's bounded-queue algorithm: every slot carries a stamp that
    /// encodes which "lap" of the ring may use it next, so producers and
    /// consumers synchronize per-slot without locks.
    pub struct ArrayQueue<T> {
        head: CachePadded<AtomicUsize>,
        tail: CachePadded<AtomicUsize>,
        buffer: Box<[Slot<T>]>,
        cap: usize,
        one_lap: usize,
    }

    // SAFETY: the per-slot stamp protocol hands each value from exactly
    // one producer to exactly one consumer with Release/Acquire pairs.
    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        /// Panics if `cap` is zero.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            let buffer: Box<[Slot<T>]> = (0..cap)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            ArrayQueue {
                head: CachePadded::new(AtomicUsize::new(0)),
                tail: CachePadded::new(AtomicUsize::new(0)),
                buffer,
                cap,
                one_lap: (cap + 1).next_power_of_two(),
            }
        }

        /// Attempts to push, returning the value back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let index = tail & (self.one_lap - 1);
                let lap = tail & !(self.one_lap - 1);
                let slot = &self.buffer[index];
                let stamp = slot.stamp.load(Ordering::Acquire);

                if tail == stamp {
                    let new_tail = if index + 1 < self.cap {
                        tail + 1
                    } else {
                        lap.wrapping_add(self.one_lap)
                    };
                    match self.tail.compare_exchange_weak(
                        tail,
                        new_tail,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS claimed this slot for this
                            // producer; nobody else touches it until the
                            // stamp below publishes it.
                            unsafe { slot.value.get().write(MaybeUninit::new(value)) };
                            slot.stamp.store(tail + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(t) => tail = t,
                    }
                } else if stamp.wrapping_add(self.one_lap) == tail + 1 {
                    std::sync::atomic::fence(Ordering::SeqCst);
                    let head = self.head.load(Ordering::Relaxed);
                    if head.wrapping_add(self.one_lap) == tail {
                        return Err(value);
                    }
                    std::hint::spin_loop();
                    tail = self.tail.load(Ordering::Relaxed);
                } else {
                    std::hint::spin_loop();
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to pop, returning `None` if the queue is empty.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let index = head & (self.one_lap - 1);
                let lap = head & !(self.one_lap - 1);
                let slot = &self.buffer[index];
                let stamp = slot.stamp.load(Ordering::Acquire);

                if head + 1 == stamp {
                    let new_head = if index + 1 < self.cap {
                        head + 1
                    } else {
                        lap.wrapping_add(self.one_lap)
                    };
                    match self.head.compare_exchange_weak(
                        head,
                        new_head,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS claimed this slot; the
                            // Acquire stamp load above synchronized with
                            // the producer's Release store, so the value
                            // is fully written.
                            let value = unsafe { slot.value.get().read().assume_init() };
                            slot.stamp
                                .store(head.wrapping_add(self.one_lap), Ordering::Release);
                            return Some(value);
                        }
                        Err(h) => head = h,
                    }
                } else if stamp == head {
                    std::sync::atomic::fence(Ordering::SeqCst);
                    let tail = self.tail.load(Ordering::Relaxed);
                    if tail == head {
                        return None;
                    }
                    std::hint::spin_loop();
                    head = self.head.load(Ordering::Relaxed);
                } else {
                    std::hint::spin_loop();
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Maximum number of elements.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Current number of elements (a racy snapshot under concurrency).
        pub fn len(&self) -> usize {
            loop {
                let tail = self.tail.load(Ordering::SeqCst);
                let head = self.head.load(Ordering::SeqCst);
                if self.tail.load(Ordering::SeqCst) == tail {
                    let hix = head & (self.one_lap - 1);
                    let tix = tail & (self.one_lap - 1);
                    return if hix < tix {
                        tix - hix
                    } else if hix > tix {
                        self.cap - hix + tix
                    } else if tail == head {
                        0
                    } else {
                        self.cap
                    };
                }
            }
        }

        /// Whether the queue is empty (a racy snapshot under concurrency).
        pub fn is_empty(&self) -> bool {
            let head = self.head.load(Ordering::SeqCst);
            let tail = self.tail.load(Ordering::SeqCst);
            tail == head
        }

        /// Whether the queue is full (a racy snapshot under concurrency).
        pub fn is_full(&self) -> bool {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            head.wrapping_add(self.one_lap) == tail
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    impl<T> std::fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("cap", &self.cap)
                .field("len", &self.len())
                .finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::ArrayQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = ArrayQueue::new(3);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        assert_eq!(q.push(3), Ok(()));
        assert_eq!(q.push(4), Err(4));
        assert!(q.is_full());
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.push(5), Ok(()));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(5));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_mpmc_conserves_items() {
        let q = Arc::new(ArrayQueue::<u64>::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let mut v = p * 10_000 + i;
                        while let Err(back) = q.push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < 10_000 {
                        match q.pop() {
                            Some(v) => got.push(v),
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 40_000);
        all.dedup();
        assert_eq!(all.len(), 40_000, "duplicate or lost items");
    }

    #[test]
    fn drops_remaining_items() {
        static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let q = ArrayQueue::new(8);
        for _ in 0..5 {
            assert!(q.push(D).is_ok());
        }
        drop(q.pop());
        drop(q);
        assert_eq!(DROPS.load(std::sync::atomic::Ordering::Relaxed), 5);
    }
}
