//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-overhead visitor framework; this shim is a
//! much simpler value-tree model that supports exactly what the
//! workspace needs: `#[derive(Serialize, Deserialize)]` on named-field
//! structs (plus `#[serde(transparent)]` newtypes), and JSON round-trips
//! through the companion `serde_json` shim.
//!
//! [`Serialize`] converts to a [`Value`] tree; [`Deserialize`] converts
//! back. `serde_json` then renders/parses the tree.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    /// Returns an error when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64);

macro_rules! ser_de_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
ser_de_sint!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::msg("integer out of range")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::msg("integer out of range")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self[..].to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
