//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, integer and float range strategies,
//! tuple strategies, [`strategy::Just`], `any::<T>()`,
//! `proptest::collection::vec`, weighted `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: generation is deterministic per
//! test (seeded from the test name, overridable via the
//! `PROPTEST_SEED` environment variable), and failing cases are not
//! shrunk — the panic message carries the case number instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the debug-mode
            // suite fast while still exploring a useful space.
            ProptestConfig { cases: 64 }
        }
    }

    /// A small, fast, deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from an explicit value.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// An RNG seeded deterministically from a test name, so each
        /// test explores the same sequence on every run. Set
        /// `PROPTEST_SEED` to explore a different sequence.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(s) = seed.parse::<u64>() {
                    h = h.wrapping_add(s);
                }
            }
            TestRng::new(h)
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform value in `[0, n)`. `n` must be non-zero.
        pub fn below(&mut self, n: u128) -> u128 {
            assert!(n > 0, "empty range");
            // The modulo bias is irrelevant at test-generation quality.
            (u128::from(self.next_u64()) << 64 | u128::from(self.next_u64())) % n
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            R: Strategy,
            F: Fn(Self::Value) -> R,
        {
            FlatMap { source: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf, and
        /// `recurse` wraps a strategy for depth `d` into one for depth
        /// `d + 1`. `_desired_size` and `_expected_branch_size` are
        /// accepted for API compatibility; this shim bounds recursion
        /// purely by `depth`.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let arms = vec![(1, leaf.clone()), (2, recurse(current).boxed())];
                current = Union::new_weighted(arms).boxed();
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, R, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        R: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R::Value;
        fn generate(&self, rng: &mut TestRng) -> R::Value {
            let seed = self.source.generate(rng);
            (self.f)(seed).generate(rng)
        }
    }

    /// A weighted choice between strategies (what `prop_oneof!` builds).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// A union picking each arm proportionally to its weight.
        ///
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u32 = arms.iter().map(|(w, _)| w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(u128::from(self.total)) as u32;
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights changed mid-iteration")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range strategy");
                    let off = rng.below(span as u128) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty range strategy");
                    let off = rng.below(span as u128) as i128;
                    ((*self.start() as i128) + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one uniformly distributed value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy over `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_excl - self.size.lo) as u128;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length falls in `size`, with each
    /// element drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring the real crate.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Chooses between strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    let __run = |__rng: &mut $crate::test_runner::TestRng| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __rng,
                            );
                        )+
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                    ) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed \
                             (set PROPTEST_SEED to vary inputs)",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (0u32..=3).generate(&mut rng);
            assert!(w <= 3);
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = crate::test_runner::TestRng::new(42);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let hits = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true, got {hits}");
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::new(3);
        let s =
            crate::collection::vec((any::<u8>(), 1u32..5).prop_map(|(a, b)| a as u32 + b), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 1u64..100, flip in any::<u8>()) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(u64::from(flip) * 2 / 2, u64::from(flip), "flip = {}", flip);
        }
    }
}
