//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real crate's API that this workspace
//! uses: a cheaply cloneable, sliceable, immutable byte buffer backed by
//! a reference-counted allocation. `clone()` and `slice()` share the
//! backing storage (no copy); `copy_from_slice()` allocates fresh
//! storage — the distinction several zero-copy tests rely on.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// A buffer that copies `src` into fresh backing storage.
    #[must_use]
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// A buffer holding a copy of a static slice.
    #[must_use]
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// Number of bytes in the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same backing storage (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(b"hello world");
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn copy_from_slice_allocates() {
        let src = Bytes::copy_from_slice(b"abc");
        let copy = Bytes::copy_from_slice(&src);
        assert_eq!(src, copy);
        assert_ne!(src.as_ptr(), copy.as_ptr());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let a = Bytes::copy_from_slice(b"0123456789");
        let s = a.slice(2..5);
        assert_eq!(&s[..], b"234");
        assert_eq!(s.as_ptr(), a[2..].as_ptr());
        let t = a.slice(..4);
        assert_eq!(&t[..], b"0123");
        let u = a.slice(..);
        assert_eq!(u.len(), 10);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        let _ = Bytes::copy_from_slice(b"abc").slice(..4);
    }
}
