//! An intrusion-detection-style monitor on multiple queues with
//! buddy-group offloading.
//!
//! The paper's motivating application class is IDS (Snort/Kargus-style)
//! monitoring: per-flow RSS steering across cores, one analysis thread
//! per queue, and load imbalance threatening drops (§1). This example
//! runs a 4-queue live WireCAP engine in **advanced mode**: all four
//! queues form one buddy group, so when skewed traffic overloads one
//! queue its chunks are offloaded to idle buddies — the analysis threads
//! see every packet regardless of which core RSS favoured.
//!
//! Each analysis thread runs the paper's `pkt_handler` workload: the
//! real BPF filter `131.225.2 and UDP` executed on the classic-BPF VM,
//! plus a tiny port-scan detector as the "IDS logic".
//!
//! Run with:
//! ```sh
//! cargo run --release --example ids_monitor
//! ```

use apps::PktHandler;
use netproto::{parse_frame, FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

const QUEUES: usize = 4;

fn main() {
    let nic = LiveNic::new(QUEUES, 8192);
    let mut cfg = WireCapConfig::advanced(64, 128, 0.6, 0); // 8k-packet pools
    cfg.capture_timeout_ns = 2_000_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::single(QUEUES))
        .start();

    // Analysis threads: pkt_handler + a port-scan detector counting
    // distinct destination ports per source address.
    let analysts: Vec<_> = (0..QUEUES)
        .map(|q| {
            let mut consumer = engine.consumer(q);
            std::thread::spawn(move || {
                let mut handler = PktHandler::paper(3);
                let mut ports_by_src: HashMap<Ipv4Addr, Vec<u16>> = HashMap::new();
                let mut matched = 0u64;
                while let Some(chunk) = consumer.next_chunk() {
                    // Analysis runs on borrowed arena slices — no copy.
                    for pkt in consumer.view(&chunk).iter() {
                        if handler.handle_bytes(pkt.data) {
                            matched += 1;
                        }
                        if let Ok(parsed) = parse_frame(pkt.data) {
                            if let Some(flow) = parsed.flow {
                                let ports = ports_by_src.entry(flow.src_ip).or_default();
                                if !ports.contains(&flow.dst_port) {
                                    ports.push(flow.dst_port);
                                }
                            }
                        }
                    }
                    consumer.recycle(chunk);
                }
                let scanners: Vec<(Ipv4Addr, usize)> = ports_by_src
                    .into_iter()
                    .filter(|(_, p)| p.len() >= 50)
                    .map(|(ip, p)| (ip, p.len()))
                    .collect();
                (q, handler.processed(), matched, scanners)
            })
        })
        .collect();

    // Traffic: a benign baseline spread over many flows, one heavy UDP
    // stream into the monitored prefix (this pins one queue — the
    // imbalance the buddy group absorbs), and a port scanner.
    let mut builder = PacketBuilder::new();
    let mut ts = 0u64;
    let mut total = 0u64;

    // Benign flows.
    for i in 0..2_000u16 {
        let flow = FlowKey::tcp(
            Ipv4Addr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8),
            30_000 + i,
            Ipv4Addr::new(131, 225, 9, 40),
            443,
        );
        ts += 700;
        inject(&nic, builder.build_packet(ts, &flow, 512).unwrap());
        total += 1;
    }
    // The elephant: one flow, one queue, 6 000 packets. Injection is
    // lightly paced so the wire rate stays within what three analysis
    // threads on a busy CI box can absorb — the point here is the
    // offloading behaviour, not overload drops.
    let elephant = FlowKey::udp(
        Ipv4Addr::new(192, 0, 2, 99),
        55_555,
        Ipv4Addr::new(131, 225, 2, 14),
        2_811,
    );
    for i in 0..6_000u64 {
        ts += 300;
        inject(&nic, builder.build_packet(ts, &elephant, 1024).unwrap());
        total += 1;
        if i % 512 == 511 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    // The scanner: one source sweeping 200 ports.
    for port in 1..=200u16 {
        let probe = FlowKey::tcp(
            Ipv4Addr::new(203, 0, 113, 66),
            44_000,
            Ipv4Addr::new(131, 225, 2, 5),
            port,
        );
        ts += 900;
        inject(&nic, builder.build_packet(ts, &probe, 64).unwrap());
        total += 1;
    }
    nic.stop();

    let mut processed = 0u64;
    let mut matched = 0u64;
    let mut alerts = Vec::new();
    for a in analysts {
        let (q, p, m, scanners) = a.join().expect("analysis thread");
        println!("queue {q}: processed {p} packets ({m} matched the filter)");
        processed += p;
        matched += m;
        alerts.extend(scanners);
    }
    let tel = engine.snapshot().total();
    let offloaded = tel.offloaded_in_chunks;
    let dropped = tel.capture_drop_packets;
    engine.shutdown();

    println!("---");
    println!("injected {total}, processed {processed}, dropped {dropped}");
    println!("filter matches: {matched} (elephant stream is UDP into 131.225.2/24)");
    println!("chunks offloaded between buddies: {offloaded}");
    for (ip, n) in &alerts {
        println!("ALERT: port scan from {ip} ({n} distinct destination ports)");
    }
    assert_eq!(processed, total, "lossless capture");
    assert!(!alerts.is_empty(), "the scanner must be detected");
    assert!(matched >= 6_000, "the elephant matches the paper filter");
}

fn inject(nic: &Arc<LiveNic>, pkt: netproto::Packet) {
    while nic.inject(pkt.clone()).is_none() {
        std::thread::yield_now();
    }
}
