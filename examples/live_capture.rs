//! Live multi-queue capture to a pcap savefile.
//!
//! A tcpdump-shaped tool on top of the live engine: capture from every
//! queue of a live NIC, merge the streams, and write a standard pcap
//! savefile that any packet-analysis tool can read back (we read it back
//! ourselves to verify). Demonstrates the `multi_pkt_handler` threading
//! model of §4 plus the savefile layer.
//!
//! Run with:
//! ```sh
//! cargo run --release --example live_capture
//! ```
//!
//! Watch it live: `WIRECAP_TELEMETRY_LISTEN=127.0.0.1:9184` serves
//! `/metrics`, `/snapshot.json` and `/series.json` over HTTP for the
//! duration of the run (DESIGN.md §4.9); `WIRECAP_TELEMETRY_SAMPLE_MS=0`
//! disables the sampler thread for latency-critical runs.

use netproto::{FlowKey, Packet, PacketBuilder};
use nicsim::livenic::LiveNic;
use pcap::savefile::{self, Precision};
use std::net::Ipv4Addr;
use std::sync::mpsc;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

const QUEUES: usize = 3;

fn main() {
    let nic = LiveNic::new(QUEUES, 4096);
    let mut cfg = WireCapConfig::basic(64, 48, 0);
    cfg.capture_timeout_ns = 2_000_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(QUEUES))
        .start();

    // One consumer thread per queue, all feeding a single writer.
    let (tx, rx) = mpsc::channel::<Packet>();
    let consumers: Vec<_> = (0..QUEUES)
        .map(|q| {
            let mut c = engine.consumer(q);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while let Some(chunk) = c.next_chunk() {
                    // The savefile writer outlives the chunk, so each
                    // frame is copied out of the arena into an owned
                    // packet — the price of keeping bytes past recycle.
                    for pkt in c.view(&chunk).iter() {
                        let owned = Packet {
                            ts_ns: pkt.ts_ns,
                            wire_len: pkt.wire_len,
                            data: bytes::Bytes::copy_from_slice(pkt.data),
                        };
                        tx.send(owned).expect("writer alive");
                        n += 1;
                    }
                    c.recycle(chunk);
                }
                n
            })
        })
        .collect();
    drop(tx);

    // Inject a mixed workload.
    let mut builder = PacketBuilder::new();
    let total = 4_000u64;
    for i in 0..total {
        let flow = if i % 3 == 0 {
            FlowKey::udp(
                Ipv4Addr::new(131, 225, 2, (i % 200) as u8 + 1),
                (9_000 + i % 2_000) as u16,
                Ipv4Addr::new(8, 8, 8, 8),
                53,
            )
        } else {
            FlowKey::tcp(
                Ipv4Addr::new(10, 7, (i >> 8) as u8, (i & 0xff) as u8 | 1),
                (20_000 + i % 10_000) as u16,
                Ipv4Addr::new(131, 225, 160, 11),
                443,
            )
        };
        let pkt = builder.build_packet(i * 5_000, &flow, 200).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();

    // Collect, sort by timestamp (streams interleave), and write pcap.
    let mut packets: Vec<Packet> = rx.iter().collect();
    let captured: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    engine.shutdown();
    packets.sort_by_key(|p| p.ts_ns);

    let path = std::env::temp_dir().join("wirecap_live_capture.pcap");
    let file = std::fs::File::create(&path).expect("creating savefile");
    savefile::write_file(
        std::io::BufWriter::new(file),
        &packets,
        Precision::Nanos,
        65_535,
    )
    .expect("writing savefile");

    // Read it back and verify.
    let data = std::fs::read(&path).expect("reading savefile back");
    let sf = savefile::read_file(&data[..]).expect("parsing savefile");

    println!("captured {captured} of {total} injected packets across {QUEUES} queues");
    println!(
        "wrote {} ({} packets, {} bytes) and read it back intact",
        path.display(),
        sf.packets.len(),
        data.len()
    );
    assert_eq!(captured, total);
    assert_eq!(sf.packets.len(), packets.len());
    assert!(sf.packets.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    println!("live_capture OK");
}
