//! Capture-to-disk with rotation and exact drop accounting.
//!
//! The capture-and-save workload of §4: a live multi-queue engine
//! streams every captured packet into rotating pcapng files through the
//! `capdisk` sink. The sink's bounded handoff means a slow disk can
//! never stall capture — it sheds packets from the disk leg instead,
//! and every shed packet is counted (`disk_drop_packets`), so
//! `delivered == written + disk_drop` holds exactly. This example
//! verifies all of it: conservation, rotation into multiple
//! self-contained files, and that every file parses.
//!
//! Run with:
//! ```sh
//! cargo run --release --example capture_and_save
//! ```
//!
//! Watch it live: `WIRECAP_TELEMETRY_LISTEN=127.0.0.1:9184` exposes the
//! `disk_written_packets` / `disk_drop_packets` counters on `/metrics`,
//! and a sustained disk-drop rate raises the telemetry "writer falling
//! behind" anomaly.

use capdisk::{read_pcapng, DiskSinkConfig, RotationPolicy, SinkMode};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::WireCapConfig;

const QUEUES: usize = 3;

fn main() {
    let dir = std::env::temp_dir().join("wirecap_capture_and_save");
    std::fs::remove_dir_all(&dir).ok();

    let nic = LiveNic::new(QUEUES, 4096);
    let mut cfg = WireCapConfig::basic(64, 48, 0);
    cfg.capture_timeout_ns = 2_000_000;

    let mut sink = DiskSinkConfig::new(&dir);
    sink.prefix = "save".to_string();
    // Rotate aggressively so the run demonstrates a multi-file set.
    sink.rotation = RotationPolicy {
        max_file_bytes: 128 << 10,
        max_file_duration: None,
    };

    // The harness owns the engine + sink threads; we own injection.
    let total = 10_000u64;
    let injector = {
        let nic = Arc::clone(&nic);
        std::thread::spawn(move || {
            let mut builder = PacketBuilder::new();
            for i in 0..total {
                let flow = FlowKey::udp(
                    Ipv4Addr::new(131, 225, 2, (i % 200) as u8 + 1),
                    (9_000 + i % 2_000) as u16,
                    Ipv4Addr::new(8, 8, 8, 8),
                    53,
                );
                let pkt = builder.build_packet(i * 5_000, &flow, 300).unwrap();
                while nic.inject(pkt.clone()).is_none() {
                    std::thread::yield_now();
                }
            }
            nic.stop();
        })
    };
    let out = apps::save::run(Arc::clone(&nic), cfg, SinkMode::Disk(sink));
    injector.join().unwrap();

    let report = out.disk.as_ref().expect("disk mode");
    println!(
        "delivered {} packets; wrote {} ({} bytes) across {} files; disk dropped {}",
        out.delivered_packets,
        report.written_packets(),
        report.written_bytes(),
        report.files().len(),
        report.dropped_packets(),
    );
    for q in &report.queues {
        println!(
            "  queue {}: {} written + {} dropped = {} delivered, {} files",
            q.queue,
            q.written_packets,
            q.dropped_packets,
            q.delivered_packets,
            q.files.len()
        );
    }

    // Zero unaccounted packets: in == written + disk_drop, exactly.
    assert!(out.is_conserved(), "conservation violated: {report:?}");
    assert_eq!(out.delivered_packets, total);
    assert_eq!(report.written_packets() + report.dropped_packets(), total);

    // The rotation policy split the stream, and every file is a
    // self-contained, parseable pcapng.
    let files = report.files();
    assert!(files.len() > QUEUES, "expected rotation splits: {files:?}");
    let mut parsed = 0u64;
    for f in &files {
        let pf = read_pcapng(&std::fs::read(f).expect("reading capture file back"))
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        assert_eq!(pf.tsresol, 9, "nanosecond timestamps");
        parsed += pf.packets.len() as u64;
    }
    assert_eq!(parsed, report.written_packets());
    println!(
        "read back {} packets from {} pcapng files under {}",
        parsed,
        files.len(),
        dir.display()
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("capture_and_save OK");
}
