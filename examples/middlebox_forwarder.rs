//! A middlebox: capture → inspect/modify → forward.
//!
//! "WireCAP implements a packet transmit function that allows captured
//! packets to be forwarded, potentially after the packets are modified or
//! inspected in flight. Therefore, WireCAP can be used to support
//! middlebox-type applications." (§1)
//!
//! This example builds a router-style middlebox on the live engine: it
//! captures from NIC1, decrements the IPv4 TTL (patching the checksum
//! incrementally per RFC 1624), answers expired packets with ICMP Time
//! Exceeded like a real router, and "transmits" survivors into NIC2,
//! where a receiver validates every forwarded frame.
//!
//! Run with:
//! ```sh
//! cargo run --release --example middlebox_forwarder
//! ```

use apps::forwarder::{Middlebox, Verdict};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::WireCapConfig;

fn main() {
    // NIC1 faces the traffic source; NIC2 faces the next hop.
    let nic1 = LiveNic::new(2, 8192);
    let nic2 = LiveNic::new(2, 8192);
    let mut cfg = WireCapConfig::advanced(64, 64, 0.6, 0).forwarding();
    cfg.capture_timeout_ns = 2_000_000;
    let engine = LiveWireCap::start(Arc::clone(&nic1), cfg, BuddyGroups::single(2));

    // Middlebox threads: one per NIC1 queue.
    let workers: Vec<_> = (0..2)
        .map(|q| {
            let mut consumer = engine.consumer(q);
            let egress = Arc::clone(&nic2);
            std::thread::spawn(move || {
                let mut mb = Middlebox::new();
                // One scratch buffer for the whole stream: frames are
                // inspected/modified straight off the borrowed chunk
                // view, with no per-packet allocation on this side.
                let mut scratch = Vec::new();
                while let Some(chunk) = consumer.next_chunk() {
                    for pkt in consumer.view(&chunk).iter() {
                        let verdict = mb.process_slice(pkt.data, &mut scratch);
                        if verdict == Verdict::TtlExpired {
                            // A real router answers with ICMP Time
                            // Exceeded toward the sender.
                            let _reply = mb
                                .time_exceeded_reply(pkt.data)
                                .expect("IPv4 frame quotes cleanly");
                        } else {
                            // Transmit owns its frame: the one copy out
                            // of the scratch buffer happens here.
                            let out = netproto::Packet {
                                ts_ns: pkt.ts_ns,
                                wire_len: pkt.wire_len,
                                data: bytes::Bytes::copy_from_slice(&scratch),
                            };
                            while egress.inject(out.clone()).is_none() {
                                std::thread::yield_now();
                            }
                        }
                    }
                    consumer.recycle(chunk);
                }
                (mb.forwarded, mb.expired, mb.icmp_sent)
            })
        })
        .collect();

    // The next hop: drain NIC2 and validate every forwarded frame.
    let receiver = {
        let nic2 = Arc::clone(&nic2);
        std::thread::spawn(move || {
            let queues: Vec<_> = (0..2).map(|q| nic2.queue(q)).collect();
            let mut received = 0u64;
            loop {
                let mut idle = true;
                for queue in &queues {
                    while let Some(pkt) = queue.pop() {
                        idle = false;
                        netproto::builder::validate_frame(&pkt.data)
                            .expect("forwarded frames must stay well-formed");
                        received += 1;
                    }
                }
                if idle {
                    if nic2.is_stopped() && queues.iter().all(|q| q.depth() == 0) {
                        return received;
                    }
                    std::thread::yield_now();
                }
            }
        })
    };

    // Traffic into NIC1: normal packets plus a slice arriving with TTL 1
    // (these must die at the middlebox).
    let mut builder = PacketBuilder::new();
    let mut ts = 0u64;
    let total = 5_000u64;
    let mut expiring = 0u64;
    for i in 0..total {
        let flow = FlowKey::udp(
            Ipv4Addr::new(172, 16, (i >> 8) as u8, (i & 0xff) as u8 | 1),
            20_000 + (i % 1_000) as u16,
            Ipv4Addr::new(131, 225, 107, 3),
            9_000,
        );
        ts += 2_000;
        let mut pkt = builder.build_packet(ts, &flow, 300).unwrap();
        if i % 10 == 0 {
            // Rewrite TTL to 1 and refresh the header checksum.
            let mut bytes = pkt.data.to_vec();
            bytes[14 + 8] = 1;
            bytes[14 + 10] = 0;
            bytes[14 + 11] = 0;
            let csum = netproto::checksum::checksum(&bytes[14..34]);
            bytes[24..26].copy_from_slice(&csum.to_be_bytes());
            pkt.data = bytes.into();
            expiring += 1;
        }
        while nic1.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic1.stop();

    let mut forwarded = 0u64;
    let mut expired = 0u64;
    let mut icmp_sent = 0u64;
    for w in workers {
        let (f, e, i) = w.join().expect("middlebox thread");
        forwarded += f;
        expired += e;
        icmp_sent += i;
    }
    nic2.stop();
    let received = receiver.join().expect("receiver thread");
    engine.shutdown();

    println!("ingress  : {total} packets ({expiring} arriving with TTL 1)");
    println!("forwarded: {forwarded}  expired: {expired}  ICMP time-exceeded sent: {icmp_sent}");
    println!("egress   : {received} validated frames at the next hop");
    assert_eq!(expired, expiring);
    assert_eq!(icmp_sent, expiring, "every expiry answered with ICMP");
    assert_eq!(forwarded, total - expiring);
    assert_eq!(
        received, forwarded,
        "every forwarded frame reaches the peer"
    );
    println!("middlebox OK: inspect-modify-forward with zero loss");
}
