//! A middlebox: capture → inspect/modify → forward.
//!
//! "WireCAP implements a packet transmit function that allows captured
//! packets to be forwarded, potentially after the packets are modified or
//! inspected in flight. Therefore, WireCAP can be used to support
//! middlebox-type applications." (§1)
//!
//! This example builds a router-style middlebox on the live engine: it
//! captures from NIC1, decrements the IPv4 TTL (patching the checksum
//! incrementally per RFC 1624), answers expired packets with ICMP Time
//! Exceeded like a real router, and "transmits" survivors into NIC2,
//! where a receiver validates every forwarded frame.
//!
//! Forwarding is stateless per packet, which makes it the textbook
//! client for the work-stealing [`wirecap::ConsumerPool`] (DESIGN.md
//! §4.11): instead of binding one middlebox thread to each ingress
//! queue, a pool of workers serves *all* queues, stealing sealed
//! chunks from whichever queue RSS happens to favour. Each worker
//! keeps its own `Middlebox` and scratch buffer in thread-local
//! storage, so the hot loop stays allocation- and lock-free.
//!
//! Run with:
//! ```sh
//! cargo run --release --example middlebox_forwarder
//! ```

use apps::forwarder::{Middlebox, Verdict};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::{BuddyGroup, WireCapConfig};

fn main() {
    // NIC1 faces the traffic source; NIC2 faces the next hop.
    let nic1 = LiveNic::new(2, 8192);
    let nic2 = LiveNic::new(2, 8192);
    let mut cfg = WireCapConfig::advanced(64, 64, 0.6, 0).forwarding();
    cfg.capture_timeout_ns = 2_000_000;
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic1)))
        .config(cfg)
        .groups(BuddyGroups::single(2))
        .start();

    // The middlebox: a pool of two workers over both NIC1 queues.
    // Whichever queue the traffic lands on, both workers process it —
    // chunk stealing replaces static queue ownership.
    let forwarded_ctr = Arc::new(AtomicU64::new(0));
    let expired_ctr = Arc::new(AtomicU64::new(0));
    let icmp_ctr = Arc::new(AtomicU64::new(0));
    let pool = {
        let egress = Arc::clone(&nic2);
        let forwarded_ctr = Arc::clone(&forwarded_ctr);
        let expired_ctr = Arc::clone(&expired_ctr);
        let icmp_ctr = Arc::clone(&icmp_ctr);
        engine.consumer_pool(&BuddyGroup::all(2), 2, move |d| {
            thread_local! {
                // One middlebox + scratch buffer per worker thread:
                // frames are inspected/modified straight off the
                // borrowed chunk view, with no per-packet allocation.
                static MB: RefCell<(Middlebox, Vec<u8>)> =
                    RefCell::new((Middlebox::new(), Vec::new()));
            }
            MB.with(|cell| {
                let mut cell = cell.borrow_mut();
                let (mb, scratch) = &mut *cell;
                let mut forwarded = 0u64;
                let mut expired = 0u64;
                for pkt in d.view().iter() {
                    let verdict = mb.process_slice(pkt.data, scratch);
                    if verdict == Verdict::TtlExpired {
                        // A real router answers with ICMP Time
                        // Exceeded toward the sender.
                        let _reply = mb
                            .time_exceeded_reply(pkt.data)
                            .expect("IPv4 frame quotes cleanly");
                        expired += 1;
                    } else {
                        // Transmit owns its frame: the one copy out
                        // of the scratch buffer happens here.
                        let out = netproto::Packet {
                            ts_ns: pkt.ts_ns,
                            wire_len: pkt.wire_len,
                            data: bytes::Bytes::copy_from_slice(scratch),
                        };
                        while egress.inject(out.clone()).is_none() {
                            std::thread::yield_now();
                        }
                        forwarded += 1;
                    }
                }
                forwarded_ctr.fetch_add(forwarded, Ordering::Relaxed);
                expired_ctr.fetch_add(expired, Ordering::Relaxed);
                icmp_ctr.fetch_add(expired, Ordering::Relaxed);
            });
        })
    };

    // The next hop: drain NIC2 and validate every forwarded frame.
    let receiver = {
        let nic2 = Arc::clone(&nic2);
        std::thread::spawn(move || {
            let queues: Vec<_> = (0..2).map(|q| nic2.queue(q)).collect();
            let mut received = 0u64;
            loop {
                let mut idle = true;
                for queue in &queues {
                    while let Some(pkt) = queue.pop() {
                        idle = false;
                        netproto::builder::validate_frame(&pkt.data)
                            .expect("forwarded frames must stay well-formed");
                        received += 1;
                    }
                }
                if idle {
                    if nic2.is_stopped() && queues.iter().all(|q| q.depth() == 0) {
                        return received;
                    }
                    std::thread::yield_now();
                }
            }
        })
    };

    // Traffic into NIC1: normal packets plus a slice arriving with TTL 1
    // (these must die at the middlebox).
    let mut builder = PacketBuilder::new();
    let mut ts = 0u64;
    let total = 5_000u64;
    let mut expiring = 0u64;
    for i in 0..total {
        let flow = FlowKey::udp(
            Ipv4Addr::new(172, 16, (i >> 8) as u8, (i & 0xff) as u8 | 1),
            20_000 + (i % 1_000) as u16,
            Ipv4Addr::new(131, 225, 107, 3),
            9_000,
        );
        ts += 2_000;
        let mut pkt = builder.build_packet(ts, &flow, 300).unwrap();
        if i % 10 == 0 {
            // Rewrite TTL to 1 and refresh the header checksum.
            let mut bytes = pkt.data.to_vec();
            bytes[14 + 8] = 1;
            bytes[14 + 10] = 0;
            bytes[14 + 11] = 0;
            let csum = netproto::checksum::checksum(&bytes[14..34]);
            bytes[24..26].copy_from_slice(&csum.to_be_bytes());
            pkt.data = bytes.into();
            expiring += 1;
        }
        while nic1.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic1.stop();

    let reports = pool.join();
    let forwarded = forwarded_ctr.load(Ordering::Relaxed);
    let expired = expired_ctr.load(Ordering::Relaxed);
    let icmp_sent = icmp_ctr.load(Ordering::Relaxed);
    let stolen: u64 = reports.iter().map(|r| r.stolen_chunks).sum();
    nic2.stop();
    let received = receiver.join().expect("receiver thread");
    engine.shutdown();

    println!("ingress  : {total} packets ({expiring} arriving with TTL 1)");
    println!("forwarded: {forwarded}  expired: {expired}  ICMP time-exceeded sent: {icmp_sent}");
    for r in &reports {
        println!(
            "worker {} : {} packets in {} chunks ({} stolen)",
            r.worker, r.packets, r.chunks, r.stolen_chunks
        );
    }
    println!("pool     : {stolen} chunks moved between workers by stealing");
    println!("egress   : {received} validated frames at the next hop");
    assert_eq!(expired, expiring);
    assert_eq!(icmp_sent, expiring, "every expiry answered with ICMP");
    assert_eq!(forwarded, total - expiring);
    assert_eq!(
        received, forwarded,
        "every forwarded frame reaches the peer"
    );
    println!("middlebox OK: inspect-modify-forward with zero loss");
}
