//! Work-stealing consumer pool vs. per-queue consumers (DESIGN.md §4.11).
//!
//! The paper's load-imbalance problem reappears on the delivery side:
//! RSS concentrates a heavy flow onto one receive queue, and with one
//! consumer thread bound to each queue, every other thread idles while
//! the hot queue's consumer serializes its per-chunk work. This example
//! runs the same skewed workload twice —
//!
//! 1. **per-queue**: one `LiveConsumer` thread per queue (the classic
//!    `multi_pkt_handler` topology);
//! 2. **pooled**: a [`wirecap::ConsumerPool`] over *all* queues, whose
//!    workers steal sealed chunks from the hot queue's backlog and park
//!    on a wakeup gate when there is nothing to do —
//!
//! with a blocking per-chunk stage (standing in for a batch `write(2)`
//! or a downstream RPC) so the serialization is visible in wall-clock
//! time. It also shows the adaptive-polling knobs on
//! [`wirecap::WireCapConfig::builder`]: the spin → yield → park ladder
//! and optional core pinning.
//!
//! The pooled run additionally enables 1-in-16 span tracing
//! (`span_sample_n`), and at the end exports the sampled chunk
//! lifecycles plus the worker time-state profile as Chrome trace-event
//! JSON — load `target/consumer_pool-trace.json` into
//! <https://ui.perfetto.dev> or `chrome://tracing` to see stolen
//! chunks land on foreign workers.
//!
//! Run with:
//! ```sh
//! cargo run --release --example consumer_pool
//! ```

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::{BuddyGroup, WireCapConfig};

const QUEUES: usize = 4;
const WORKERS: usize = 4;
const PACKETS: u64 = 48_000;
/// Blocking stage per consumed chunk: one consumer serializes these,
/// pool workers overlap them.
const CHUNK_IO: Duration = Duration::from_micros(50);

fn config() -> WireCapConfig {
    WireCapConfig::builder()
        .cells(64)
        .chunks(32)
        .capture_timeout_ns(2_000_000)
        // The adaptive-polling ladder: busy-spin briefly for the lowest
        // wakeup latency, yield a while to let busy siblings run, then
        // park on the wakeup gate in bounded slices.
        .spin_iters(128)
        .yield_iters(32)
        .park_timeout_ns(500_000)
        // Set true to pin capture threads and pool workers to cores
        // (`sched_setaffinity`; a no-op where unavailable).
        .pin_threads(false)
        // Trace every 16th chunk's full lifecycle (seal → publish →
        // claim → deliver) and profile worker time states; 0 = off.
        .span_sample_n(16)
        .build()
        .expect("valid configuration")
}

/// Everything lands on one queue: a single UDP flow hashes to a single
/// RSS bucket no matter how many queues the NIC has.
fn inject_skewed(nic: &Arc<LiveNic>) {
    let mut b = PacketBuilder::new();
    let flow = FlowKey::udp(
        Ipv4Addr::new(131, 225, 2, 7),
        5_005,
        Ipv4Addr::new(10, 0, 0, 1),
        443,
    );
    for i in 0..PACKETS {
        let pkt = b.build_packet(i * 1_000, &flow, 128).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
    nic.stop();
}

/// One consumer thread bound to each queue.
fn per_queue_run() -> (u64, f64) {
    let nic = LiveNic::new(QUEUES, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(config())
        .groups(BuddyGroups::single(QUEUES))
        .start();
    let start = Instant::now();
    let consumers: Vec<_> = (0..QUEUES)
        .map(|q| {
            let mut c = engine.consumer(q);
            std::thread::spawn(move || {
                let mut delivered = 0u64;
                while let Some(chunk) = c.next_chunk() {
                    for pkt in c.view(&chunk).iter() {
                        delivered += u64::from(!pkt.data.is_empty());
                    }
                    std::thread::sleep(CHUNK_IO);
                    c.recycle(chunk);
                }
                delivered
            })
        })
        .collect();
    inject_skewed(&nic);
    let delivered: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
    let elapsed = start.elapsed().as_secs_f64();
    engine.shutdown();
    (delivered, elapsed)
}

/// A pool of workers over all queues, stealing and parking adaptively.
fn pooled_run() -> (u64, u64, u64, f64) {
    let nic = LiveNic::new(QUEUES, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(config())
        .groups(BuddyGroups::single(QUEUES))
        .start();
    let group = BuddyGroup::all(QUEUES);
    let delivered = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let pool = {
        let delivered = Arc::clone(&delivered);
        engine.consumer_pool(&group, WORKERS, move |d| {
            let mut n = 0u64;
            for pkt in d.view().iter() {
                n += u64::from(!pkt.data.is_empty());
            }
            std::thread::sleep(CHUNK_IO);
            delivered.fetch_add(n, Ordering::Relaxed);
        })
    };
    inject_skewed(&nic);
    let reports = pool.join();
    let elapsed = start.elapsed().as_secs_f64();
    let observer = engine.observer();
    let spans = observer.spans();
    let snap = observer.snapshot();
    engine.shutdown();
    let stolen: u64 = reports.iter().map(|r| r.stolen_chunks).sum();
    let parks: u64 = reports.iter().map(|r| r.parks).sum();
    for r in &reports {
        println!(
            "  worker {}: {:>6} packets in {:>3} chunks ({} stolen, {} parks)",
            r.worker, r.packets, r.chunks, r.stolen_chunks, r.parks
        );
    }

    // Per-stage latency decomposition of the sampled chunks.
    let stolen_spans = spans.iter().filter(|s| s.stolen).count();
    println!(
        "\n  {} sampled spans ({} on stolen chunks); mean stage times:",
        spans.len(),
        stolen_spans
    );
    if !spans.is_empty() {
        let n = spans.len() as u64;
        let mean = |f: fn(&telemetry::SpanRecord) -> u64| spans.iter().map(f).sum::<u64>() / n;
        println!(
            "    backend {:>7} ns | queue-wait {:>9} ns | claim {:>5} ns | \
             deliver {:>9} ns | end-to-end {:>9} ns",
            mean(|s| s.stage_backend_ns),
            mean(|s| s.stage_queue_wait_ns),
            mean(|s| s.stage_claim_ns),
            mean(|s| s.stage_deliver_ns),
            mean(|s| s.end_to_end_ns),
        );
    }
    // Where each worker's wall clock went (the time-state profiler).
    for w in &snap.workers {
        let busy = w.claim_ns + w.deliver_ns + w.steal_ns;
        let idle = w.spin_ns + w.yield_ns + w.park_ns;
        println!(
            "  worker {} time: {:>4} ms delivering/claiming/stealing, \
             {:>4} ms spinning/yielding/parked",
            w.worker,
            busy / 1_000_000,
            idle / 1_000_000
        );
    }

    // Export the run as Chrome trace-event JSON for Perfetto.
    let trace = telemetry::chrome_trace_json(&spans, &snap.workers);
    let out = std::path::Path::new("target/consumer_pool-trace.json");
    match std::fs::write(out, trace.as_bytes()) {
        Ok(()) => println!(
            "\n  wrote {} ({} bytes) — open in https://ui.perfetto.dev",
            out.display(),
            trace.len()
        ),
        Err(e) => println!("\n  could not write {}: {e}", out.display()),
    }

    (delivered.load(Ordering::Relaxed), stolen, parks, elapsed)
}

fn main() {
    println!("skewed workload: {PACKETS} packets, one flow, {QUEUES} queues\n");

    let (base_delivered, base_s) = per_queue_run();
    println!(
        "per-queue ({QUEUES} consumers): {base_delivered} packets in {base_s:.3}s \
         ({:.0} pps)\n",
        base_delivered as f64 / base_s
    );

    println!("pooled ({WORKERS} workers over {QUEUES} queues):");
    let (pool_delivered, stolen, parks, pool_s) = pooled_run();
    println!(
        "pooled total: {pool_delivered} packets in {pool_s:.3}s ({:.0} pps), \
         {stolen} chunks stolen, {parks} parks\n",
        pool_delivered as f64 / pool_s
    );

    assert_eq!(base_delivered, PACKETS);
    assert_eq!(pool_delivered, PACKETS);
    println!(
        "pool speedup over per-queue consumers: {:.2}x",
        base_s / pool_s
    );
    println!("consumer_pool OK");
}
