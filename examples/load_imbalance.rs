//! Demonstrates the paper's Experiment 1 (Fig. 3): RSS load imbalance.
//!
//! Generates the synthetic border-router trace, steers it across six
//! receive queues with the real Toeplitz hash, and profiles each queue
//! in 10 ms bins — the `queue_profiler` tool of §2.2. The output shows
//! both phenomena the paper reports: short-term bursts (spiky series)
//! and long-term imbalance (one queue carrying several times another's
//! load), which is why per-flow steering alone cannot prevent drops.
//!
//! Run with (add `--full` for the paper-scale 5M-packet trace):
//! ```sh
//! cargo run --release --example load_imbalance
//! ```

use apps::QueueProfiler;
use traffic::{generate_border_trace, BorderTraceConfig, TraceCursor};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        BorderTraceConfig::default()
    } else {
        BorderTraceConfig::small()
    };
    println!(
        "generating synthetic border trace: {} packets over {:.0}s ...",
        cfg.packets, cfg.duration_s
    );
    let trace = generate_border_trace(&cfg);
    let mut cursor = TraceCursor::new(&trace);
    let profiler = QueueProfiler::profile(&mut cursor, 6);

    let duration_s = trace.duration_ns() as f64 / 1e9;
    println!("\nper-queue load (10 ms bins), as in the paper's Figure 3:\n");
    for q in 0..profiler.queues() {
        let series = profiler.queue(q);
        println!(
            "queue {q}: {:>8} pkts  {:>8.0} p/s  peak/mean {:>5.1}  {}",
            series.total(),
            series.total() as f64 / duration_s,
            series.burstiness(),
            spark(series.counts())
        );
    }
    let (hot, cold) = profiler.extremes();
    println!(
        "\nlong-term imbalance: queue {hot} carries {:.1}x queue {cold}'s load",
        profiler.imbalance_ratio()
    );
    println!(
        "short-term bursts: queue {hot} peaks at {:.1}x its own mean within 10 ms bins",
        profiler.queue(hot).burstiness()
    );
    println!(
        "\nthe paper's conclusion: \"load imbalance of either type occurs frequently\n\
         on multicore systems\" — an engine must buffer bursts (ring buffer pools)\n\
         and rebalance sustained skew (buddy-group offloading) to avoid drops."
    );
}

fn spark(counts: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let buckets = 60usize;
    let chunk = counts.len().div_ceil(buckets).max(1);
    let sums: Vec<u64> = counts.chunks(chunk).map(|c| c.iter().sum()).collect();
    let max = sums.iter().copied().max().unwrap_or(1).max(1);
    sums.iter()
        .map(|&s| GLYPHS[((s * 7) / max) as usize])
        .collect()
}
