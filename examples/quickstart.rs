//! Quickstart: capture packets with WireCAP through the
//! Libpcap-compatible interface.
//!
//! This is the "hello world" of the library: bring up a live in-memory
//! NIC, start the live WireCAP engine on it, inject some traffic, and
//! read the captured packets back through a `pcap`-style capture handle
//! with a BPF filter installed — exactly how a libpcap application would
//! use the real WireCAP.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Like every engine run, it serves live telemetry when
//! `WIRECAP_TELEMETRY_LISTEN` is set (DESIGN.md §4.9).

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use pcap::capture::Capture;
use pcap::PacketSource as _;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

fn main() {
    // 1. A live NIC with one receive queue, and a WireCAP engine in
    // basic mode: chunks of M = 64 cells, a pool of R = 32 chunks.
    let nic = LiveNic::new(1, 4096);
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 2_000_000; // flush partial chunks after 2 ms
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(BuddyGroups::isolated(1))
        .start();

    // 2. The application side: a pcap capture over the queue-0 consumer,
    // filtered with the paper's own expression.
    let consumer = engine.consumer(0);
    let reader = std::thread::spawn(move || {
        let mut cap = Capture::new(consumer);
        cap.set_filter_expr("131.225.2 and udp")
            .expect("filter compiles");
        let mut matched = 0u64;
        let mut bytes = 0u64;
        loop {
            let n = cap.dispatch(64, |pkt| {
                matched += 1;
                bytes += pkt.data.len() as u64;
            });
            if n == 0 && cap.source_mut().is_done() {
                return (matched, bytes, cap.stats());
            }
        }
    });

    // 3. The wire side: 1 000 UDP packets to the monitored prefix and
    // 500 TCP packets elsewhere.
    let mut builder = PacketBuilder::new();
    let mut ts = 0u64;
    for i in 0..1_000u16 {
        let flow = FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, (i % 250 + 1) as u8),
            32_000 + i,
            Ipv4Addr::new(198, 51, 100, 7),
            53,
        );
        ts += 1_000;
        inject(&nic, builder.build_packet(ts, &flow, 128).unwrap());
    }
    for i in 0..500u16 {
        let flow = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, (i % 250 + 1) as u8),
            40_000 + i,
            Ipv4Addr::new(131, 225, 9, 1),
            443,
        );
        ts += 1_000;
        inject(&nic, builder.build_packet(ts, &flow, 256).unwrap());
    }
    nic.stop();

    let (matched, bytes, stats) = reader.join().expect("reader thread");
    engine.shutdown();

    println!("injected : 1500 packets (1000 UDP to 131.225.2/24, 500 TCP)");
    println!("seen     : {} packets pre-filter", stats.received);
    println!("matched  : {matched} packets, {bytes} bytes");
    println!("filtered : {} packets rejected by BPF", stats.filtered_out);
    assert_eq!(matched, 1_000);
    assert_eq!(stats.filtered_out, 500);
    println!("quickstart OK: zero-loss capture and filtering through WireCAP");
}

fn inject(nic: &Arc<LiveNic>, pkt: netproto::Packet) {
    while nic.inject(pkt.clone()).is_none() {
        std::thread::yield_now();
    }
}
