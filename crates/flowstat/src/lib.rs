//! # flowstat — online flow analytics at millions of concurrent flows
//!
//! WireCAP's lossless capture only matters if the consumer can do real
//! per-packet analysis at line rate. This crate is that consumer stage:
//! per-flow state over the batched `ChunkView` delivery path, following
//! the cache-conscious designs in "Algorithms and Data Structures to
//! Accelerate Network Analysis":
//!
//! * [`FlowTable`] — a fixed-capacity R-way set-associative flow table
//!   keyed by the `netproto` IPv4 5-tuple. Each set is exactly one cache
//!   line (four 32-byte slots), kept in per-set LRU order with eviction
//!   folding the displaced flow's counts into aggregate eviction
//!   counters. No allocation ever happens after construction.
//! * [`TopK`] — a Space-Saving-style heavy-hitter candidate set per
//!   worker. Because the flow table already holds exact per-flow counts,
//!   candidates only bank counts lost to table eviction; membership is
//!   maintained with a rising admission floor and periodic compaction.
//! * [`FlowSink`] — the per-worker façade the delivery path drives:
//!   batched two-pass (extract + prefetch, then record) frame ingest and
//!   delta draining for telemetry.
//!
//! The structures are single-writer by design: one `FlowSink` per pool
//! worker, merged at report time with [`merge_top_k`].

#![deny(missing_docs)]

mod sink;
mod table;
mod topk;

pub use sink::{merge_top_k, FlowDeltas, FlowSink, FlowSinkConfig};
pub use table::{Evicted, FlowTable, PackedFlowKey, Recorded, TableStats, WAYS};
pub use topk::TopK;
