//! The per-worker flow-analytics sink driven by the delivery path.

use crate::table::{FlowTable, PackedFlowKey, TableStats};
use crate::topk::TopK;
use netproto::FlowKey;
use std::collections::HashMap;

/// Offer-sampling granularity: beyond the first floor crossing, a flow is
/// re-offered to the candidate set only on every 256th packet. Candidate
/// totals are read from the exact table counts at query time, so the
/// sampling affects *when* a flow becomes a candidate, never its count.
const OFFER_MASK: u64 = 255;

/// Sizing for a [`FlowSink`].
#[derive(Debug, Clone, Copy)]
pub struct FlowSinkConfig {
    /// Flow-table slot capacity (default one million entries, 32 MiB).
    pub table_capacity: usize,
    /// Heavy-hitter candidates retained per worker.
    pub topk_capacity: usize,
}

impl Default for FlowSinkConfig {
    fn default() -> Self {
        FlowSinkConfig {
            table_capacity: 1 << 20,
            topk_capacity: 1024,
        }
    }
}

/// Counter deltas since the previous drain, for flushing into telemetry
/// from the delivery loop without rescanning the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowDeltas {
    /// Packets recorded (parsed to a flow key).
    pub packets: u64,
    /// Bytes recorded.
    pub bytes: u64,
    /// Frames that did not parse to an IPv4 5-tuple.
    pub unparsed: u64,
    /// Flows displaced by LRU eviction.
    pub evicted_flows: u64,
    /// Packets folded into the eviction aggregate.
    pub evicted_packets: u64,
    /// Occupied non-matching slots scanned.
    pub hash_collisions: u64,
    /// Current live flow count (a level, not a delta).
    pub occupancy: u64,
}

/// One worker's flow-analytics state: exact flow table, top-K candidate
/// tracker, and the scratch buffer for batched two-pass ingest.
pub struct FlowSink {
    table: FlowTable,
    topk: TopK,
    scratch: Vec<(PackedFlowKey, u64)>,
    unparsed: u64,
    drained: FlowDrainMark,
}

#[derive(Debug, Clone, Copy, Default)]
struct FlowDrainMark {
    tracked_packets: u64,
    tracked_bytes: u64,
    unparsed: u64,
    evicted_flows: u64,
    evicted_packets: u64,
    hash_collisions: u64,
}

impl FlowSink {
    /// Creates a sink; all flow-table storage is allocated here.
    pub fn new(cfg: FlowSinkConfig) -> Self {
        FlowSink {
            table: FlowTable::new(cfg.table_capacity),
            topk: TopK::new(cfg.topk_capacity),
            scratch: Vec::with_capacity(1024),
            unparsed: 0,
            drained: FlowDrainMark::default(),
        }
    }

    /// Records one batch of captured frames (one chunk's worth).
    ///
    /// Two passes: the first extracts and packs the 5-tuples while
    /// prefetching each flow's table set, the second records — by then
    /// the cache lines are in flight or resident, which is what keeps a
    /// multi-megabyte table off the per-packet critical path.
    pub fn record_frames<'a, I>(&mut self, frames: I)
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        self.scratch.clear();
        for f in frames {
            match netproto::flow_of(f) {
                Some(flow) => {
                    let key = PackedFlowKey::from_flow(&flow);
                    self.table.prefetch(key);
                    self.scratch.push((key, f.len() as u64));
                }
                None => self.unparsed += 1,
            }
        }
        for i in 0..self.scratch.len() {
            let (key, bytes) = self.scratch[i];
            self.record(key, bytes);
        }
    }

    /// Records one packet for an already-extracted flow key.
    #[inline]
    pub fn record(&mut self, key: PackedFlowKey, bytes: u64) {
        let r = self.table.record(key, bytes);
        if let Some(ev) = r.evicted {
            self.topk.note_evicted(ev.key, ev.packets);
        }
        if r.packets >= self.topk.floor() && (r.packets == 1 || r.packets & OFFER_MASK == 0) {
            self.topk.offer(key, &self.table);
        }
    }

    /// Counter movement since the last drain, plus current occupancy.
    pub fn drain_deltas(&mut self) -> FlowDeltas {
        let s = self.table.stats();
        let d = FlowDeltas {
            packets: s.tracked_packets - self.drained.tracked_packets,
            bytes: s.tracked_bytes - self.drained.tracked_bytes,
            unparsed: self.unparsed - self.drained.unparsed,
            evicted_flows: s.evicted_flows - self.drained.evicted_flows,
            evicted_packets: s.evicted_packets - self.drained.evicted_packets,
            hash_collisions: s.hash_collisions - self.drained.hash_collisions,
            occupancy: s.live_flows,
        };
        self.drained = FlowDrainMark {
            tracked_packets: s.tracked_packets,
            tracked_bytes: s.tracked_bytes,
            unparsed: self.unparsed,
            evicted_flows: s.evicted_flows,
            evicted_packets: s.evicted_packets,
            hash_collisions: s.hash_collisions,
        };
        d
    }

    /// The flow table (exact live per-flow counts).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// The heavy-hitter candidate tracker.
    pub fn topk(&self) -> &TopK {
        &self.topk
    }

    /// Aggregate table statistics.
    pub fn stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Frames that did not parse to an IPv4 5-tuple.
    pub fn unparsed(&self) -> u64 {
        self.unparsed
    }

    /// This worker's current top `k` flows, strongest first.
    pub fn top(&self, k: usize) -> Vec<(FlowKey, u64)> {
        self.topk
            .top(k, &self.table)
            .into_iter()
            .map(|(key, n)| (key.to_flow(), n))
            .collect()
    }
}

/// Merges per-worker trackers into a global top `k`.
///
/// The pool spreads one flow's packets across workers, so a candidate's
/// global count is the sum over *all* workers of its live table count
/// plus any banked (eviction-folded) count; the candidate universe is the
/// union of every worker's candidate set. Strongest first, ties broken by
/// key for determinism.
pub fn merge_top_k(sinks: &[&FlowSink], k: usize) -> Vec<(FlowKey, u64)> {
    let mut totals: HashMap<PackedFlowKey, u64> = HashMap::new();
    for s in sinks {
        for (key, banked) in s.topk.candidates() {
            *totals.entry(key).or_insert(0) += banked;
        }
    }
    for (key, total) in totals.iter_mut() {
        for s in sinks {
            *total += s.table.lookup(*key).map_or(0, |(p, _)| p);
        }
    }
    let mut out: Vec<(PackedFlowKey, u64)> = totals.into_iter().collect();
    out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out.into_iter().map(|(key, n)| (key.to_flow(), n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::PacketBuilder;
    use std::net::Ipv4Addr;

    fn frames(flows: &[(FlowKey, usize)]) -> Vec<Vec<u8>> {
        let mut b = PacketBuilder::new();
        let mut out = Vec::new();
        for (f, n) in flows {
            for _ in 0..*n {
                out.push(b.build(f, 128).unwrap());
            }
        }
        out
    }

    fn flow(n: u8) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(131, 225, 2, n),
            1000 + u16::from(n),
            Ipv4Addr::new(10, 0, 0, 1),
            53,
        )
    }

    #[test]
    fn record_frames_counts_and_conserves() {
        let mut sink = FlowSink::new(FlowSinkConfig {
            table_capacity: 256,
            topk_capacity: 16,
        });
        let fs = frames(&[(flow(1), 10), (flow(2), 3)]);
        sink.record_frames(fs.iter().map(|f| f.as_slice()));
        sink.record_frames([&b"garbage"[..], &[0u8; 64][..]]);
        let s = sink.stats();
        assert_eq!(s.tracked_packets, 13);
        assert_eq!(sink.unparsed(), 2);
        let live: u64 = sink.table().iter().map(|(_, p, _)| p).sum();
        assert_eq!(live + s.evicted_packets, s.tracked_packets);
        assert_eq!(
            sink.table()
                .lookup(PackedFlowKey::from_flow(&flow(1)))
                .map(|(p, _)| p),
            Some(10)
        );
    }

    #[test]
    fn drain_deltas_are_increments() {
        let mut sink = FlowSink::new(FlowSinkConfig {
            table_capacity: 64,
            topk_capacity: 4,
        });
        let fs = frames(&[(flow(1), 5)]);
        sink.record_frames(fs.iter().map(|f| f.as_slice()));
        let d1 = sink.drain_deltas();
        assert_eq!(d1.packets, 5);
        assert_eq!(d1.occupancy, 1);
        let fs2 = frames(&[(flow(2), 2)]);
        sink.record_frames(fs2.iter().map(|f| f.as_slice()));
        let d2 = sink.drain_deltas();
        assert_eq!(d2.packets, 2);
        assert_eq!(d2.occupancy, 2);
        let d3 = sink.drain_deltas();
        assert_eq!(d3.packets, 0);
    }

    #[test]
    fn merge_sums_across_workers() {
        let cfg = FlowSinkConfig {
            table_capacity: 1024,
            topk_capacity: 16,
        };
        let mut a = FlowSink::new(cfg);
        let mut b = FlowSink::new(cfg);
        // Flow 1 split across both workers, flow 2 only on worker b.
        let fa = frames(&[(flow(1), 300)]);
        a.record_frames(fa.iter().map(|f| f.as_slice()));
        let fb = frames(&[(flow(1), 200), (flow(2), 400)]);
        b.record_frames(fb.iter().map(|f| f.as_slice()));
        let top = merge_top_k(&[&a, &b], 2);
        assert_eq!(top[0], (flow(1), 500));
        assert_eq!(top[1], (flow(2), 400));
    }
}
