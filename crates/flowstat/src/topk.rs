//! Space-Saving-style top-K heavy-hitter candidate tracking.
//!
//! The classic Space-Saving sketch keeps (key, count) pairs and does a
//! min-replacement per unmatched packet. Here the flow table already
//! holds *exact* per-flow counts, so the tracker only needs to maintain a
//! bounded candidate *set* plus counts banked from table evictions:
//!
//! * a flow is **offered** when its table count crosses the admission
//!   floor (sampled on count milestones, so the hot path adds only a
//!   compare per packet);
//! * when the candidate set reaches twice its capacity it **compacts**:
//!   the top `cap` candidates by total count survive and the floor rises
//!   to the smallest surviving count, Misra-Gries style;
//! * a candidate evicted from the flow table **banks** its count so
//!   nothing is lost across table churn.
//!
//! A candidate's total count is `banked + live table count`; with no
//! table evictions it is exact, which is what makes top-K across the
//! candidate union exact for true elephants.

use crate::table::{FlowTable, PackedFlowKey};
use std::collections::HashMap;

/// Per-worker top-K candidate tracker. See the module docs.
pub struct TopK {
    cap: usize,
    floor: u64,
    banked: HashMap<PackedFlowKey, u64>,
}

impl TopK {
    /// Creates a tracker that retains at least `cap` candidates (memory
    /// bound: `2 * cap` map entries between compactions).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TopK {
            cap,
            floor: 1,
            banked: HashMap::with_capacity(2 * cap + 1),
        }
    }

    /// The current admission floor: flows below this table count are not
    /// worth offering. Monotonically non-decreasing.
    #[inline]
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// Candidate count currently retained.
    pub fn len(&self) -> usize {
        self.banked.len()
    }

    /// True when no candidates are retained.
    pub fn is_empty(&self) -> bool {
        self.banked.is_empty()
    }

    /// Offers a flow whose table count crossed the floor. Idempotent for
    /// existing candidates (their banked count is preserved); compacts
    /// against `table` when the set overflows.
    pub fn offer(&mut self, key: PackedFlowKey, table: &FlowTable) {
        self.banked.entry(key).or_insert(0);
        if self.banked.len() > 2 * self.cap {
            self.compact(table);
        }
    }

    /// Banks the counts of a candidate displaced from the flow table so
    /// its history survives table churn. No-op for non-candidates.
    pub fn note_evicted(&mut self, key: PackedFlowKey, packets: u64) {
        if let Some(b) = self.banked.get_mut(&key) {
            *b += packets;
        }
    }

    /// Total count of one candidate: banked plus live table count.
    fn total(&self, key: PackedFlowKey, table: &FlowTable) -> u64 {
        self.banked.get(&key).copied().unwrap_or(0) + table.lookup(key).map_or(0, |(p, _)| p)
    }

    /// Drops the weakest candidates, keeping the strongest `cap` and
    /// raising the floor to the smallest surviving total.
    fn compact(&mut self, table: &FlowTable) {
        let mut totals: Vec<(PackedFlowKey, u64, u64)> = self
            .banked
            .iter()
            .map(|(k, b)| (*k, self.total(*k, table), *b))
            .collect();
        // Sort by total descending, key ascending for determinism.
        totals.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        totals.truncate(self.cap);
        if let Some(&(_, weakest, _)) = totals.last() {
            self.floor = self.floor.max(weakest);
        }
        self.banked.clear();
        for (k, _, b) in totals {
            self.banked.insert(k, b);
        }
    }

    /// The top `k` candidates by total count, strongest first (ties broken
    /// by key for determinism).
    pub fn top(&self, k: usize, table: &FlowTable) -> Vec<(PackedFlowKey, u64)> {
        let mut totals: Vec<(PackedFlowKey, u64)> = self
            .banked
            .keys()
            .map(|key| (*key, self.total(*key, table)))
            .collect();
        totals.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        totals.truncate(k);
        totals
    }

    /// Iterates the candidate keys with their banked (table-evicted)
    /// counts.
    pub fn candidates(&self) -> impl Iterator<Item = (PackedFlowKey, u64)> + '_ {
        self.banked.iter().map(|(k, b)| (*k, *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> PackedFlowKey {
        PackedFlowKey {
            k0: n.wrapping_mul(0x9e37_79b9),
            k1: n & 0xff_ffff_ffff,
        }
    }

    #[test]
    fn exact_top_k_without_table_eviction() {
        let mut table = FlowTable::new(4096);
        let mut topk = TopK::new(16);
        // 200 mice with 1-5 packets, 8 elephants with 1000+.
        for m in 0..200u64 {
            for _ in 0..=(m % 5) {
                let r = table.record(key(m), 64);
                if r.packets >= topk.floor() {
                    topk.offer(key(m), &table);
                }
            }
        }
        for e in 1000..1008u64 {
            for _ in 0..1000 + e {
                let r = table.record(key(e), 1500);
                if r.packets >= topk.floor() {
                    topk.offer(key(e), &table);
                }
            }
        }
        let top = topk.top(8, &table);
        let got: Vec<PackedFlowKey> = top.iter().map(|t| t.0).collect();
        let mut want: Vec<PackedFlowKey> = (1000..1008u64).map(key).collect();
        // Strongest first: elephant 1007 has the most packets.
        want.sort_by_key(|k| std::cmp::Reverse(table.lookup(*k).unwrap().0));
        assert_eq!(got, want);
        assert_eq!(top[0].1, 2007);
    }

    #[test]
    fn compaction_bounds_memory_and_raises_floor() {
        let mut table = FlowTable::new(1 << 16);
        let mut topk = TopK::new(8);
        for n in 0..10_000u64 {
            table.record(key(n), 64);
            topk.offer(key(n), &table);
        }
        assert!(topk.len() <= 16, "len = {}", topk.len());
        assert!(topk.floor() >= 1);
    }

    #[test]
    fn banked_counts_survive_table_eviction() {
        let mut table = FlowTable::new(4);
        let mut topk = TopK::new(4);
        // Make one flow a candidate, then evict it via set pressure.
        for _ in 0..10 {
            table.record(key(7), 100);
        }
        topk.offer(key(7), &table);
        let mut evicted = false;
        for n in 0..64u64 {
            let r = table.record(key(n), 10);
            if let Some(ev) = r.evicted {
                topk.note_evicted(ev.key, ev.packets);
                if ev.key == key(7) {
                    evicted = true;
                }
            }
        }
        assert!(evicted, "flow 7 should have been displaced");
        let top = topk.top(1, &table);
        assert_eq!(top[0].0, key(7));
        assert!(top[0].1 >= 10, "banked count lost: {}", top[0].1);
    }
}
