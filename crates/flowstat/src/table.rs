//! The R-way set-associative flow table.
//!
//! Layout follows the cache-conscious flow-cache design: the table is an
//! array of *sets*, each set exactly one 128-byte cache line holding
//! [`WAYS`] 32-byte slots. A flow hashes to one set and can only live in
//! that set's slots (open addressing within the line), so a lookup costs
//! one line fill no matter how many million flows are resident. Slots
//! within a set are kept in LRU order — slot 0 is the most recently used —
//! by rotating on access; eviction takes the last slot and folds its
//! counts into the aggregate eviction counters, preserving the invariant
//!
//! ```text
//! Σ live per-flow packets + evicted_packets == tracked_packets
//! ```

use netproto::{FlowKey, Protocol};
use std::net::Ipv4Addr;

/// Associativity: slots per set. Four 32-byte slots fill one 128-byte
/// cache line exactly.
pub const WAYS: usize = 4;

/// A flow key packed into two words for slot storage and hashing.
///
/// `k0` holds the source and destination IPv4 addresses; `k1` holds the
/// ports and protocol number in its low 40 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedFlowKey {
    /// `src_ip << 32 | dst_ip`.
    pub k0: u64,
    /// `src_port << 24 | dst_port << 8 | proto`.
    pub k1: u64,
}

impl PackedFlowKey {
    /// Packs a `netproto` flow key.
    pub fn from_flow(f: &FlowKey) -> Self {
        PackedFlowKey {
            k0: (u64::from(u32::from(f.src_ip)) << 32) | u64::from(u32::from(f.dst_ip)),
            k1: (u64::from(f.src_port) << 24)
                | (u64::from(f.dst_port) << 8)
                | u64::from(f.proto.number()),
        }
    }

    /// Unpacks back into a `netproto` flow key.
    pub fn to_flow(self) -> FlowKey {
        FlowKey {
            src_ip: Ipv4Addr::from((self.k0 >> 32) as u32),
            dst_ip: Ipv4Addr::from(self.k0 as u32),
            src_port: (self.k1 >> 24) as u16,
            dst_port: (self.k1 >> 8) as u16,
            proto: Protocol::from_number(self.k1 as u8),
        }
    }
}

/// One resident flow: key words plus exact packet/byte counts. 32 bytes.
///
/// `tags` stores `k1 << 1 | 1`, so a zeroed slot (`tags == 0`) is
/// unambiguously empty — `k1 == 0` is a valid (if degenerate) flow.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    k0: u64,
    tags: u64,
    packets: u64,
    bytes: u64,
}

impl Slot {
    #[inline]
    fn occupied(&self) -> bool {
        self.tags != 0
    }

    #[inline]
    fn key(&self) -> PackedFlowKey {
        PackedFlowKey {
            k0: self.k0,
            k1: self.tags >> 1,
        }
    }
}

/// One cache line of slots, LRU-ordered front to back (empties at the
/// back).
#[derive(Debug, Clone, Copy, Default)]
#[repr(align(128))]
struct Set {
    slots: [Slot; WAYS],
}

/// The result of recording one packet into the table.
#[derive(Debug, Clone, Copy)]
pub struct Recorded {
    /// The flow's live packet count after this record.
    pub packets: u64,
    /// The flow displaced to make room, if the set was full.
    pub evicted: Option<Evicted>,
}

/// A flow displaced from a full set, with its accumulated counts.
#[derive(Debug, Clone, Copy)]
pub struct Evicted {
    /// The displaced flow's key.
    pub key: PackedFlowKey,
    /// Packets the flow had accumulated.
    pub packets: u64,
    /// Bytes the flow had accumulated.
    pub bytes: u64,
}

/// Aggregate table statistics (all monotonic except `live_flows`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Flows currently resident.
    pub live_flows: u64,
    /// Total slot capacity.
    pub capacity: u64,
    /// Packets recorded since construction.
    pub tracked_packets: u64,
    /// Bytes recorded since construction.
    pub tracked_bytes: u64,
    /// Flows displaced by per-set LRU eviction.
    pub evicted_flows: u64,
    /// Packets belonging to evicted flows (folded at eviction time).
    pub evicted_packets: u64,
    /// Bytes belonging to evicted flows.
    pub evicted_bytes: u64,
    /// Occupied non-matching slots scanned during lookups — the cost of
    /// flows colliding into the same set.
    pub hash_collisions: u64,
}

/// Fixed-capacity set-associative flow table. See the module docs for the
/// layout; all storage is allocated in [`FlowTable::new`] and never grows.
pub struct FlowTable {
    sets: Box<[Set]>,
    mask: u64,
    live: u64,
    tracked_packets: u64,
    tracked_bytes: u64,
    evicted_flows: u64,
    evicted_packets: u64,
    evicted_bytes: u64,
    hash_collisions: u64,
}

impl FlowTable {
    /// Creates a table with at least `capacity` slots (rounded up so the
    /// set count is a power of two). A million-entry table is 32 MiB.
    pub fn new(capacity: usize) -> Self {
        let sets = capacity.div_ceil(WAYS).next_power_of_two().max(1);
        FlowTable {
            sets: vec![Set::default(); sets].into_boxed_slice(),
            mask: sets as u64 - 1,
            live: 0,
            tracked_packets: 0,
            tracked_bytes: 0,
            evicted_flows: 0,
            evicted_packets: 0,
            evicted_bytes: 0,
            hash_collisions: 0,
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.sets.len() * WAYS
    }

    /// Flows currently resident.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// True when no flows are resident.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn hash(key: PackedFlowKey) -> u64 {
        // splitmix-style avalanche over both key words; the high bits feed
        // the set index after masking.
        let mut h = key.k0 ^ key.k1.rotate_left(25);
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        h ^ (h >> 32)
    }

    /// Prefetches the set `key` hashes to. Issued a batch ahead of
    /// [`FlowTable::record`] it hides the DRAM latency of cold sets.
    #[inline]
    pub fn prefetch(&self, key: PackedFlowKey) {
        #[cfg(target_arch = "x86_64")]
        {
            let idx = (Self::hash(key) & self.mask) as usize;
            // Safety: the pointer is a live in-bounds reference cast for
            // the intrinsic; prefetch reads nothing and writes nothing
            // architecturally.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    (&self.sets[idx] as *const Set).cast::<i8>(),
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = key;
        }
    }

    /// Records one packet of `bytes` bytes for `key`: bump on hit, insert
    /// on miss, LRU-evict when the set is full. O(WAYS), no allocation.
    pub fn record(&mut self, key: PackedFlowKey, bytes: u64) -> Recorded {
        self.tracked_packets += 1;
        self.tracked_bytes += bytes;
        let idx = (Self::hash(key) & self.mask) as usize;
        let set = &mut self.sets[idx].slots;
        let tags = (key.k1 << 1) | 1;

        for i in 0..WAYS {
            if set[i].k0 == key.k0 && set[i].tags == tags {
                set[i].packets += 1;
                set[i].bytes += bytes;
                let packets = set[i].packets;
                self.hash_collisions += i as u64;
                // Move to front: the hit slot becomes MRU.
                set[..=i].rotate_right(1);
                return Recorded {
                    packets,
                    evicted: None,
                };
            }
        }

        let occupied = set.iter().filter(|s| s.occupied()).count();
        self.hash_collisions += occupied as u64;
        let mut evicted = None;
        if occupied == WAYS {
            let victim = set[WAYS - 1];
            self.evicted_flows += 1;
            self.evicted_packets += victim.packets;
            self.evicted_bytes += victim.bytes;
            evicted = Some(Evicted {
                key: victim.key(),
                packets: victim.packets,
                bytes: victim.bytes,
            });
            set.rotate_right(1);
        } else {
            self.live += 1;
            // Empties sit at the back, so set[occupied] is free; rotating
            // the prefix keeps the LRU order of the occupied slots.
            set[..=occupied].rotate_right(1);
        }
        set[0] = Slot {
            k0: key.k0,
            tags,
            packets: 1,
            bytes,
        };
        Recorded {
            packets: 1,
            evicted,
        }
    }

    /// Looks up a flow's live counts without touching the LRU order.
    pub fn lookup(&self, key: PackedFlowKey) -> Option<(u64, u64)> {
        let idx = (Self::hash(key) & self.mask) as usize;
        let tags = (key.k1 << 1) | 1;
        self.sets[idx]
            .slots
            .iter()
            .find(|s| s.k0 == key.k0 && s.tags == tags)
            .map(|s| (s.packets, s.bytes))
    }

    /// Iterates all resident flows as `(key, packets, bytes)`.
    pub fn iter(&self) -> impl Iterator<Item = (PackedFlowKey, u64, u64)> + '_ {
        self.sets
            .iter()
            .flat_map(|set| set.slots.iter())
            .filter(|s| s.occupied())
            .map(|s| (s.key(), s.packets, s.bytes))
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> TableStats {
        TableStats {
            live_flows: self.live,
            capacity: self.capacity() as u64,
            tracked_packets: self.tracked_packets,
            tracked_bytes: self.tracked_bytes,
            evicted_flows: self.evicted_flows,
            evicted_packets: self.evicted_packets,
            evicted_bytes: self.evicted_bytes,
            hash_collisions: self.hash_collisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(n: u64) -> PackedFlowKey {
        PackedFlowKey {
            k0: n.wrapping_mul(0x1234_5678_9abc_def1),
            k1: (n.wrapping_mul(31) ^ 0xbeef) & 0xff_ffff_ffff,
        }
    }

    #[test]
    fn slot_and_set_sizes_match_the_cache_line() {
        assert_eq!(std::mem::size_of::<Slot>(), 32);
        assert_eq!(std::mem::size_of::<Set>(), 128);
        assert_eq!(std::mem::align_of::<Set>(), 128);
    }

    #[test]
    fn packed_key_roundtrips() {
        let f = FlowKey::tcp(
            Ipv4Addr::new(131, 225, 2, 3),
            65535,
            Ipv4Addr::new(10, 0, 0, 1),
            1,
        );
        assert_eq!(PackedFlowKey::from_flow(&f).to_flow(), f);
        let u = FlowKey::udp(
            Ipv4Addr::new(255, 255, 255, 255),
            0,
            Ipv4Addr::new(0, 0, 0, 0),
            65535,
        );
        assert_eq!(PackedFlowKey::from_flow(&u).to_flow(), u);
    }

    #[test]
    fn hit_bumps_and_miss_inserts() {
        let mut t = FlowTable::new(64);
        assert_eq!(t.record(key(1), 100).packets, 1);
        assert_eq!(t.record(key(1), 100).packets, 2);
        assert_eq!(t.record(key(2), 50).packets, 1);
        assert_eq!(t.lookup(key(1)), Some((2, 200)));
        assert_eq!(t.lookup(key(2)), Some((1, 50)));
        assert_eq!(t.lookup(key(3)), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two_sets() {
        assert_eq!(FlowTable::new(1).capacity(), 4);
        assert_eq!(FlowTable::new(5).capacity(), 8);
        assert_eq!(FlowTable::new(1_000_000).capacity(), (1 << 18) * WAYS);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        // A 1-set table: insert WAYS flows, touch the first again, then
        // insert one more — the victim must be the least recently used,
        // not the first inserted.
        let mut t = FlowTable::new(WAYS);
        let keys: Vec<PackedFlowKey> = (0..=WAYS as u64).map(key).collect();
        for k in &keys[..WAYS] {
            t.record(*k, 10);
        }
        t.record(keys[0], 10); // keys[0] is now MRU; keys[1] is LRU.
        let r = t.record(keys[WAYS], 10);
        let ev = r.evicted.expect("full set must evict");
        assert_eq!(ev.key, keys[1]);
        assert_eq!(ev.packets, 1);
        assert_eq!(t.lookup(keys[0]), Some((2, 20)));
        assert_eq!(t.lookup(keys[1]), None);
        let s = t.stats();
        assert_eq!(s.evicted_flows, 1);
        assert_eq!(s.evicted_packets, 1);
        assert_eq!(s.evicted_bytes, 10);
    }

    proptest! {
        /// The conservation invariant: live per-flow packet sums plus the
        /// eviction aggregate always equal the tracked total, no matter
        /// the key mix or table pressure.
        #[test]
        fn conservation_under_pressure(
            ops in proptest::collection::vec((0u64..400, 40u64..1500), 1..4000),
            capacity in 1usize..64,
        ) {
            let mut t = FlowTable::new(capacity);
            for (k, b) in &ops {
                t.record(key(*k), *b);
            }
            let s = t.stats();
            prop_assert_eq!(s.tracked_packets, ops.len() as u64);
            let live_packets: u64 = t.iter().map(|(_, p, _)| p).sum();
            let live_bytes: u64 = t.iter().map(|(_, _, b)| b).sum();
            prop_assert_eq!(live_packets + s.evicted_packets, s.tracked_packets);
            prop_assert_eq!(live_bytes + s.evicted_bytes, s.tracked_bytes);
            prop_assert_eq!(t.len() as u64, s.live_flows);
            prop_assert!(t.len() <= t.capacity());
        }

        /// With no eviction pressure the table is an exact counter.
        #[test]
        fn exact_without_eviction(ops in proptest::collection::vec(0u64..100, 1..2000)) {
            let mut t = FlowTable::new(100 * WAYS * 4);
            let mut reference = std::collections::HashMap::new();
            for k in &ops {
                t.record(key(*k), 64);
                *reference.entry(*k).or_insert(0u64) += 1;
            }
            if t.stats().evicted_flows == 0 {
                for (k, n) in &reference {
                    prop_assert_eq!(t.lookup(key(*k)), Some((*n, *n * 64)));
                }
            }
        }
    }
}
