//! Acceptance: the top-K tracker identifies the true top-16 elephant
//! flows of a seeded border trace *exactly* — same flows, same counts,
//! same order — both in a single sink and merged across several sinks
//! fed round-robin (the pool-delivery pattern).

use flowstat::{merge_top_k, FlowSink, FlowSinkConfig};
use traffic::{generate_border_trace, BorderTraceConfig};

fn sink_cfg() -> FlowSinkConfig {
    FlowSinkConfig {
        // Plenty of slots for the small trace's ~500 flows: counts stay
        // exact because nothing is ever evicted.
        table_capacity: 1 << 14,
        topk_capacity: 256,
    }
}

/// The trace's own ground truth: per-flow packet counts, top `k` by
/// count, ties broken deterministically by key.
fn true_top(trace: &traffic::Trace, k: usize) -> Vec<(netproto::FlowKey, u64)> {
    let sizes = trace.flow_sizes();
    let mut all: Vec<(netproto::FlowKey, u64)> = trace
        .flows()
        .iter()
        .zip(&sizes)
        .filter(|(_, n)| **n > 0)
        .map(|(f, n)| (*f, *n))
        .collect();
    all.sort_unstable_by(|a, b| {
        b.1.cmp(&a.1).then(
            flowstat::PackedFlowKey::from_flow(&a.0).cmp(&flowstat::PackedFlowKey::from_flow(&b.0)),
        )
    });
    all.truncate(k);
    all
}

#[test]
fn single_sink_finds_the_true_top_16() {
    let trace = generate_border_trace(&BorderTraceConfig::small());
    let mut sink = FlowSink::new(sink_cfg());
    let packets = trace.render_all();
    sink.record_frames(packets.iter().map(|p| p.bytes()));

    assert_eq!(sink.stats().evicted_flows, 0, "test requires exact counts");
    assert_eq!(sink.stats().tracked_packets, trace.len() as u64);
    assert_eq!(sink.top(16), true_top(&trace, 16));
}

#[test]
fn merged_sinks_find_the_true_top_16() {
    let trace = generate_border_trace(&BorderTraceConfig::small());
    let packets = trace.render_all();
    // Round-robin the packets across 4 sinks, like pool workers draining
    // interleaved chunks.
    let mut sinks: Vec<FlowSink> = (0..4).map(|_| FlowSink::new(sink_cfg())).collect();
    for (i, p) in packets.iter().enumerate() {
        sinks[i % 4].record_frames(std::iter::once(p.bytes()));
    }

    let refs: Vec<&FlowSink> = sinks.iter().collect();
    assert_eq!(merge_top_k(&refs, 16), true_top(&trace, 16));
}
