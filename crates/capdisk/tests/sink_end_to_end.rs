//! End-to-end disk-sink tests against a live engine: conservation of
//! packet accounting, file parseability, and the graceful-degradation
//! drop path under a throttled writer.

use capdisk::{read_pcapng, DiskSink, DiskSinkConfig, FileFormat, RotationPolicy};
use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("capdisk-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn inject(nic: &Arc<LiveNic>, n: u64, payload: usize) {
    let mut b = PacketBuilder::new();
    for i in 0..n {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, (i >> 8) as u8 & 0x7f, i as u8, 1),
            (1_000 + i % 40_000) as u16,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        let pkt = b.build_packet(i * 2_000, &flow, payload).unwrap();
        while nic.inject(pkt.clone()).is_none() {
            std::thread::yield_now();
        }
    }
}

fn engine_cfg() -> WireCapConfig {
    let mut cfg = WireCapConfig::basic(64, 32, 0);
    cfg.capture_timeout_ns = 2_000_000;
    cfg
}

#[test]
fn full_speed_sink_conserves_and_parses() {
    let dir = tmpdir("fullspeed");
    let queues = 2;
    let nic = LiveNic::new(queues, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(engine_cfg())
        .groups(BuddyGroups::isolated(queues))
        .start();
    let mut cfg = DiskSinkConfig::new(&dir);
    cfg.rotation = RotationPolicy {
        max_file_bytes: 64 << 10,
        max_file_duration: None,
    };
    let sink = DiskSink::attach(&engine, &cfg).unwrap();
    let total = 5_000u64;
    inject(&nic, total, 200);
    nic.stop();
    let report = sink.wait();
    assert!(report.is_conserved(), "{report:?}");
    assert_eq!(report.delivered_packets(), total);
    // No throttle, local tempdir: the writer keeps up.
    assert_eq!(report.dropped_packets(), 0, "{report:?}");
    assert_eq!(report.written_packets(), total);

    // Telemetry agrees with the report.
    let snap = engine.snapshot();
    let tel_written: u64 = snap.queues.iter().map(|q| q.disk_written_packets).sum();
    let tel_dropped: u64 = snap.queues.iter().map(|q| q.disk_drop_packets).sum();
    assert_eq!(tel_written, total);
    assert_eq!(tel_dropped, 0);
    engine.shutdown();

    // Every file parses and the packet census matches.
    let files = report.files();
    assert!(files.len() >= 2, "rotation split expected: {files:?}");
    let mut parsed = 0u64;
    for f in &files {
        let pf = read_pcapng(&std::fs::read(f).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        assert!(!pf.packets.is_empty(), "{} is empty", f.display());
        parsed += pf.packets.len() as u64;
    }
    assert_eq!(parsed, total);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn throttled_writer_sheds_but_accounts_every_packet() {
    let dir = tmpdir("throttled");
    let nic = LiveNic::new(1, 8192);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(engine_cfg())
        .groups(BuddyGroups::isolated(1))
        .start();
    let mut cfg = DiskSinkConfig::new(&dir);
    cfg.handoff_chunks = 2;
    cfg.max_write_bps = Some(200_000); // ~200 KB/s: far below the offered load
    let sink = DiskSink::attach(&engine, &cfg).unwrap();
    let total = 8_000u64;
    inject(&nic, total, 400);
    nic.stop();
    let report = sink.wait();
    assert!(report.is_conserved(), "{report:?}");
    assert_eq!(report.delivered_packets(), total);
    assert!(
        report.dropped_packets() > 0,
        "throttle should force disk drops: {report:?}"
    );
    assert_eq!(
        report.written_packets() + report.dropped_packets(),
        total,
        "no unaccounted packets"
    );
    let snap = engine.snapshot();
    let tel_written: u64 = snap.queues.iter().map(|q| q.disk_written_packets).sum();
    let tel_dropped: u64 = snap.queues.iter().map(|q| q.disk_drop_packets).sum();
    assert_eq!(tel_written, report.written_packets());
    assert_eq!(tel_dropped, report.dropped_packets());
    // The capture path itself never dropped: degradation hit only the
    // disk leg.
    let cap_drops: u64 = snap.queues.iter().map(|q| q.capture_drop_packets).sum();
    assert_eq!(cap_drops, 0, "capture must not block on a slow disk");
    engine.shutdown();
    // What did reach disk still parses.
    for f in report.files() {
        read_pcapng(&std::fs::read(&f).unwrap()).unwrap_or_else(|e| panic!("{}: {e}", f.display()));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pcap_format_leg_writes_savefile_compatible_files() {
    let dir = tmpdir("pcapleg");
    let nic = LiveNic::new(1, 4096);
    let engine = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(engine_cfg())
        .groups(BuddyGroups::isolated(1))
        .start();
    let mut cfg = DiskSinkConfig::new(&dir);
    cfg.format = FileFormat::Pcap;
    let sink = DiskSink::attach(&engine, &cfg).unwrap();
    let total = 1_000u64;
    inject(&nic, total, 120);
    nic.stop();
    let report = sink.wait();
    engine.shutdown();
    assert!(report.is_conserved());
    let mut parsed = 0u64;
    for f in report.files() {
        let sf = pcap::savefile::read_file(&std::fs::read(&f).unwrap()[..])
            .unwrap_or_else(|e| panic!("{}: {e}", f.display()));
        parsed += sf.packets.len() as u64;
    }
    assert_eq!(parsed, report.written_packets());
    std::fs::remove_dir_all(&dir).ok();
}
