//! The rotating, double-buffered file writer behind one disk-sink
//! writer thread.
//!
//! Encoding and I/O are strictly separated: packets are encoded into an
//! in-memory batch buffer ([`RotatingWriter::push_packet`]) and the
//! whole buffer is handed to the OS with **one** `write` call at
//! [`RotatingWriter::commit_batch`] — never one syscall per packet.
//! Two buffers alternate between the "filling" and "just written"
//! roles, so a batch's allocation is warm when its turn comes around
//! again and neither buffer is ever reallocated in steady state.
//!
//! Rotation happens only at batch boundaries: when the current file has
//! exceeded [`RotationPolicy::max_file_bytes`] or has been open longer
//! than [`RotationPolicy::max_file_duration`], `commit_batch` closes it
//! and the next batch opens `<prefix>-NNNN.<ext>` with a fresh format
//! header. Every emitted file is therefore self-contained and
//! independently parseable.

use crate::format::{pcap_record_into, pcap_record_len, EpbTemplate, FileFormat};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When to close the current file and open the next.
#[derive(Debug, Clone, Copy)]
pub struct RotationPolicy {
    /// Rotate once a file's payload reaches this size. `u64::MAX`
    /// disables size rotation.
    pub max_file_bytes: u64,
    /// Rotate once a file has been open this long. `None` disables
    /// time rotation.
    pub max_file_duration: Option<Duration>,
}

impl Default for RotationPolicy {
    fn default() -> Self {
        RotationPolicy {
            max_file_bytes: 1 << 30, // 1 GiB
            max_file_duration: None,
        }
    }
}

/// A rotating capture-file writer (one per disk-sink writer thread).
#[derive(Debug)]
pub struct RotatingWriter {
    dir: PathBuf,
    prefix: String,
    format: FileFormat,
    snaplen: u32,
    /// Precomputed EPB header for the pcapng hot path: built once per
    /// writer, patched per packet instead of reassembled.
    epb: Option<EpbTemplate>,
    policy: RotationPolicy,
    file: Option<File>,
    file_bytes: u64,
    file_opened: Instant,
    seq: u32,
    /// Double buffer: `bufs[active]` is filling, the other was last
    /// written and keeps its capacity warm for the swap. Each buffer
    /// is fixed-size zero-initialized storage addressed through its
    /// `staged` cursor (grown only when a batch outruns it), so
    /// encoding a packet is pure slice stores with no per-packet
    /// `Vec` length/capacity bookkeeping.
    bufs: [Vec<u8>; 2],
    staged: [usize; 2],
    active: usize,
    files: Vec<PathBuf>,
    written_packets: u64,
    written_bytes: u64,
}

impl RotatingWriter {
    /// Creates the output directory (if needed) and an idle writer. No
    /// file is opened until the first non-empty batch commits.
    pub fn new(
        dir: &Path,
        prefix: &str,
        format: FileFormat,
        snaplen: u32,
        policy: RotationPolicy,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(RotatingWriter {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            format,
            snaplen,
            epb: (format == FileFormat::Pcapng).then(|| EpbTemplate::new(snaplen)),
            policy,
            file: None,
            file_bytes: 0,
            file_opened: Instant::now(),
            seq: 0,
            bufs: [vec![0u8; 1 << 16], vec![0u8; 1 << 16]],
            staged: [0, 0],
            active: 0,
            files: Vec::new(),
            written_packets: 0,
            written_bytes: 0,
        })
    }

    /// Carves the next `len` bytes out of the active batch buffer,
    /// doubling the storage on the rare batch that outruns it.
    fn record_slice(&mut self, len: usize) -> &mut [u8] {
        let buf = &mut self.bufs[self.active];
        let start = self.staged[self.active];
        let end = start + len;
        if end > buf.len() {
            buf.resize((buf.len() * 2).max(end), 0);
        }
        self.staged[self.active] = end;
        &mut buf[start..end]
    }

    /// Encodes one packet into the current batch buffer. No I/O.
    pub fn push_packet(&mut self, ts_ns: u64, wire_len: u32, data: &[u8]) {
        match self.epb {
            Some(tmpl) => {
                let rec = self.record_slice(tmpl.encoded_len(data.len()));
                tmpl.encode_into(rec, ts_ns, wire_len, data);
            }
            None => {
                let rec = self.record_slice(pcap_record_len(data.len(), self.snaplen));
                pcap_record_into(rec, ts_ns, wire_len, data);
            }
        }
        self.written_packets += 1;
    }

    /// Bytes staged in the current batch buffer.
    pub fn staged_bytes(&self) -> usize {
        self.staged[self.active]
    }

    /// Writes the staged batch with a single `write` call, swaps
    /// buffers, and rotates if the policy says so. Returns the bytes
    /// written (including any file header opened for this batch); 0 for
    /// an empty batch.
    pub fn commit_batch(&mut self) -> io::Result<u64> {
        let staged = self.staged[self.active];
        if staged == 0 {
            return Ok(0);
        }
        let mut batch_bytes = 0u64;
        if self.file.is_none() {
            batch_bytes += self.open_next()?;
        }
        let file = self.file.as_mut().expect("opened above");
        file.write_all(&self.bufs[self.active][..staged])?;
        batch_bytes += staged as u64;
        self.file_bytes += staged as u64;
        self.written_bytes += staged as u64;
        self.staged[self.active] = 0;
        self.active ^= 1;
        let expired = self
            .policy
            .max_file_duration
            .is_some_and(|d| self.file_opened.elapsed() >= d);
        if self.file_bytes >= self.policy.max_file_bytes || expired {
            self.close_current()?;
        }
        Ok(batch_bytes)
    }

    fn open_next(&mut self) -> io::Result<u64> {
        let path = self.dir.join(format!(
            "{}-{:04}.{}",
            self.prefix,
            self.seq,
            self.format.extension()
        ));
        self.seq += 1;
        let mut file = File::create(&path)?;
        let mut header = Vec::with_capacity(64);
        self.format.encode_header(&mut header, self.snaplen);
        file.write_all(&header)?;
        self.file = Some(file);
        self.file_bytes = header.len() as u64;
        self.file_opened = Instant::now();
        self.written_bytes += header.len() as u64;
        self.files.push(path);
        Ok(header.len() as u64)
    }

    fn close_current(&mut self) -> io::Result<()> {
        if let Some(mut f) = self.file.take() {
            f.flush()?;
        }
        self.file_bytes = 0;
        Ok(())
    }

    /// Flushes any staged batch and closes the current file.
    pub fn finish(&mut self) -> io::Result<()> {
        self.commit_batch()?;
        self.close_current()
    }

    /// Paths of every file opened so far, in order.
    pub fn files(&self) -> &[PathBuf] {
        &self.files
    }

    /// Packets encoded so far.
    pub fn written_packets(&self) -> u64 {
        self.written_packets
    }

    /// File-format bytes written so far (headers + records).
    pub fn written_bytes(&self) -> u64 {
        self.written_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::read_pcapng;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("capdisk-writer-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn one_write_per_batch_and_valid_files() {
        let dir = tmpdir("batch");
        let mut w = RotatingWriter::new(
            &dir,
            "cap",
            FileFormat::Pcapng,
            65_535,
            RotationPolicy::default(),
        )
        .unwrap();
        for i in 0..100u64 {
            w.push_packet(i * 1_000, 64, &[i as u8; 64]);
        }
        assert!(w.staged_bytes() > 0);
        let bytes = w.commit_batch().unwrap();
        assert!(bytes > 0);
        w.finish().unwrap();
        assert_eq!(w.files().len(), 1);
        let f = read_pcapng(&std::fs::read(&w.files()[0]).unwrap()).unwrap();
        assert_eq!(f.packets.len(), 100);
        assert_eq!(f.packets[7].ts_ns, 7_000);
        assert_eq!(w.written_packets(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_rotation_splits_into_self_contained_files() {
        let dir = tmpdir("rotate");
        let mut w = RotatingWriter::new(
            &dir,
            "cap",
            FileFormat::Pcapng,
            65_535,
            RotationPolicy {
                max_file_bytes: 4_096,
                max_file_duration: None,
            },
        )
        .unwrap();
        // ~200 bytes per packet, batches of 10 → rotation every ~2 batches.
        for batch in 0..12u64 {
            for i in 0..10u64 {
                w.push_packet(batch * 100 + i, 180, &[1u8; 180]);
            }
            w.commit_batch().unwrap();
        }
        w.finish().unwrap();
        assert!(w.files().len() >= 2, "{} files", w.files().len());
        let mut total = 0usize;
        for path in w.files() {
            let f = read_pcapng(&std::fs::read(path).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(!f.packets.is_empty(), "{} is empty", path.display());
            total += f.packets.len();
        }
        assert_eq!(total, 120, "no packet lost across rotations");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_rotation_fires() {
        let dir = tmpdir("time");
        let mut w = RotatingWriter::new(
            &dir,
            "cap",
            FileFormat::Pcap,
            65_535,
            RotationPolicy {
                max_file_bytes: u64::MAX,
                max_file_duration: Some(Duration::from_millis(1)),
            },
        )
        .unwrap();
        w.push_packet(1, 60, &[0u8; 60]);
        w.commit_batch().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        w.push_packet(2, 60, &[0u8; 60]);
        w.commit_batch().unwrap();
        std::thread::sleep(Duration::from_millis(5));
        w.push_packet(3, 60, &[0u8; 60]);
        w.finish().unwrap();
        assert!(w.files().len() >= 2, "{} files", w.files().len());
        for path in w.files() {
            let sf = pcap::savefile::read_file(&std::fs::read(path).unwrap()[..]).unwrap();
            assert!(!sf.packets.is_empty());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_run_creates_no_files() {
        let dir = tmpdir("empty");
        let mut w = RotatingWriter::new(
            &dir,
            "cap",
            FileFormat::Pcapng,
            65_535,
            RotationPolicy::default(),
        )
        .unwrap();
        assert_eq!(w.commit_batch().unwrap(), 0);
        w.finish().unwrap();
        assert!(w.files().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
