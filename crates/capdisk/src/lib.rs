//! # capdisk — the capture-to-disk subsystem
//!
//! WireCAP's capture-and-save experiment (§4 of the paper) streams
//! captured traffic to disk while measuring what the extra work costs
//! the capture path. This crate is that subsystem for the live engine:
//!
//! * [`mod@format`] — pcap / pcapng block encoders that append into batch
//!   buffers (plus a strict pcapng reader for verification);
//! * [`writer`] — the rotating, double-buffered file writer: one
//!   `write` syscall per chunk batch, size/time rotation at batch
//!   boundaries, every emitted file self-contained;
//! * [`sink`] — the per-queue drainer/writer thread pairs with a
//!   bounded handoff ring and the graceful-degradation drop policy
//!   (`disk_drop_packets` + the telemetry "writer falling behind"
//!   anomaly), attached to a running [`wirecap::live::LiveWireCap`].
//!
//! The design invariant: **the disk can be arbitrarily slow and the
//! capture path never blocks** — a full handoff ring sheds chunks from
//! the disk leg only, explicitly counted, never silently.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod format;
pub mod sink;
pub mod writer;

pub use format::{read_pcapng, EpbTemplate, FileFormat, PcapngFile};
pub use sink::{DiskReport, DiskSink, DiskSinkConfig, QueueDiskReport, SinkMode};
pub use writer::{RotatingWriter, RotationPolicy};
