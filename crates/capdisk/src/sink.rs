//! The disk sink: per-queue drainer + writer thread pairs with a
//! bounded handoff and an explicit, telemetry-accounted drop policy.
//!
//! # Thread model
//!
//! Each queue gets **two** threads so the engine's single-consumer
//! invariants survive intact:
//!
//! * the **drainer** owns the queue's [`wirecap::live::LiveConsumer`] — it is the one
//!   SPSC consumer and the one recycler, so delivery tallies and the
//!   capture-to-delivery latency histogram keep their single-writer
//!   semantics. It moves chunks into a bounded handoff ring and
//!   recycles them when the writer hands them back;
//! * the **writer** pops chunks from the handoff, reads their packets
//!   zero-copy through a [`ChunkLens`] view, encodes them into the
//!   [`RotatingWriter`]'s batch buffer, and commits one `write` syscall
//!   per chunk batch.
//!
//! # Graceful degradation
//!
//! The handoff ring is bounded. When the writer falls behind — slow
//! disk, rotation stall, or a deliberately throttled sink — the ring
//! fills, and the drainer **drops the chunk for the disk leg only**:
//! the packets count into `disk_drop_packets`, the chunk recycles
//! immediately, and capture continues at full speed. The capture
//! thread is never blocked and never even knows the sink exists. The
//! anomaly detector turns a sustained nonzero disk-drop rate into a
//! "writer falling behind" episode (one flight-recorder dump per
//! episode), so degradation is loud in telemetry while invisible to
//! capture.
//!
//! Conservation is exact by construction: every chunk the drainer
//! receives is either encoded (counted into `disk_written_packets`) or
//! dropped (counted into `disk_drop_packets`), including when the
//! writer dies on an I/O error mid-run — the writer then switches to a
//! drain-and-drop loop so `delivered == written + dropped` still holds
//! at exit.

use crate::format::FileFormat;
use crate::writer::{RotatingWriter, RotationPolicy};
use crossbeam::queue::ArrayQueue;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use wirecap::live::{ChunkLens, LiveChunk, LiveWireCap};

/// Chunks the writer drains from the handoff per commit batch.
const WRITE_BATCH_CHUNKS: usize = 8;

/// How a capture application consumes chunks: the choice the
/// `capture_and_save` harness exposes.
#[derive(Debug)]
pub enum SinkMode {
    /// Count packets and recycle — the pure capture benchmark.
    Count,
    /// Stream packets to rotating capture files via a [`DiskSink`].
    Disk(DiskSinkConfig),
}

/// Configuration for a [`DiskSink`].
#[derive(Debug, Clone)]
pub struct DiskSinkConfig {
    /// Output directory (created if missing).
    pub dir: PathBuf,
    /// Filename prefix; queue and sequence numbers are appended
    /// (`<prefix>-q<N>-<SEQ>.<ext>`).
    pub prefix: String,
    /// On-disk format.
    pub format: FileFormat,
    /// Per-packet snap length.
    pub snaplen: u32,
    /// File rotation policy.
    pub rotation: RotationPolicy,
    /// Capacity of the drainer→writer handoff ring, in chunks. When
    /// full, further chunks are dropped (disk leg only) and counted.
    pub handoff_chunks: usize,
    /// Artificial write-bandwidth ceiling, bytes/s. The writer sleeps
    /// after each commit to stay under it — the deterministic way to
    /// provoke the degradation path in tests and the loss-rate
    /// experiment. `None` writes at full speed.
    pub max_write_bps: Option<u64>,
}

impl DiskSinkConfig {
    /// Defaults: pcapng, 64 KiB snaplen, 1 GiB size rotation, a
    /// 64-chunk handoff, no throttle.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskSinkConfig {
            dir: dir.into(),
            prefix: "capture".to_string(),
            format: FileFormat::Pcapng,
            snaplen: 65_535,
            rotation: RotationPolicy::default(),
            handoff_chunks: 64,
            max_write_bps: None,
        }
    }
}

/// Per-queue outcome of a finished sink.
#[derive(Debug)]
pub struct QueueDiskReport {
    /// Queue index.
    pub queue: usize,
    /// Packets the drainer received from the engine.
    pub delivered_packets: u64,
    /// Packets encoded and handed to the OS.
    pub written_packets: u64,
    /// Packets dropped because the writer fell behind (or failed).
    pub dropped_packets: u64,
    /// File-format bytes written.
    pub written_bytes: u64,
    /// Capture files produced, in rotation order.
    pub files: Vec<PathBuf>,
    /// The writer's I/O error, if it failed mid-run.
    pub io_error: Option<String>,
}

/// Aggregate outcome of a finished sink.
#[derive(Debug)]
pub struct DiskReport {
    /// One report per queue.
    pub queues: Vec<QueueDiskReport>,
}

impl DiskReport {
    /// Total packets the drainers received.
    pub fn delivered_packets(&self) -> u64 {
        self.queues.iter().map(|q| q.delivered_packets).sum()
    }

    /// Total packets written.
    pub fn written_packets(&self) -> u64 {
        self.queues.iter().map(|q| q.written_packets).sum()
    }

    /// Total packets dropped by the disk leg.
    pub fn dropped_packets(&self) -> u64 {
        self.queues.iter().map(|q| q.dropped_packets).sum()
    }

    /// Total file-format bytes written.
    pub fn written_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.written_bytes).sum()
    }

    /// All capture files, queue-major.
    pub fn files(&self) -> Vec<PathBuf> {
        self.queues.iter().flat_map(|q| q.files.clone()).collect()
    }

    /// True when every delivered packet is accounted for:
    /// `delivered == written + dropped`, per queue.
    pub fn is_conserved(&self) -> bool {
        self.queues
            .iter()
            .all(|q| q.delivered_packets == q.written_packets + q.dropped_packets)
    }
}

struct DrainOutcome {
    delivered_packets: u64,
    dropped_packets: u64,
}

struct WriteOutcome {
    written_packets: u64,
    dropped_packets: u64,
    written_bytes: u64,
    files: Vec<PathBuf>,
    io_error: Option<String>,
}

/// A running capture-to-disk sink over every queue of a live engine.
///
/// Attach once after `LiveWireCap::builder().….start()`; the sink's
/// drainers become
/// the queues' consumers. Call [`DiskSink::wait`] after the NIC stops
/// (the capture streams must end for the drainers to exit) and before
/// `engine.shutdown()`.
#[derive(Debug)]
pub struct DiskSink {
    drainers: Vec<JoinHandle<DrainOutcome>>,
    writers: Vec<JoinHandle<WriteOutcome>>,
}

impl DiskSink {
    /// Spawns a drainer + writer pair for every queue of `engine`.
    ///
    /// # Errors
    /// Fails if the output directory cannot be created.
    pub fn attach(engine: &LiveWireCap, cfg: &DiskSinkConfig) -> io::Result<DiskSink> {
        std::fs::create_dir_all(&cfg.dir)?;
        let lens = engine.chunk_lens();
        let queues = lens.queues();
        // The return ring must absorb every chunk that can exist at
        // once. Offloading can route any queue's chunks to this
        // consumer, so the bound is all slots in the engine, not R.
        let return_capacity = queues * engine.config().r + 1;
        let mut drainers = Vec::with_capacity(queues);
        let mut writers = Vec::with_capacity(queues);
        for q in 0..queues {
            let handoff = Arc::new(ArrayQueue::<LiveChunk>::new(cfg.handoff_chunks.max(1)));
            let returns = Arc::new(ArrayQueue::<LiveChunk>::new(return_capacity));
            let done = Arc::new(AtomicBool::new(false));
            drainers.push(spawn_drainer(
                q,
                engine.consumer(q),
                lens.clone(),
                Arc::clone(&handoff),
                Arc::clone(&returns),
                Arc::clone(&done),
            ));
            writers.push(spawn_writer(q, cfg, lens.clone(), handoff, returns, done)?);
        }
        Ok(DiskSink { drainers, writers })
    }

    /// Joins every thread and reports. Returns only after the capture
    /// streams have ended (NIC stopped and rings drained).
    pub fn wait(self) -> DiskReport {
        let queues = self
            .drainers
            .into_iter()
            .zip(self.writers)
            .enumerate()
            .map(|(q, (d, w))| {
                let drain = d.join().expect("capdisk drainer panicked");
                let write = w.join().expect("capdisk writer panicked");
                QueueDiskReport {
                    queue: q,
                    delivered_packets: drain.delivered_packets,
                    written_packets: write.written_packets,
                    dropped_packets: drain.dropped_packets + write.dropped_packets,
                    written_bytes: write.written_bytes,
                    files: write.files,
                    io_error: write.io_error,
                }
            })
            .collect();
        DiskReport { queues }
    }
}

fn spawn_drainer(
    q: usize,
    mut consumer: wirecap::live::LiveConsumer,
    lens: ChunkLens,
    handoff: Arc<ArrayQueue<LiveChunk>>,
    returns: Arc<ArrayQueue<LiveChunk>>,
    done: Arc<AtomicBool>,
) -> JoinHandle<DrainOutcome> {
    std::thread::Builder::new()
        .name(format!("capdisk-drain-{q}"))
        .spawn(move || {
            use pcap::PacketSource as _;
            let mut delivered = 0u64;
            let mut dropped = 0u64;
            let mut handed = 0u64;
            let mut recycled = 0u64;
            loop {
                // Recycle whatever the writer has finished with first —
                // and keep doing it while idle, not just when a new
                // chunk arrives, or the returned slots sit here while
                // the capture pool starves.
                while let Some(back) = returns.pop() {
                    consumer.recycle(back);
                    recycled += 1;
                }
                let Some(mut chunk) = consumer.try_chunk() else {
                    if consumer.is_done() {
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                };
                delivered += chunk.len() as u64;
                // Span-sampled chunk: the push below transfers ownership
                // to the writer — the disk stage opens here and closes
                // at the write commit (see `spawn_writer`).
                if chunk.is_sampled() {
                    chunk.stamp_disk_handoff(telemetry::clock::mono_ns());
                }
                match handoff.push(chunk) {
                    Ok(()) => handed += 1,
                    Err(chunk) => {
                        // Writer is behind and the bounded handoff is
                        // full: shed this chunk from the disk leg,
                        // account it, recycle immediately. Capture
                        // never blocks on the disk.
                        let n = chunk.len() as u64;
                        dropped += n;
                        lens.disk(q).disk_drop_packets.add(n);
                        consumer.recycle(chunk);
                    }
                }
            }
            // Stream ended: let the writer finish, then recycle the
            // stragglers it hands back.
            done.store(true, Ordering::Release);
            while recycled < handed {
                match returns.pop() {
                    Some(back) => {
                        consumer.recycle(back);
                        recycled += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
            DrainOutcome {
                delivered_packets: delivered,
                dropped_packets: dropped,
            }
        })
        .expect("spawning capdisk drainer")
}

fn spawn_writer(
    q: usize,
    cfg: &DiskSinkConfig,
    lens: ChunkLens,
    handoff: Arc<ArrayQueue<LiveChunk>>,
    returns: Arc<ArrayQueue<LiveChunk>>,
    done: Arc<AtomicBool>,
) -> io::Result<JoinHandle<WriteOutcome>> {
    let mut writer = RotatingWriter::new(
        &cfg.dir,
        &format!("{}-q{q}", cfg.prefix),
        cfg.format,
        cfg.snaplen,
        cfg.rotation,
    )?;
    let max_write_bps = cfg.max_write_bps;
    Ok(std::thread::Builder::new()
        .name(format!("capdisk-write-{q}"))
        .spawn(move || {
            let disk = lens.disk(q);
            let mut files_accounted = 0usize;
            let mut dropped = 0u64;
            let mut io_error: Option<io::Error> = None;
            // Chunks popped this round, held until after the commit so
            // sampled ones can be stamped with the write instant (the
            // batch is bounded by WRITE_BATCH_CHUNKS, so holding them
            // delays recycling by at most one commit).
            let mut batch: Vec<LiveChunk> = Vec::with_capacity(WRITE_BATCH_CHUNKS);
            loop {
                let mut batch_packets = 0u64;
                while batch.len() < WRITE_BATCH_CHUNKS {
                    let Some(chunk) = handoff.pop() else { break };
                    if io_error.is_none() {
                        // Zero-copy encode: the view borrows the chunk,
                        // which stays with this thread until pushed
                        // back for recycling.
                        for p in lens.view(&chunk).iter() {
                            writer.push_packet(p.ts_ns, p.wire_len, p.data);
                            batch_packets += 1;
                        }
                    } else {
                        // Writer failed: keep draining so the capture
                        // side stays healthy, but account the packets
                        // as disk drops.
                        let n = chunk.len() as u64;
                        dropped += n;
                        disk.disk_drop_packets.add(n);
                    }
                    batch.push(chunk);
                }
                let popped = batch.len();
                if batch_packets > 0 {
                    match writer.commit_batch() {
                        Ok(bytes) => {
                            disk.disk_written_packets.add(batch_packets);
                            disk.disk_written_bytes.add(bytes);
                            let opened = writer.files().len();
                            if opened > files_accounted {
                                disk.disk_files.add((opened - files_accounted) as u64);
                                files_accounted = opened;
                            }
                            throttle(bytes, max_write_bps);
                        }
                        Err(e) => {
                            // The staged packets never reached the OS:
                            // reclassify them as drops and degrade to
                            // drain-only mode.
                            dropped += batch_packets;
                            disk.disk_drop_packets.add(batch_packets);
                            io_error = Some(e);
                        }
                    }
                }
                // Close the disk stage on sampled chunks (one lazy
                // clock read per batch; this thread is the disk
                // shard's single histogram writer) and hand everything
                // back for recycling.
                let mut commit_ns = 0u64;
                for mut chunk in batch.drain(..) {
                    if chunk.is_sampled() {
                        if commit_ns == 0 {
                            commit_ns = telemetry::clock::mono_ns();
                        }
                        if let Some(stage_ns) = chunk.stamp_disk_write(commit_ns) {
                            disk.stage_disk_ns.record(stage_ns);
                        }
                    }
                    let mut back = chunk;
                    // The return ring is sized for every slot in the
                    // engine, so this succeeds; spin defensively.
                    while let Err(c) = returns.push(back) {
                        back = c;
                        std::thread::yield_now();
                    }
                }
                if popped == 0 && batch_packets == 0 {
                    if done.load(Ordering::Acquire) && handoff.is_empty() {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            if io_error.is_none() {
                if let Err(e) = writer.finish() {
                    io_error = Some(e);
                }
                let opened = writer.files().len();
                if opened > files_accounted {
                    disk.disk_files.add((opened - files_accounted) as u64);
                }
            }
            WriteOutcome {
                written_packets: writer.written_packets(),
                dropped_packets: dropped,
                written_bytes: writer.written_bytes(),
                files: writer.files().to_vec(),
                io_error: io_error.map(|e| e.to_string()),
            }
        })
        .expect("spawning capdisk writer"))
}

/// Sleeps long enough that `bytes` at `max_write_bps` has "taken" the
/// right wall time — the deterministic slow-disk emulation.
fn throttle(bytes: u64, max_write_bps: Option<u64>) {
    if let Some(bps) = max_write_bps {
        if bps > 0 && bytes > 0 {
            let nanos = bytes.saturating_mul(1_000_000_000) / bps;
            std::thread::sleep(Duration::from_nanos(nanos));
        }
    }
}
