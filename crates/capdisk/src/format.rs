//! Capture-file block encoders: classic pcap and pcapng.
//!
//! Both formats are encoded by *appending to a caller-owned byte
//! buffer* rather than writing records to an `io::Write` — the disk
//! sink's whole point is one `write` syscall per chunk batch, so the
//! encoders never touch the file themselves. The
//! [`crate::writer::RotatingWriter`] owns the buffer discipline.
//!
//! The pcapng leg emits the minimal conforming block sequence — one
//! Section Header Block, one Interface Description Block carrying
//! `if_tsresol = 9` (nanosecond timestamps, matching the engine's
//! nanosecond clock), then Enhanced Packet Blocks — and ships its own
//! strict reader so tests can verify files without external tools. The
//! classic pcap leg reuses the layout of [`pcap::savefile`]
//! byte-for-byte (nanosecond magic), so files parse with the existing
//! reader.

use bytes::Bytes;
use netproto::Packet;

/// On-disk capture file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FileFormat {
    /// pcapng (SHB + IDB + EPBs, nanosecond `if_tsresol`). The default:
    /// it is what modern capture tools emit and the only one of the two
    /// formats that can carry per-section metadata.
    #[default]
    Pcapng,
    /// Classic libpcap savefile, nanosecond magic `0xa1b23c4d`.
    Pcap,
}

impl FileFormat {
    /// Conventional filename extension.
    pub fn extension(self) -> &'static str {
        match self {
            FileFormat::Pcapng => "pcapng",
            FileFormat::Pcap => "pcap",
        }
    }

    /// Appends the file-level preamble (everything before the first
    /// packet record) to `buf`.
    pub fn encode_header(self, buf: &mut Vec<u8>, snaplen: u32) {
        match self {
            FileFormat::Pcapng => {
                pcapng_section_header(buf);
                pcapng_interface_block(buf, snaplen);
            }
            FileFormat::Pcap => pcap_file_header(buf, snaplen),
        }
    }

    /// Appends one packet record to `buf`, truncating payload to
    /// `snaplen` while preserving the original wire length.
    pub fn encode_packet(
        self,
        buf: &mut Vec<u8>,
        ts_ns: u64,
        wire_len: u32,
        data: &[u8],
        snaplen: u32,
    ) {
        match self {
            FileFormat::Pcapng => pcapng_packet_block(buf, ts_ns, wire_len, data, snaplen),
            FileFormat::Pcap => pcap_record(buf, ts_ns, wire_len, data, snaplen),
        }
    }
}

// ---------------------------------------------------------------------
// Classic pcap (nanosecond precision, little-endian) — same layout as
// `pcap::savefile::write_file`.
// ---------------------------------------------------------------------

fn pcap_file_header(buf: &mut Vec<u8>, snaplen: u32) {
    buf.extend_from_slice(&pcap::savefile::MAGIC_NANOS.to_le_bytes());
    buf.extend_from_slice(&2u16.to_le_bytes()); // version major
    buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
    buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    buf.extend_from_slice(&snaplen.to_le_bytes());
    buf.extend_from_slice(&1u32.to_le_bytes()); // LINKTYPE_ETHERNET
}

/// Exact on-disk size of one classic-pcap record for a payload of
/// `data_len` bytes after snaplen truncation.
pub(crate) fn pcap_record_len(data_len: usize, snaplen: u32) -> usize {
    16 + data_len.min(snaplen as usize)
}

/// Encodes one classic-pcap record into `rec`, which must be exactly
/// [`pcap_record_len`] bytes — the cursor-buffer twin of
/// [`pcap_record`], mirroring [`EpbTemplate::encode_into`].
pub(crate) fn pcap_record_into(rec: &mut [u8], ts_ns: u64, wire_len: u32, data: &[u8]) {
    let incl = rec.len() - 16;
    rec[0..4].copy_from_slice(&((ts_ns / 1_000_000_000) as u32).to_le_bytes());
    rec[4..8].copy_from_slice(&((ts_ns % 1_000_000_000) as u32).to_le_bytes());
    rec[8..12].copy_from_slice(&(incl as u32).to_le_bytes());
    rec[12..16].copy_from_slice(&wire_len.to_le_bytes());
    rec[16..].copy_from_slice(&data[..incl]);
}

fn pcap_record(buf: &mut Vec<u8>, ts_ns: u64, wire_len: u32, data: &[u8], snaplen: u32) {
    let len = pcap_record_len(data.len(), snaplen);
    let base = buf.len();
    buf.resize(base + len, 0);
    pcap_record_into(&mut buf[base..], ts_ns, wire_len, data);
}

// ---------------------------------------------------------------------
// pcapng
// ---------------------------------------------------------------------

/// Section Header Block type.
pub const SHB_TYPE: u32 = 0x0A0D_0D0A;
/// Interface Description Block type.
pub const IDB_TYPE: u32 = 0x0000_0001;
/// Enhanced Packet Block type.
pub const EPB_TYPE: u32 = 0x0000_0006;
/// Byte-order magic inside the SHB.
pub const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

/// Appends a Section Header Block (version 1.0, unknown section
/// length).
pub fn pcapng_section_header(buf: &mut Vec<u8>) {
    let total: u32 = 28; // 4 type + 4 len + 4 magic + 2+2 version + 8 seclen + 4 len
    buf.extend_from_slice(&SHB_TYPE.to_le_bytes());
    buf.extend_from_slice(&total.to_le_bytes());
    buf.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
    buf.extend_from_slice(&1u16.to_le_bytes()); // major
    buf.extend_from_slice(&0u16.to_le_bytes()); // minor
    buf.extend_from_slice(&u64::MAX.to_le_bytes()); // section length unknown
    buf.extend_from_slice(&total.to_le_bytes());
}

/// Appends an Interface Description Block for Ethernet with
/// `if_tsresol = 9` (nanosecond timestamps).
pub fn pcapng_interface_block(buf: &mut Vec<u8>, snaplen: u32) {
    // Options: if_tsresol (code 9, len 1, value 9, 3 pad) then
    // opt_endofopt — 12 bytes total.
    let total: u32 = 4 + 4 + 2 + 2 + 4 + 12 + 4;
    buf.extend_from_slice(&IDB_TYPE.to_le_bytes());
    buf.extend_from_slice(&total.to_le_bytes());
    buf.extend_from_slice(&1u16.to_le_bytes()); // LINKTYPE_ETHERNET
    buf.extend_from_slice(&0u16.to_le_bytes()); // reserved
    buf.extend_from_slice(&snaplen.to_le_bytes());
    buf.extend_from_slice(&9u16.to_le_bytes()); // if_tsresol
    buf.extend_from_slice(&1u16.to_le_bytes()); // option length
    buf.extend_from_slice(&[9, 0, 0, 0]); // 10^-9 s + padding
    buf.extend_from_slice(&0u16.to_le_bytes()); // opt_endofopt
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&total.to_le_bytes());
}

/// A precomputed Enhanced Packet Block header for interface 0.
///
/// The 28-byte fixed head of an EPB changes in only five places per
/// packet — total length, the two timestamp halves, captured length
/// and wire length; the block type and interface id are constants of
/// the stream. A template copies the whole head in one `memcpy` and
/// patches those fields in place, instead of assembling the header
/// field by field with eight separate appends per packet as the
/// original encoder did. The disk-sink writer keeps one template per
/// writer thread (each queue's sink owns its own) and reuses it for
/// every packet of every batch.
#[derive(Debug, Clone, Copy)]
pub struct EpbTemplate {
    head: [u8; 28],
    snaplen: u32,
}

impl EpbTemplate {
    /// Builds a template that truncates payloads to `snaplen` while
    /// preserving the original wire length.
    pub fn new(snaplen: u32) -> Self {
        let mut head = [0u8; 28];
        head[0..4].copy_from_slice(&EPB_TYPE.to_le_bytes());
        // Bytes 4.. stay zero: the interface id (offset 8) really is 0,
        // and the per-packet fields are patched by `append`.
        EpbTemplate { head, snaplen }
    }

    /// Exact on-disk size of one EPB carrying a payload of `data_len`
    /// bytes (after snaplen truncation): fixed head, payload, pad to a
    /// 32-bit boundary, trailing total-length word.
    #[inline]
    pub fn encoded_len(&self, data_len: usize) -> usize {
        let incl = data_len.min(self.snaplen as usize);
        28 + incl + (4 - incl % 4) % 4 + 4
    }

    /// Encodes one Enhanced Packet Block into `rec`, which must be
    /// exactly [`EpbTemplate::encoded_len`] of `data.len()` bytes.
    ///
    /// This is the batch writers' hot path: the caller carves `rec`
    /// out of a pre-sized buffer with a cursor, so encoding a packet
    /// is pure slice stores — no `Vec` length/capacity machinery per
    /// packet. Byte-identical to [`pcapng_packet_block`] for the same
    /// arguments; the 64-bit timestamp is `ts_ns` verbatim (the IDB
    /// declared nanosecond resolution).
    #[inline]
    pub fn encode_into(&self, rec: &mut [u8], ts_ns: u64, wire_len: u32, data: &[u8]) {
        let incl = (data.len() as u32).min(self.snaplen) as usize;
        let pad = (4 - incl % 4) % 4;
        let total = (28 + incl + pad + 4) as u32;
        debug_assert_eq!(rec.len(), total as usize);
        rec[..28].copy_from_slice(&self.head);
        rec[4..8].copy_from_slice(&total.to_le_bytes());
        rec[12..16].copy_from_slice(&((ts_ns >> 32) as u32).to_le_bytes());
        rec[16..20].copy_from_slice(&(ts_ns as u32).to_le_bytes());
        rec[20..24].copy_from_slice(&(incl as u32).to_le_bytes());
        rec[24..28].copy_from_slice(&wire_len.to_le_bytes());
        rec[28..28 + incl].copy_from_slice(&data[..incl]);
        // Reused buffers are not pre-zeroed: the pad bytes are part of
        // the record and must be written like every other field.
        for b in &mut rec[28 + incl..28 + incl + pad] {
            *b = 0;
        }
        rec[28 + incl + pad..].copy_from_slice(&total.to_le_bytes());
    }

    /// Appends one Enhanced Packet Block to a `Vec` — the one-shot
    /// convenience over [`EpbTemplate::encode_into`].
    #[inline]
    pub fn append(&self, buf: &mut Vec<u8>, ts_ns: u64, wire_len: u32, data: &[u8]) {
        let len = self.encoded_len(data.len());
        let base = buf.len();
        buf.resize(base + len, 0);
        self.encode_into(&mut buf[base..], ts_ns, wire_len, data);
    }
}

/// Appends an Enhanced Packet Block for interface 0. The 64-bit
/// timestamp is `ts_ns` verbatim (the IDB declared nanosecond
/// resolution). One-shot convenience over [`EpbTemplate`]; batch
/// encoders should hold a template instead.
pub fn pcapng_packet_block(
    buf: &mut Vec<u8>,
    ts_ns: u64,
    wire_len: u32,
    data: &[u8],
    snaplen: u32,
) {
    EpbTemplate::new(snaplen).append(buf, ts_ns, wire_len, data);
}

/// A parsed pcapng file (the subset this crate writes).
#[derive(Debug)]
pub struct PcapngFile {
    /// Snap length declared by the interface block.
    pub snaplen: u32,
    /// Timestamp resolution exponent (9 = nanoseconds).
    pub tsresol: u8,
    /// The packets, timestamps normalized to nanoseconds.
    pub packets: Vec<Packet>,
}

/// Parses a little-endian pcapng byte stream strictly: every block's
/// leading and trailing lengths must agree, the first block must be an
/// SHB, and packets must follow an IDB. Unknown block types are
/// skipped (per the spec), so files from other writers still parse as
/// long as they are little-endian.
///
/// # Errors
/// Returns a description of the first structural violation.
pub fn read_pcapng(bytes: &[u8]) -> Result<PcapngFile, String> {
    let u32_at = |off: usize| -> Result<u32, String> {
        bytes
            .get(off..off + 4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .ok_or_else(|| format!("truncated at byte {off}"))
    };
    let mut off = 0usize;
    let mut snaplen = 0u32;
    let mut tsresol = 6u8; // pcapng default: microseconds
    let mut saw_shb = false;
    let mut saw_idb = false;
    let mut packets = Vec::new();
    while off < bytes.len() {
        let btype = u32_at(off)?;
        let blen = u32_at(off + 4)? as usize;
        if blen < 12 || !blen.is_multiple_of(4) {
            return Err(format!("block at {off}: bad length {blen}"));
        }
        if off + blen > bytes.len() {
            return Err(format!("block at {off}: length {blen} overruns file"));
        }
        let trailer = u32_at(off + blen - 4)? as usize;
        if trailer != blen {
            return Err(format!(
                "block at {off}: trailing length {trailer} != leading {blen}"
            ));
        }
        let body = &bytes[off + 8..off + blen - 4];
        match btype {
            SHB_TYPE => {
                if body.len() < 16 {
                    return Err("SHB too short".into());
                }
                let magic = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
                if magic != BYTE_ORDER_MAGIC {
                    return Err(format!("SHB byte-order magic {magic:#010x}"));
                }
                saw_shb = true;
            }
            IDB_TYPE => {
                if !saw_shb {
                    return Err("IDB before SHB".into());
                }
                if body.len() < 8 {
                    return Err("IDB too short".into());
                }
                snaplen = u32::from_le_bytes([body[4], body[5], body[6], body[7]]);
                // Walk options for if_tsresol.
                let mut opt = 8usize;
                while opt + 4 <= body.len() {
                    let code = u16::from_le_bytes([body[opt], body[opt + 1]]);
                    let olen = u16::from_le_bytes([body[opt + 2], body[opt + 3]]) as usize;
                    if code == 0 {
                        break;
                    }
                    if code == 9 && olen == 1 {
                        tsresol = body[opt + 4];
                    }
                    opt += 4 + olen + (4 - olen % 4) % 4;
                }
                saw_idb = true;
            }
            EPB_TYPE => {
                if !saw_idb {
                    return Err("EPB before IDB".into());
                }
                if body.len() < 20 {
                    return Err("EPB too short".into());
                }
                let ts_high = u32::from_le_bytes([body[4], body[5], body[6], body[7]]);
                let ts_low = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
                let incl = u32::from_le_bytes([body[12], body[13], body[14], body[15]]) as usize;
                let orig = u32::from_le_bytes([body[16], body[17], body[18], body[19]]);
                if 20 + incl > body.len() {
                    return Err(format!(
                        "EPB at {off}: captured length {incl} overruns block"
                    ));
                }
                let ticks = (u64::from(ts_high) << 32) | u64::from(ts_low);
                let ts_ns = match tsresol {
                    9 => ticks,
                    6 => ticks.saturating_mul(1_000),
                    r => return Err(format!("unsupported if_tsresol {r}")),
                };
                packets.push(Packet {
                    ts_ns,
                    wire_len: orig,
                    data: Bytes::copy_from_slice(&body[20..20 + incl]),
                });
            }
            _ => {} // unknown block: skip
        }
        off += blen;
    }
    if !saw_shb {
        return Err("no section header block".into());
    }
    Ok(PcapngFile {
        snaplen,
        tsresol,
        packets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Packet> {
        vec![
            Packet::new(0, vec![0xaa; 60]),
            Packet::new(1_500_000_123, vec![0xbb; 61]), // odd length: exercises padding
            Packet::new(u64::from(u32::MAX) + 7, vec![0xcc; 1500]), // ts_high != 0
        ]
    }

    #[test]
    fn pcapng_roundtrip_preserves_packets_and_nanoseconds() {
        let mut buf = Vec::new();
        FileFormat::Pcapng.encode_header(&mut buf, 65_535);
        for p in sample() {
            FileFormat::Pcapng.encode_packet(&mut buf, p.ts_ns, p.wire_len, &p.data, 65_535);
        }
        let f = read_pcapng(&buf).unwrap();
        assert_eq!(f.snaplen, 65_535);
        assert_eq!(f.tsresol, 9);
        assert_eq!(f.packets, sample());
    }

    #[test]
    fn golden_pcapng_header_bytes() {
        // Byte-for-byte golden of the SHB + IDB preamble: 28-byte SHB
        // (version 1.0, unknown section length) then a 32-byte IDB
        // (Ethernet, if_tsresol = 9). Any change to this layout is a
        // file-format break and must be deliberate.
        let mut buf = Vec::new();
        FileFormat::Pcapng.encode_header(&mut buf, 65_535);
        #[rustfmt::skip]
        let golden: [u8; 60] = [
            // SHB
            0x0a, 0x0d, 0x0d, 0x0a, // block type
            0x1c, 0x00, 0x00, 0x00, // total length = 28
            0x4d, 0x3c, 0x2b, 0x1a, // byte-order magic
            0x01, 0x00, 0x00, 0x00, // version 1.0
            0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // section length unknown
            0x1c, 0x00, 0x00, 0x00, // total length = 28
            // IDB
            0x01, 0x00, 0x00, 0x00, // block type
            0x20, 0x00, 0x00, 0x00, // total length = 32
            0x01, 0x00, 0x00, 0x00, // LINKTYPE_ETHERNET + reserved
            0xff, 0xff, 0x00, 0x00, // snaplen = 65535
            0x09, 0x00, 0x01, 0x00, // if_tsresol option header
            0x09, 0x00, 0x00, 0x00, // value 9 (nanoseconds) + padding
            0x00, 0x00, 0x00, 0x00, // opt_endofopt
            0x20, 0x00, 0x00, 0x00, // total length = 32
        ];
        assert_eq!(buf, golden);
    }

    #[test]
    fn pcapng_snaplen_truncates_but_keeps_wire_len() {
        let mut buf = Vec::new();
        FileFormat::Pcapng.encode_header(&mut buf, 96);
        FileFormat::Pcapng.encode_packet(&mut buf, 5, 1500, &[7u8; 1500], 96);
        let f = read_pcapng(&buf).unwrap();
        assert_eq!(f.packets[0].data.len(), 96);
        assert_eq!(f.packets[0].wire_len, 1500);
    }

    #[test]
    fn pcapng_blocks_are_4_byte_aligned() {
        for len in [0usize, 1, 2, 3, 4, 61, 1499] {
            let mut buf = Vec::new();
            pcapng_packet_block(&mut buf, 1, len as u32, &vec![1u8; len], 65_535);
            assert_eq!(buf.len() % 4, 0, "payload length {len}");
            let declared = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
            assert_eq!(declared, buf.len(), "payload length {len}");
        }
    }

    #[test]
    fn epb_template_matches_field_by_field_encoding() {
        // Reference encoder: the original field-by-field EPB assembly.
        // The template must produce the same bytes for every payload
        // length class (aligned, padded, truncated) and for timestamps
        // with a non-zero high half.
        fn reference(buf: &mut Vec<u8>, ts_ns: u64, wire_len: u32, data: &[u8], snaplen: u32) {
            let incl = (data.len() as u32).min(snaplen);
            let pad = (4 - (incl as usize % 4)) % 4;
            let total: u32 = 28 + incl + pad as u32 + 4;
            buf.extend_from_slice(&EPB_TYPE.to_le_bytes());
            buf.extend_from_slice(&total.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&((ts_ns >> 32) as u32).to_le_bytes());
            buf.extend_from_slice(&(ts_ns as u32).to_le_bytes());
            buf.extend_from_slice(&incl.to_le_bytes());
            buf.extend_from_slice(&wire_len.to_le_bytes());
            buf.extend_from_slice(&data[..incl as usize]);
            buf.extend_from_slice(&[0u8; 3][..pad]);
            buf.extend_from_slice(&total.to_le_bytes());
        }
        for snaplen in [65_535u32, 96] {
            let tmpl = EpbTemplate::new(snaplen);
            let mut got = Vec::new();
            let mut want = Vec::new();
            for (i, len) in [0usize, 1, 2, 3, 4, 60, 61, 96, 97, 1500]
                .iter()
                .enumerate()
            {
                let data = vec![i as u8; *len];
                let ts = (u64::from(u32::MAX) + 1) * (i as u64 % 2) + i as u64 * 1_003;
                tmpl.append(&mut got, ts, *len as u32 + 4, &data);
                reference(&mut want, ts, *len as u32 + 4, &data, snaplen);
            }
            assert_eq!(got, want, "snaplen {snaplen}");
        }
    }

    #[test]
    fn pcap_leg_parses_with_the_savefile_reader() {
        let mut buf = Vec::new();
        FileFormat::Pcap.encode_header(&mut buf, 65_535);
        for p in sample() {
            FileFormat::Pcap.encode_packet(&mut buf, p.ts_ns, p.wire_len, &p.data, 65_535);
        }
        let sf = pcap::savefile::read_file(&buf[..]).unwrap();
        assert_eq!(sf.precision, pcap::savefile::Precision::Nanos);
        assert_eq!(sf.packets, sample());
    }

    #[test]
    fn reader_rejects_structural_corruption() {
        let mut buf = Vec::new();
        FileFormat::Pcapng.encode_header(&mut buf, 65_535);
        // Mismatched trailer.
        let n = buf.len();
        buf[n - 1] ^= 0xff;
        assert!(read_pcapng(&buf).unwrap_err().contains("trailing length"));
        // EPB with no preceding section.
        let mut orphan = Vec::new();
        pcapng_packet_block(&mut orphan, 0, 4, &[1, 2, 3, 4], 65_535);
        assert!(read_pcapng(&orphan).is_err());
    }

    #[test]
    fn reader_skips_unknown_blocks() {
        let mut buf = Vec::new();
        FileFormat::Pcapng.encode_header(&mut buf, 65_535);
        // A custom block (type 0x0BAD) between header and packet.
        buf.extend_from_slice(&0x0BADu32.to_le_bytes());
        buf.extend_from_slice(&16u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        buf.extend_from_slice(&16u32.to_le_bytes());
        FileFormat::Pcapng.encode_packet(&mut buf, 9, 4, &[1, 2, 3, 4], 65_535);
        let f = read_pcapng(&buf).unwrap();
        assert_eq!(f.packets.len(), 1);
        assert_eq!(f.packets[0].ts_ns, 9);
    }
}
