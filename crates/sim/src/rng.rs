//! Seedable deterministic random numbers and workload distributions.
//!
//! A tiny PCG32 implementation (O'Neill's `pcg32_oneseq`) keeps every
//! simulation a pure function of its seed, independent of external crate
//! version bumps. The distribution helpers are the ones the synthetic
//! border-router trace needs: uniform ranges, exponential inter-arrivals
//! and bounded-Pareto flow sizes (heavy tails are what create the paper's
//! long-term load imbalance).

/// PCG32 (XSH-RR variant) pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seeded(seed: u64) -> Self {
        Self::new(seed, 0xda3e39cb94b95bdb)
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform in `[0, 1)` with 32 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        f64::from(self.next_u32()) / (u32::MAX as f64 + 1.0)
    }

    /// Uniform integer in `[0, bound)` using Lemire-style rejection to
    /// avoid modulo bias.
    pub fn gen_range_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = u64::from(r) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        let span = hi - lo;
        if span <= u64::from(u32::MAX) {
            lo + u64::from(self.gen_range_u32(span as u32))
        } else {
            // Rare path for huge spans: 64-bit rejection sampling.
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let r = self.next_u64();
                if r <= zone {
                    return lo + (r % span);
                }
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.next_f64(); // avoid ln(0)
        -mean * u.ln()
    }

    /// Bounded Pareto with shape `alpha` on `[lo, hi]` (inverse-CDF
    /// sampling). Heavy-tailed for `alpha` near 1.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.next_f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Picks an index according to non-negative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Pcg32::seeded(42);
        let mut b = Pcg32::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::seeded(1);
        let mut b = Pcg32::seeded(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Pcg32::seeded(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut r = Pcg32::seeded(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exp_mean_matches() {
        let mut r = Pcg32::seeded(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut r = Pcg32::seeded(13);
        for _ in 0..10_000 {
            let v = r.bounded_pareto(1.2, 2.0, 1e6);
            assert!((2.0..=1e6).contains(&v), "v={v}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // With alpha=1.2, the top 1% of samples should dominate far more
        // than under a uniform distribution.
        let mut r = Pcg32::seeded(17);
        let mut v: Vec<f64> = (0..100_000)
            .map(|_| r.bounded_pareto(1.2, 2.0, 1e6))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let total: f64 = v.iter().sum();
        let top1: f64 = v[99_000..].iter().sum();
        assert!(top1 / total > 0.2, "top-1% share = {}", top1 / total);
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = Pcg32::seeded(19);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::seeded(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
