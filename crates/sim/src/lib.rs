//! # sim — deterministic discrete-event simulation kernel
//!
//! All figures and tables in this reproduction are generated on a simulated
//! timeline so they are exactly reproducible. This crate provides the
//! building blocks shared by the NIC model, the capture-engine models and
//! the experiment harness:
//!
//! * [`time`] — nanosecond-resolution virtual time ([`time::SimTime`]) and
//!   rate conversions;
//! * [`event`] — a deterministic event queue (FIFO tie-breaking at equal
//!   timestamps);
//! * [`rng`] — a seedable PCG32 generator plus the distributions used by
//!   the synthetic workloads (uniform, exponential, bounded Pareto);
//! * [`fluid`] — fluid-flow service processes: a deterministic-rate server
//!   with exact integration between events (the paper itself reduces the
//!   packet-processing application to a service rate, §2.2);
//! * [`cpu`] — the calibrated CPU model mapping the paper's `pkt_handler`
//!   parameter *x* (BPF applications per packet) and CPU frequency to a
//!   packet-processing rate: x = 300 at 2.4 GHz ⇒ 38 844 p/s (§2.2);
//! * [`bus`] — a shared-capacity system-bus model reproducing the PCIe
//!   saturation effects of Fig. 14;
//! * [`stats`] — drop accounting (capture vs. delivery drops), binned time
//!   series and summary helpers.
//!
//! Nothing in this crate reads wall-clock time or ambient randomness; every
//! simulation is a pure function of its configuration and seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod cpu;
pub mod event;
pub mod fluid;
pub mod rng;
pub mod stats;
pub mod time;

pub use bus::SharedBus;
pub use cpu::CpuModel;
pub use event::EventQueue;
pub use fluid::FluidServer;
pub use rng::Pcg32;
pub use stats::{DropStats, TimeSeries};
pub use time::SimTime;
