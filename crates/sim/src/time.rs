//! Virtual time: nanosecond-resolution simulation timestamps.

use serde::{Deserialize, Serialize};

/// A point on the simulated timeline, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent `u64` newtype so it can be used as a map key
/// and compared cheaply; arithmetic helpers keep unit conversions in one
/// place.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// One microsecond in nanoseconds.
pub const MICROSECOND: u64 = 1_000;
/// One millisecond in nanoseconds.
pub const MILLISECOND: u64 = 1_000_000;
/// One second in nanoseconds.
pub const SECOND: u64 = 1_000_000_000;

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * SECOND)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * MILLISECOND)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * MICROSECOND)
    }

    /// Constructs from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from fractional seconds (rounds to the nearest ns).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * SECOND as f64).round() as u64)
    }

    /// This instant as nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Nanoseconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This instant advanced by `ns` nanoseconds.
    pub fn advanced(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl core::ops::Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Converts a packet rate (packets per second) to an inter-arrival gap in
/// nanoseconds, rounding to the nearest nanosecond.
pub fn gap_ns_for_rate(pps: f64) -> u64 {
    assert!(pps > 0.0, "rate must be positive");
    (SECOND as f64 / pps).round().max(1.0) as u64
}

/// The 10 GbE wire packet rate for a given frame size in bytes.
///
/// `frame_len` follows the Ethernet convention of *including* the 4-byte
/// FCS (a "64-byte packet" is the minimum legal frame); the 20 bytes of
/// preamble + inter-frame gap are added on top. For 64-byte frames this
/// yields the paper's 14.88 Mp/s.
pub fn wire_rate_pps(frame_len: usize, link_gbps: f64) -> f64 {
    let on_wire_bits = ((frame_len + 20) * 8) as f64;
    link_gbps * 1e9 / on_wire_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * SECOND);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5 * MILLISECOND);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7 * MICROSECOND);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), 0);
        assert_eq!(SimTime(10).since(SimTime(4)), 6);
    }

    #[test]
    fn wire_rate_matches_paper_64b() {
        // The paper's canonical number: 14.88 Mp/s for 64-byte frames at 10 GbE.
        let pps = wire_rate_pps(64, 10.0);
        assert!((pps - 14_880_952.0).abs() < 1_000.0, "got {pps}");
    }

    #[test]
    fn wire_rate_100b() {
        // 100-byte frames: 10e9 / (120 * 8) ≈ 10.42 Mp/s; two NICs ≈ 20 Mp/s
        // as the paper states in the scalability experiment.
        let pps = wire_rate_pps(100, 10.0);
        assert!((pps - 10_416_667.0).abs() < 1_000.0, "got {pps}");
    }

    #[test]
    fn gap_for_rate_roundtrip() {
        let gap = gap_ns_for_rate(1_000_000.0);
        assert_eq!(gap, 1_000);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn gap_rejects_zero_rate() {
        gap_ns_for_rate(0.0);
    }
}
