//! Shared system-bus (PCIe/memory) saturation model.
//!
//! Fig. 14 of the paper shows that with two NICs receiving **and**
//! forwarding 64-byte packets (~30 Mp/s aggregate) the system bus
//! saturates, and that WireCAP — which spends extra I/O operations and
//! memory accesses on its ring-buffer-pool and offloading mechanisms —
//! then drops more than DNA, while at 100-byte packets (~20 Mp/s) neither
//! engine drops. The limiting resource is per-packet bus *transactions*
//! (descriptor fetches, write-backs, doorbells), not raw link bytes, which
//! is why fewer, larger packets survive.
//!
//! [`SharedBus`] is a fluid model of that resource: components register
//! per-packet demand (payload bytes plus a per-transaction overhead), and
//! when aggregate demand exceeds capacity every component is served
//! proportionally — the shortfall appears as capture drops at the NIC.

use serde::{Deserialize, Serialize};

/// Per-packet bus overhead (descriptor fetch + write-back + doorbell),
/// in equivalent bytes, for a minimal zero-copy engine such as DNA.
pub const BASE_PKT_OVERHEAD: f64 = 64.0;

/// A shared-capacity bus.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SharedBus {
    /// Usable capacity in bytes per second (effective, not theoretical
    /// PCIe bandwidth — small-packet transaction overheads are folded into
    /// the per-packet demand instead).
    pub capacity_bps: f64,
}

impl SharedBus {
    /// Creates a bus with the given usable capacity (bytes/s).
    pub fn new(capacity_bps: f64) -> Self {
        assert!(capacity_bps > 0.0);
        SharedBus { capacity_bps }
    }

    /// The calibrated experiment-system bus: a PCIe-Gen3 x8 slot pair on
    /// one NUMA node. Usable capacity is set so that the Fig. 14 operating
    /// points reproduce: two NICs of 100-byte packets, received and
    /// forwarded, fit (≈ 6.6 GB/s demand with base overheads), while
    /// 64-byte packets at wire rate (≈ 7.6 GB/s) do not.
    pub fn experiment_system() -> Self {
        SharedBus::new(7.0e9)
    }

    /// Fraction of offered demand that is served: `min(1, capacity/demand)`.
    pub fn served_fraction(&self, demand_bps: f64) -> f64 {
        if demand_bps <= self.capacity_bps {
            1.0
        } else {
            self.capacity_bps / demand_bps
        }
    }

    /// Fraction of offered demand that is lost to saturation.
    pub fn loss_fraction(&self, demand_bps: f64) -> f64 {
        1.0 - self.served_fraction(demand_bps)
    }

    /// Bus utilization for a given demand (can exceed 1 when oversubscribed).
    pub fn utilization(&self, demand_bps: f64) -> f64 {
        demand_bps / self.capacity_bps
    }
}

/// Accumulates per-component bus demand for one experiment configuration.
#[derive(Debug, Default, Clone)]
pub struct DemandLedger {
    entries: Vec<(String, f64)>,
}

impl DemandLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a demand source. `pps` packets/s, each costing
    /// `bytes_per_packet` bus bytes.
    pub fn add(&mut self, label: impl Into<String>, pps: f64, bytes_per_packet: f64) {
        self.entries.push((label.into(), pps * bytes_per_packet));
    }

    /// Total demand in bytes/s.
    pub fn total_bps(&self) -> f64 {
        self.entries.iter().map(|(_, d)| d).sum()
    }

    /// Per-entry view (label, bytes/s).
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_capacity_serves_everything() {
        let bus = SharedBus::new(1e9);
        assert_eq!(bus.served_fraction(0.5e9), 1.0);
        assert_eq!(bus.loss_fraction(0.5e9), 0.0);
    }

    #[test]
    fn over_capacity_is_proportional() {
        let bus = SharedBus::new(1e9);
        assert!((bus.served_fraction(2e9) - 0.5).abs() < 1e-12);
        assert!((bus.loss_fraction(4e9) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_reports_oversubscription() {
        let bus = SharedBus::new(2e9);
        assert!((bus.utilization(3e9) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn experiment_system_separates_fig14_operating_points() {
        // 2 NICs × 100-byte frames, RX + TX with DNA-level overhead: fits.
        let bus = SharedBus::experiment_system();
        let pps_100 = crate::time::wire_rate_pps(100, 10.0) * 2.0;
        let demand_100 = pps_100 * (100.0 + BASE_PKT_OVERHEAD) * 2.0;
        assert_eq!(bus.served_fraction(demand_100), 1.0);

        // 2 NICs × 64-byte frames, RX + TX: saturates.
        let pps_64 = crate::time::wire_rate_pps(64, 10.0) * 2.0;
        let demand_64 = pps_64 * (64.0 + BASE_PKT_OVERHEAD) * 2.0;
        assert!(bus.served_fraction(demand_64) < 1.0);
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = DemandLedger::new();
        l.add("nic1-rx", 1e6, 128.0);
        l.add("nic1-tx", 1e6, 128.0);
        assert!((l.total_bps() - 2.56e8).abs() < 1.0);
        assert_eq!(l.entries().len(), 2);
    }
}
