//! Calibrated CPU model for the paper's `pkt_handler` application.
//!
//! §2.2 of the paper: `pkt_handler` captures a packet and applies a BPF
//! filter *x* times before discarding it. The paper reports that with
//! x = 300 a single 2.4 GHz core processes **38 844 p/s**. We model the
//! per-packet cost as `base + x·filter` CPU cycles and calibrate `filter`
//! against that number. The base cost is chosen so that x = 0 processes
//! well above 10 GbE wire rate (the paper observes no drops at x = 0 for
//! the zero-copy engines, so the x = 0 path must not be the bottleneck).

use serde::{Deserialize, Serialize};

/// Per-packet base cost in cycles (capture-side bookkeeping).
pub const BASE_CYCLES: f64 = 100.0;

/// Cycles consumed by one BPF filter application, calibrated so that
/// x = 300 at 2.4 GHz yields the paper's 38 844 p/s.
pub const FILTER_CYCLES: f64 = (2.4e9 / 38_844.0 - BASE_CYCLES) / 300.0;

/// The paper's measured `pkt_handler` rate at x = 300 on a 2.4 GHz core.
pub const PAPER_RATE_X300: f64 = 38_844.0;

/// A CPU core model: frequency plus the `pkt_handler` cost calibration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CpuModel {
    /// Core frequency in GHz (the paper pins cores at 2.4 GHz).
    pub freq_ghz: f64,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel { freq_ghz: 2.4 }
    }
}

impl CpuModel {
    /// Creates a model at the given frequency.
    pub fn new(freq_ghz: f64) -> Self {
        assert!(freq_ghz > 0.0);
        CpuModel { freq_ghz }
    }

    /// Packet-processing rate (packets/s) of `pkt_handler` with the given
    /// BPF repetition count `x`.
    pub fn pkt_handler_rate(&self, x: u32) -> f64 {
        let cycles = BASE_CYCLES + f64::from(x) * FILTER_CYCLES;
        self.freq_ghz * 1e9 / cycles
    }

    /// Per-packet processing time in nanoseconds for the given `x`.
    pub fn pkt_handler_ns(&self, x: u32) -> f64 {
        1e9 / self.pkt_handler_rate(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x300_matches_paper() {
        let m = CpuModel::default();
        let r = m.pkt_handler_rate(300);
        assert!((r - PAPER_RATE_X300).abs() < 1.0, "rate = {r}");
    }

    #[test]
    fn x0_exceeds_wire_rate() {
        let m = CpuModel::default();
        assert!(m.pkt_handler_rate(0) > crate::time::wire_rate_pps(64, 10.0));
    }

    #[test]
    fn rate_scales_with_frequency() {
        let slow = CpuModel::new(1.2);
        let fast = CpuModel::new(2.4);
        let ratio = fast.pkt_handler_rate(300) / slow.pkt_handler_rate(300);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rate_decreases_with_x() {
        let m = CpuModel::default();
        assert!(m.pkt_handler_rate(0) > m.pkt_handler_rate(100));
        assert!(m.pkt_handler_rate(100) > m.pkt_handler_rate(300));
    }

    #[test]
    fn ns_is_reciprocal_of_rate() {
        let m = CpuModel::default();
        let ns = m.pkt_handler_ns(300);
        assert!((ns - 1e9 / PAPER_RATE_X300).abs() < 1.0);
    }
}
