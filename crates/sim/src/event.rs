//! Deterministic event queue.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Rust's [`BinaryHeap`] is not stable for equal keys, so each event carries
/// a monotonically increasing sequence number: two events scheduled for the
/// same instant pop in the order they were pushed. This is what makes
/// multi-queue simulations reproducible run-to-run.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
