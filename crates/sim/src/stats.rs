//! Measurement plumbing: drop accounting, copy metering, binned series.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// End-to-end packet accounting for one engine/queue, split the way the
/// paper splits it (§1): *capture drops* (the engine could not take the
/// packet off the wire in time — no ready descriptor) versus *delivery
/// drops* (the packet was captured but the data-capture buffer overflowed
/// before the application consumed it).
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct DropStats {
    /// Packets offered to the engine by the wire.
    pub offered: u64,
    /// Packets successfully taken off the wire into engine buffers.
    pub captured: u64,
    /// Packets delivered to (consumed by) the application.
    pub delivered: u64,
    /// Packets lost because no receive descriptor was ready.
    pub capture_drops: u64,
    /// Packets lost in the engine's data-capture buffer.
    pub delivery_drops: u64,
}

impl DropStats {
    /// Capture-drop rate relative to offered traffic.
    pub fn capture_drop_rate(&self) -> f64 {
        ratio(self.capture_drops, self.offered)
    }

    /// Delivery-drop rate relative to offered traffic (the paper reports
    /// both rates against the full offered load, which is why a 0 %
    /// capture / 56.8 % delivery split is possible in Table 1).
    pub fn delivery_drop_rate(&self) -> f64 {
        ratio(self.delivery_drops, self.offered)
    }

    /// Overall drop rate: all losses over offered traffic.
    pub fn overall_drop_rate(&self) -> f64 {
        ratio(self.capture_drops + self.delivery_drops, self.offered)
    }

    /// Merges another accounting record into this one.
    pub fn merge(&mut self, other: &DropStats) {
        self.offered += other.offered;
        self.captured += other.captured;
        self.delivered += other.delivered;
        self.capture_drops += other.capture_drops;
        self.delivery_drops += other.delivery_drops;
    }

    /// Internal-consistency check: offered = captured + capture drops, and
    /// captured ≥ delivered + delivery drops (the difference is packets
    /// still buffered at the end of the run).
    pub fn is_consistent(&self) -> bool {
        self.offered == self.captured + self.capture_drops
            && self.captured >= self.delivered + self.delivery_drops
    }

    /// Packets still sitting in engine buffers (captured but neither
    /// delivered nor dropped).
    pub fn in_flight(&self) -> u64 {
        self.captured - self.delivered - self.delivery_drops
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Counts packet-byte copies on capture/delivery paths.
///
/// The paper's headline property is *zero-copy* capture and delivery; the
/// meter lets tests assert it: WireCAP's only copies are timeout-driven
/// partial-chunk copies, PF_RING copies every packet once.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct CopyMeter {
    /// Number of packets that crossed a copy.
    pub packets: u64,
    /// Total bytes copied.
    pub bytes: u64,
}

impl CopyMeter {
    /// Records a copy of `n` packets totalling `bytes` bytes.
    pub fn record(&mut self, n: u64, bytes: u64) {
        self.packets += n;
        self.bytes += bytes;
    }

    /// True if no copy was ever recorded.
    pub fn is_zero_copy(&self) -> bool {
        self.packets == 0
    }
}

/// A fixed-bin time series of event counts (e.g. packets per 10 ms bin —
/// the binning used by the paper's `queue_profiler` and Fig. 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_ns: u64,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    pub fn new(bin_ns: u64) -> Self {
        assert!(bin_ns > 0);
        TimeSeries {
            bin_ns,
            counts: Vec::new(),
        }
    }

    /// The paper's `queue_profiler` configuration: 10 ms bins.
    pub fn profiler_default() -> Self {
        TimeSeries::new(10 * crate::time::MILLISECOND)
    }

    /// Records one event at `t`.
    pub fn record(&mut self, t: SimTime) {
        self.record_n(t, 1);
    }

    /// Records `n` events at `t`.
    pub fn record_n(&mut self, t: SimTime, n: u64) {
        let bin = (t.as_nanos() / self.bin_ns) as usize;
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += n;
    }

    /// Bin width in nanoseconds.
    pub fn bin_ns(&self) -> u64 {
        self.bin_ns
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Largest bin count (peak burst).
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Mean events per bin over the observed span.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.counts.len() as f64
        }
    }

    /// (bin start seconds, count) rows for plotting.
    pub fn rows(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let bin_s = self.bin_ns as f64 / 1e9;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as f64 * bin_s, c))
    }

    /// Burstiness index: peak over mean. A Poisson-like stream stays near
    /// 1–3; the paper's border trace shows far higher values.
    pub fn burstiness(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.peak() as f64 / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MILLISECOND;

    #[test]
    fn drop_rates_divide_by_offered() {
        let s = DropStats {
            offered: 1000,
            captured: 800,
            delivered: 500,
            capture_drops: 200,
            delivery_drops: 300,
        };
        assert!((s.capture_drop_rate() - 0.2).abs() < 1e-12);
        assert!((s.delivery_drop_rate() - 0.3).abs() < 1e-12);
        assert!((s.overall_drop_rate() - 0.5).abs() < 1e-12);
        assert!(s.is_consistent());
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn inconsistent_stats_detected() {
        let s = DropStats {
            offered: 10,
            captured: 5,
            delivered: 9, // more delivered than captured
            capture_drops: 5,
            delivery_drops: 0,
        };
        assert!(!s.is_consistent());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = DropStats {
            offered: 10,
            captured: 8,
            delivered: 8,
            capture_drops: 2,
            delivery_drops: 0,
        };
        a.merge(&a.clone());
        assert_eq!(a.offered, 20);
        assert_eq!(a.captured, 16);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = DropStats::default();
        assert_eq!(s.overall_drop_rate(), 0.0);
        assert!(s.is_consistent());
    }

    #[test]
    fn copy_meter_tracks() {
        let mut m = CopyMeter::default();
        assert!(m.is_zero_copy());
        m.record(3, 192);
        assert!(!m.is_zero_copy());
        assert_eq!(m.packets, 3);
        assert_eq!(m.bytes, 192);
    }

    #[test]
    fn timeseries_bins_correctly() {
        let mut ts = TimeSeries::new(10 * MILLISECOND);
        ts.record(SimTime(0));
        ts.record(SimTime(9 * MILLISECOND));
        ts.record(SimTime(10 * MILLISECOND));
        ts.record_n(SimTime(25 * MILLISECOND), 5);
        assert_eq!(ts.counts(), &[2, 1, 5]);
        assert_eq!(ts.total(), 8);
        assert_eq!(ts.peak(), 5);
    }

    #[test]
    fn timeseries_rows_carry_bin_starts() {
        let mut ts = TimeSeries::new(10 * MILLISECOND);
        ts.record(SimTime(15 * MILLISECOND));
        let rows: Vec<_> = ts.rows().collect();
        assert_eq!(rows.len(), 2);
        assert!((rows[1].0 - 0.01).abs() < 1e-12);
        assert_eq!(rows[1].1, 1);
    }

    #[test]
    fn burstiness_of_flat_series_is_one() {
        let mut ts = TimeSeries::new(MILLISECOND);
        for i in 0..100 {
            ts.record_n(SimTime(i * MILLISECOND), 7);
        }
        assert!((ts.burstiness() - 1.0).abs() < 1e-12);
    }
}

/// Log-bucketed latency statistics (nanosecond samples).
///
/// The paper's §5c discussion: batch processing "may entail side effects,
/// such as latency increases and inaccurate time-stamping". The engines
/// record capture-to-delivery latencies here so those side effects are
/// measurable rather than anecdotal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    count: u64,
    sum_ns: u64,
    max_ns: u64,
    /// Bucket i counts samples in [2^i, 2^(i+1)) ns; 64 buckets cover
    /// every representable latency.
    buckets: Vec<u64>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: vec![0; 64],
        }
    }
}

impl LatencyStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Records `n` samples of the same latency (batch deliveries).
    pub fn record_n(&mut self, ns: u64, n: u64) {
        self.count += n;
        self.sum_ns += ns * n;
        self.max_ns = self.max_ns.max(ns);
        let bucket = (64 - ns.max(1).leading_zeros() - 1) as usize;
        self.buckets[bucket] += n;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Maximum observed latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// The raw bucket counts: bucket `i` counts samples in
    /// `[2^i, 2^(i+1))` ns (zeros are clamped into bucket 0).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile from the log buckets (upper bound of the
    /// bucket containing the q-quantile sample).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max_ns
    }

    /// Merges another set of samples.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn records_mean_and_max() {
        let mut l = LatencyStats::new();
        l.record(100);
        l.record(300);
        l.record_n(100, 2);
        assert_eq!(l.count(), 4);
        assert!((l.mean_ns() - 150.0).abs() < 1e-9);
        assert_eq!(l.max_ns(), 300);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut l = LatencyStats::new();
        for _ in 0..99 {
            l.record(1_000); // bucket [512, 1024) .. actually [2^9,2^10)
        }
        l.record(1_000_000);
        // Median is bounded by the small bucket's upper edge.
        assert!(l.quantile_ns(0.5) <= 2_048);
        // The p100 quantile must cover the outlier.
        assert!(l.quantile_ns(1.0) >= 1_000_000 / 2);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(10);
        let mut b = LatencyStats::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn empty_stats_are_zero() {
        let l = LatencyStats::new();
        assert_eq!(l.mean_ns(), 0.0);
        assert_eq!(l.quantile_ns(0.99), 0);
    }
}
