//! Fluid-flow service processes.
//!
//! The paper reduces the packet-processing application to a deterministic
//! service rate (38 844 p/s for `pkt_handler` with x = 300 on a 2.4 GHz
//! core, §2.2). Between two events a deterministic-rate server's progress
//! is exactly integrable, so we model every consumer (application threads,
//! NAPI copy threads, capture threads) as a [`FluidServer`]: a
//! work-conserving queue server whose backlog drains at `rate` items/s.
//! This gives per-event exactness without a per-service-completion event,
//! which is what lets the harness sweep 10⁷-packet workloads in seconds.

use crate::time::SimTime;

/// A work-conserving fluid queue server.
///
/// Items enter via [`FluidServer::enqueue`]; the server drains the backlog
/// at its current rate. [`FluidServer::advance`] integrates progress up to
/// `now` and reports how many *whole* items completed since the last call
/// (fractional progress is carried internally).
#[derive(Debug, Clone)]
pub struct FluidServer {
    rate_pps: f64,
    last: SimTime,
    /// Items ever enqueued (exact).
    enqueued: u64,
    /// Cumulative fluid work completed; never exceeds `enqueued`.
    processed: f64,
    /// Whole completions already reported.
    reported: u64,
}

/// Tolerance for flushing floating-point residue: when the remaining
/// backlog falls below this, the server is considered drained. Without
/// it, accumulated rounding can leave a 0.999…-item residue whose final
/// completion is never reported — a deadlock for batch-oriented callers.
const DRAIN_EPS: f64 = 1e-6;

impl FluidServer {
    /// Creates a server with the given service rate (items per second).
    pub fn new(rate_pps: f64) -> Self {
        assert!(rate_pps >= 0.0);
        FluidServer {
            rate_pps,
            last: SimTime::ZERO,
            enqueued: 0,
            processed: 0.0,
            reported: 0,
        }
    }

    /// Current service rate in items per second.
    pub fn rate(&self) -> f64 {
        self.rate_pps
    }

    /// Changes the service rate from `now` onward (progress up to `now` is
    /// integrated at the old rate first).
    pub fn set_rate(&mut self, now: SimTime, rate_pps: f64) -> u64 {
        let done = self.advance(now);
        self.rate_pps = rate_pps.max(0.0);
        done
    }

    /// Integrates service up to `now`; returns whole items completed since
    /// the previous call.
    pub fn advance(&mut self, now: SimTime) -> u64 {
        let dt = now.since(self.last) as f64 / 1e9;
        self.last = SimTime(self.last.0.max(now.0));
        if dt > 0.0 && self.rate_pps > 0.0 {
            self.processed = (self.processed + self.rate_pps * dt).min(self.enqueued as f64);
            if self.enqueued as f64 - self.processed < DRAIN_EPS {
                self.processed = self.enqueued as f64;
            }
        }
        self.report()
    }

    fn report(&mut self) -> u64 {
        let whole = ((self.processed + DRAIN_EPS).floor() as u64).min(self.enqueued);
        let delta = whole - self.reported;
        self.reported = whole;
        delta
    }

    /// Adds `n` items to the backlog (advance to `now` first).
    pub fn enqueue(&mut self, now: SimTime, n: u64) -> u64 {
        let done = self.advance(now);
        self.enqueued += n;
        done
    }

    /// Current backlog (fluid, includes the partially-served item).
    pub fn backlog(&self) -> f64 {
        (self.enqueued as f64 - self.processed).max(0.0)
    }

    /// Backlog rounded up to whole queued items.
    pub fn backlog_items(&self) -> u64 {
        self.backlog().ceil() as u64
    }

    /// Total whole completions reported so far.
    pub fn total_completed(&self) -> u64 {
        self.reported
    }

    /// Simulation time at which the current backlog would fully drain at
    /// the current rate, or `None` if the server is idle or stopped.
    pub fn drain_eta(&self) -> Option<SimTime> {
        let backlog = self.backlog();
        if backlog <= 0.0 || self.rate_pps <= 0.0 {
            return None;
        }
        let secs = backlog / self.rate_pps;
        Some(SimTime(self.last.0 + (secs * 1e9).ceil() as u64))
    }
}

/// A fluid server with a hard queue capacity: arrivals beyond the capacity
/// are rejected (the caller counts them as drops).
#[derive(Debug, Clone)]
pub struct BoundedServer {
    inner: FluidServer,
    capacity: u64,
    rejected: u64,
}

impl BoundedServer {
    /// Creates a bounded server.
    pub fn new(rate_pps: f64, capacity: u64) -> Self {
        BoundedServer {
            inner: FluidServer::new(rate_pps),
            capacity,
            rejected: 0,
        }
    }

    /// Offers `n` items at `now`; returns `(accepted, completed)`. Items
    /// that do not fit in the remaining capacity are rejected and counted.
    pub fn offer(&mut self, now: SimTime, n: u64) -> (u64, u64) {
        let done = self.inner.advance(now);
        let room = (self.capacity as f64 - self.inner.backlog())
            .max(0.0)
            .floor() as u64;
        let accepted = n.min(room);
        self.inner.enqueue(now, accepted);
        self.rejected += n - accepted;
        (accepted, done)
    }

    /// Integrates service up to `now`; returns whole completions.
    pub fn advance(&mut self, now: SimTime) -> u64 {
        self.inner.advance(now)
    }

    /// Items rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Access to the underlying fluid server.
    pub fn server(&self) -> &FluidServer {
        &self.inner
    }

    /// Mutable access to the underlying fluid server (rate changes).
    pub fn server_mut(&mut self) -> &mut FluidServer {
        &mut self.inner
    }

    /// Queue capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SECOND;

    #[test]
    fn drains_at_rate() {
        let mut s = FluidServer::new(1000.0);
        s.enqueue(SimTime(0), 500);
        // After 0.25 s, 250 items complete.
        assert_eq!(s.advance(SimTime(SECOND / 4)), 250);
        // After another 0.25 s, 250 more.
        assert_eq!(s.advance(SimTime(SECOND / 2)), 250);
        // Queue empty: no further completions.
        assert_eq!(s.advance(SimTime(SECOND)), 0);
        assert_eq!(s.total_completed(), 500);
    }

    #[test]
    fn is_work_conserving_not_precomputing() {
        // An idle period must not bank service credit.
        let mut s = FluidServer::new(1000.0);
        s.advance(SimTime(SECOND)); // idle for 1s
        s.enqueue(SimTime(SECOND), 10);
        // 1 ms later only 1 item can have completed, not 1000.
        assert_eq!(s.advance(SimTime(SECOND + SECOND / 1000)), 1);
    }

    #[test]
    fn rate_change_integrates_old_rate_first() {
        let mut s = FluidServer::new(1000.0);
        s.enqueue(SimTime(0), 1_000_000);
        let done = s.set_rate(SimTime(SECOND / 2), 2000.0);
        assert_eq!(done, 500);
        assert_eq!(s.advance(SimTime(SECOND)), 1000);
    }

    #[test]
    fn zero_rate_holds_backlog() {
        let mut s = FluidServer::new(0.0);
        s.enqueue(SimTime(0), 5);
        assert_eq!(s.advance(SimTime(10 * SECOND)), 0);
        assert_eq!(s.backlog_items(), 5);
    }

    #[test]
    fn fractional_completions_accumulate() {
        let mut s = FluidServer::new(1.0); // 1 item/s
        s.enqueue(SimTime(0), 10);
        let mut total = 0;
        // Advance in 100 ms steps: each step completes 0.1 items.
        for i in 1..=25 {
            total += s.advance(SimTime(i * SECOND / 10));
        }
        assert_eq!(total, 2); // 2.5 s at 1 item/s, floor carried correctly
    }

    #[test]
    fn drain_eta_matches_backlog() {
        let mut s = FluidServer::new(100.0);
        s.enqueue(SimTime(0), 50);
        let eta = s.drain_eta().unwrap();
        assert_eq!(eta, SimTime(SECOND / 2));
        assert_eq!(FluidServer::new(10.0).drain_eta(), None);
    }

    #[test]
    fn bounded_server_rejects_overflow() {
        let mut b = BoundedServer::new(0.0, 10);
        let (acc, _) = b.offer(SimTime(0), 7);
        assert_eq!(acc, 7);
        let (acc, _) = b.offer(SimTime(0), 7);
        assert_eq!(acc, 3);
        assert_eq!(b.rejected(), 4);
    }

    #[test]
    fn bounded_server_frees_capacity_as_it_drains() {
        let mut b = BoundedServer::new(10.0, 10);
        b.offer(SimTime(0), 10);
        // After 0.5 s, 5 items completed, so 5 slots free.
        let (acc, done) = b.offer(SimTime(SECOND / 2), 10);
        assert_eq!(done, 5);
        assert_eq!(acc, 5);
        assert_eq!(b.rejected(), 5);
    }
}
