//! Property test: the SPSC batch ring is lossless, duplicate-free and
//! order-preserving under arbitrary interleavings of batch sizes.
//!
//! A producer thread pushes a randomized sequence of batch sizes while
//! the consumer pops with a randomized batch bound, over rings whose
//! capacity ranges from smaller than one batch to much larger. Whatever
//! the interleaving, the consumer must observe exactly 0..total in
//! order — the invariant the live engine's chunk handoff rests on.

use proptest::prelude::*;
use std::sync::Arc;
use wirecap::spsc::BatchRing;

proptest! {
    #[test]
    fn interleaved_batches_never_lose_duplicate_or_reorder(
        capacity in 2usize..200,
        push_sizes in proptest::collection::vec(1usize..=80, 1..30),
        pop_max in 1usize..=80,
    ) {
        let total: usize = push_sizes.iter().sum();
        let ring = Arc::new(BatchRing::<u64>::with_capacity(capacity));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut next = 0u64;
                let mut staged: Vec<u64> = Vec::new();
                for size in push_sizes {
                    staged.extend((0..size).map(|_| {
                        let v = next;
                        next += 1;
                        v
                    }));
                    // Each push_batch moves at most MAX_BATCH (and at
                    // most the free space); spin until the whole batch
                    // is through.
                    while !staged.is_empty() {
                        if ring.push_batch(&mut staged) == 0 {
                            std::thread::yield_now();
                        }
                    }
                }
                ring.close();
            })
        };
        let mut got: Vec<u64> = Vec::with_capacity(total);
        let mut buf: Vec<u64> = Vec::new();
        loop {
            buf.clear();
            if ring.pop_batch(&mut buf, pop_max) > 0 {
                got.extend_from_slice(&buf);
                continue;
            }
            if ring.is_closed() {
                // Close-then-final-pop: one more drain after observing
                // the close flag catches items pushed before it was set.
                buf.clear();
                if ring.pop_batch(&mut buf, pop_max) == 0 {
                    break;
                }
                got.extend_from_slice(&buf);
                continue;
            }
            std::thread::yield_now();
        }
        producer.join().unwrap();
        prop_assert_eq!(got.len(), total);
        prop_assert!(
            got.iter().enumerate().all(|(i, &v)| v as usize == i),
            "stream reordered or duplicated"
        );
        prop_assert!(ring.is_empty());
    }
}
