//! Property test: telemetry conservation laws over randomized live runs.
//!
//! Drives the threaded live engine with randomized pool geometry, NIC
//! ring capacity, offloading mode and packet counts (reusing the SPSC
//! interleaving harness style from `spsc_props`), then checks the
//! conservation identities the unified snapshot promises:
//!
//! * every offered packet is captured, pool-dropped, or NIC-dropped;
//! * every captured packet is delivered (consumers drain everything);
//! * every sealed chunk is recycled, and chunk-fill histogram mass
//!   equals the sealed-chunk and captured-packet counts;
//! * chunks offloaded out by one queue are offloaded in by another.

use netproto::{FlowKey, PacketBuilder};
use nicsim::livenic::LiveNic;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;
use wirecap::buddy::BuddyGroups;
use wirecap::live::LiveWireCap;
use wirecap::NicSimBackend;
use wirecap::WireCapConfig;

/// One randomized live run; returns the per-queue telemetry.
fn run_live(
    queues: usize,
    m: usize,
    extra_chunks: usize,
    nic_capacity: usize,
    npkts: u64,
    offload: bool,
) -> Vec<telemetry::QueueTelemetry> {
    const RING: usize = 64;
    let mut builder = WireCapConfig::builder()
        .ring_size(RING)
        .cells(m)
        .chunks(RING / m + extra_chunks)
        .capture_timeout_ns(2_000_000);
    if offload {
        builder = builder.threshold(0.5);
    }
    let cfg = builder.build().expect("generated configs are valid");
    let groups = if offload {
        BuddyGroups::single(queues)
    } else {
        BuddyGroups::isolated(queues)
    };
    let nic = LiveNic::new(queues, nic_capacity);
    let cap = LiveWireCap::builder()
        .backend(NicSimBackend::new(Arc::clone(&nic)))
        .config(cfg)
        .groups(groups)
        .start();
    let consumers: Vec<_> = (0..queues)
        .map(|q| {
            let mut c = cap.consumer(q);
            std::thread::spawn(move || {
                while let Some(chunk) = c.next_chunk() {
                    c.recycle(chunk);
                }
            })
        })
        .collect();
    let mut b = PacketBuilder::new();
    for i in 0..npkts {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, (i % 7) as u8, (i % 11) as u8, 1),
            1000 + (i % 13) as u16,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        let pkt = b.build_packet(i, &flow, 100).unwrap();
        // No spinning: a full NIC ring is a legitimate outcome and must
        // show up as `nic_drop_packets`.
        let _ = nic.inject(pkt);
    }
    nic.stop();
    for c in consumers {
        c.join().unwrap();
    }
    let tels: Vec<_> = (0..queues).map(|q| cap.telemetry(q)).collect();
    cap.shutdown();
    tels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn conservation_holds_across_randomized_live_runs(
        queues in 1usize..=3,
        m_index in 0usize..3,
        extra_chunks in 2usize..20,
        nic_capacity in 32usize..512,
        npkts in 1u64..=1200,
        offload_sel in 0u8..2,
    ) {
        let m = [8, 16, 32][m_index];
        let offload = offload_sel == 1;
        let tels = run_live(queues, m, extra_chunks, nic_capacity, npkts, offload);

        let mut offered_total = 0u64;
        let mut out_total = 0u64;
        let mut in_total = 0u64;
        for t in &tels {
            // Packet conservation at the capture boundary.
            prop_assert_eq!(
                t.offered_packets,
                t.captured_packets + t.capture_drop_packets + t.nic_drop_packets,
                "queue {}: {:?}", t.queue, t
            );
            // Consumers drained everything: captured == delivered and
            // every sealed chunk came home.
            prop_assert_eq!(t.captured_packets, t.delivered_packets);
            prop_assert_eq!(t.sealed_chunks, t.recycled_chunks);
            // Histogram mass matches the counters it samples.
            prop_assert_eq!(t.chunk_fill.count, t.sealed_chunks);
            prop_assert_eq!(t.chunk_fill.sum, t.captured_packets);
            prop_assert!(t.partial_chunks <= t.sealed_chunks);
            prop_assert!(t.offloaded_out_chunks <= t.sealed_chunks);
            if !offload {
                prop_assert_eq!(t.offloaded_out_chunks, 0);
                prop_assert_eq!(t.offloaded_in_chunks, 0);
            }
            offered_total += t.offered_packets;
            out_total += t.offloaded_out_chunks;
            in_total += t.offloaded_in_chunks;
        }
        prop_assert_eq!(offered_total, npkts, "the NIC saw every injection");
        prop_assert_eq!(out_total, in_total, "offloads are pairwise conserved");
    }
}
