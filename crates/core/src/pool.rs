//! The ring-buffer-pool mechanism (§3.2.1).
//!
//! Each receive queue owns a pool of R chunks of M cells. The receive
//! ring is divided into N/M descriptor segments; each segment is attached
//! to one chunk, cell-to-descriptor. DMA fills cells in ring order; a
//! full chunk is *captured* to user space as pure metadata and its
//! segment re-armed with a free chunk. Consumed chunks are *recycled*
//! back to the free list after strict validation — the safety boundary of
//! §3.2.2c.

use crate::chunk::{Chunk, ChunkId, ChunkMeta, ChunkState};
use crate::config::WireCapConfig;
use std::collections::VecDeque;

/// Why a `close` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseError {
    /// Chunks are still captured into user space; closing now would pull
    /// mapped memory out from under the application. Carries the count.
    ChunksOutstanding(usize),
}

impl core::fmt::Display for CloseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CloseError::ChunksOutstanding(n) => {
                write!(f, "{n} captured chunks still outstanding")
            }
        }
    }
}

impl std::error::Error for CloseError {}

/// Why the kernel rejected a recycle request (§3.2.2c: metadata from user
/// space is "strictly validated and verified").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecycleError {
    /// The metadata names a different NIC or ring than this pool.
    WrongPool,
    /// chunk_id is out of range for this pool.
    BadChunkId,
    /// The chunk is not in the captured state (double recycle, or an
    /// attempt to free an attached chunk out from under the NIC).
    NotCaptured,
    /// The process address does not match the kernel's mapping record (a
    /// forged metadata block).
    BadAddress,
}

impl core::fmt::Display for RecycleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecycleError::WrongPool => write!(f, "metadata names a different pool"),
            RecycleError::BadChunkId => write!(f, "chunk id out of range"),
            RecycleError::NotCaptured => write!(f, "chunk is not in the captured state"),
            RecycleError::BadAddress => write!(f, "process address mismatch"),
        }
    }
}

impl std::error::Error for RecycleError {}

/// A receive queue's ring buffer pool.
#[derive(Debug)]
pub struct RingBufferPool {
    nic_id: u16,
    ring_id: u16,
    m: usize,
    segments: usize,
    chunks: Vec<Chunk>,
    /// Free chunk ids, FIFO.
    free: VecDeque<u32>,
    /// Attached chunk ids in ring order; DMA fills from the front-most
    /// unfilled chunk, captures pop full chunks from the front.
    attached: VecDeque<u32>,
    /// Packets copied by timeout partial captures.
    partial_copy_packets: u64,
}

impl RingBufferPool {
    /// Builds and opens a pool: R chunks allocated, the first N/M
    /// attached to the ring's descriptor segments.
    pub fn open(nic_id: u16, ring_id: u16, cfg: &WireCapConfig) -> Self {
        cfg.validate().expect("invalid WireCAP configuration");
        let chunks: Vec<Chunk> = (0..cfg.r as u32)
            .map(|chunk_id| {
                Chunk::new(
                    ChunkId {
                        nic_id,
                        ring_id,
                        chunk_id,
                    },
                    cfg.m,
                )
            })
            .collect();
        let mut pool = RingBufferPool {
            nic_id,
            ring_id,
            m: cfg.m,
            segments: cfg.segments(),
            chunks,
            free: (0..cfg.r as u32).collect(),
            attached: VecDeque::new(),
            partial_copy_packets: 0,
        };
        for _ in 0..pool.segments {
            let armed = pool.attach_one();
            debug_assert_eq!(armed, cfg.m);
        }
        pool
    }

    /// Attaches one free chunk to an empty descriptor segment; returns
    /// the number of cells (descriptors) armed — 0 if no free chunk.
    fn attach_one(&mut self) -> usize {
        match self.free.pop_front() {
            Some(id) => {
                let c = &mut self.chunks[id as usize];
                debug_assert_eq!(c.state, ChunkState::Free);
                c.state = ChunkState::Attached;
                c.fill = 0;
                self.attached.push_back(id);
                self.m
            }
            None => 0,
        }
    }

    /// Cells armed for DMA across attached chunks.
    pub fn armed_cells(&self) -> usize {
        self.attached
            .iter()
            .map(|&id| self.m - self.chunks[id as usize].fill as usize)
            .sum()
    }

    /// One packet DMA'd into the ring at `now_ns`: fills the front-most
    /// unfilled attached cell. Returns `false` if no cell was armed (the
    /// caller counts the capture drop).
    pub fn on_dma(&mut self, now_ns: u64) -> bool {
        for &id in &self.attached {
            let c = &mut self.chunks[id as usize];
            if (c.fill as usize) < self.m {
                if c.fill == 0 {
                    c.first_fill_ns = now_ns;
                }
                c.fill += 1;
                return true;
            }
        }
        false
    }

    /// The capture operation, full-chunk path: pops every leading full
    /// chunk, re-arms its segment with a free chunk when one exists.
    /// Returns `(metas, cells_rearmed)`.
    pub fn capture_full(&mut self) -> (Vec<ChunkMeta>, usize) {
        let mut metas = Vec::new();
        let mut rearmed = 0;
        while let Some(&front) = self.attached.front() {
            if (self.chunks[front as usize].fill as usize) < self.m {
                break;
            }
            self.attached.pop_front();
            let c = &mut self.chunks[front as usize];
            c.state = ChunkState::Captured;
            metas.push(c.meta(false));
            rearmed += self.attach_one();
        }
        (metas, rearmed)
    }

    /// The capture operation, timeout path (§3.2.1 step 3): if the
    /// front-most chunk is partially filled and older than `timeout_ns`,
    /// copy its packets into a free chunk, deliver that copy, and re-arm
    /// the drained cells. Returns `(meta, cells_rearmed)` when it fired.
    ///
    /// "This mechanism avoids holding packets in the receive ring for too
    /// long."
    pub fn capture_partial(&mut self, now_ns: u64, timeout_ns: u64) -> Option<(ChunkMeta, usize)> {
        let &front = self.attached.front()?;
        let fill = self.chunks[front as usize].fill;
        if fill == 0 || (fill as usize) == self.m {
            return None;
        }
        if now_ns.saturating_sub(self.chunks[front as usize].first_fill_ns) < timeout_ns {
            return None;
        }
        // Needs a free chunk to copy into.
        let first_fill_ns = self.chunks[front as usize].first_fill_ns;
        let copy_id = self.free.pop_front()?;
        let copy = &mut self.chunks[copy_id as usize];
        copy.state = ChunkState::Captured;
        copy.fill = fill;
        copy.first_fill_ns = first_fill_ns;
        let meta = copy.meta(false);
        self.partial_copy_packets += u64::from(fill);
        // The drained cells of the attached chunk re-arm in place.
        let c = &mut self.chunks[front as usize];
        c.fill = 0;
        Some((meta, fill as usize))
    }

    /// The recycle operation: strict validation, then `captured → free`.
    pub fn recycle(&mut self, meta: &ChunkMeta) -> Result<(), RecycleError> {
        if meta.id.nic_id != self.nic_id || meta.id.ring_id != self.ring_id {
            return Err(RecycleError::WrongPool);
        }
        let idx = meta.id.chunk_id as usize;
        if idx >= self.chunks.len() {
            return Err(RecycleError::BadChunkId);
        }
        let c = &mut self.chunks[idx];
        if c.state != ChunkState::Captured {
            return Err(RecycleError::NotCaptured);
        }
        if meta.process_address != c.process_address {
            return Err(RecycleError::BadAddress);
        }
        c.state = ChunkState::Free;
        c.fill = 0;
        self.free.push_back(meta.id.chunk_id);
        Ok(())
    }

    /// Re-arms any descriptor segment left empty by free-chunk
    /// starvation, now that chunks may have been recycled. Returns cells
    /// armed.
    pub fn replenish(&mut self) -> usize {
        let mut armed = 0;
        while self.attached.len() < self.segments {
            let got = self.attach_one();
            if got == 0 {
                break;
            }
            armed += got;
        }
        armed
    }

    /// Free chunks available.
    pub fn free_chunks(&self) -> usize {
        self.free.len()
    }

    /// Chunks currently captured into user space.
    pub fn captured_chunks(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| c.state == ChunkState::Captured)
            .count()
    }

    /// Chunks attached to the ring.
    pub fn attached_chunks(&self) -> usize {
        self.attached.len()
    }

    /// Cells per chunk (M).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Packets copied by the timeout partial-capture path — the only
    /// packet-byte copies WireCAP ever performs.
    pub fn partial_copy_packets(&self) -> u64 {
        self.partial_copy_packets
    }

    /// The close operation (§3.2.1): "Closes a specific receive queue for
    /// packet capture and performs the necessary cleaning tasks."
    ///
    /// Consumes the pool. Refuses while captured chunks are outstanding —
    /// user space must recycle everything first, or the mapped pool
    /// memory would vanish under the application. Attached chunks (and
    /// any packets still in them) are torn down with the ring, as the
    /// real driver does on queue shutdown; the number of such packets is
    /// returned so callers can account for them.
    // The Err variant intentionally hands the (large) pool back: a
    // refused close must not destroy the queue.
    #[allow(clippy::result_large_err)]
    pub fn close(self) -> Result<u64, (Self, CloseError)> {
        let outstanding = self.captured_chunks();
        if outstanding > 0 {
            return Err((self, CloseError::ChunksOutstanding(outstanding)));
        }
        let discarded = self
            .attached
            .iter()
            .map(|&id| u64::from(self.chunks[id as usize].fill))
            .sum();
        Ok(discarded)
    }

    /// Chunk-conservation invariant: every chunk is in exactly one state
    /// and the counts sum to R.
    pub fn is_consistent(&self) -> bool {
        let free = self
            .chunks
            .iter()
            .filter(|c| c.state == ChunkState::Free)
            .count();
        let attached = self
            .chunks
            .iter()
            .filter(|c| c.state == ChunkState::Attached)
            .count();
        free == self.free.len()
            && attached == self.attached.len()
            && free + attached + self.captured_chunks() == self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WireCapConfig {
        WireCapConfig::basic(256, 8, 0) // 4 segments, 4 spare chunks
    }

    fn pool() -> RingBufferPool {
        RingBufferPool::open(0, 0, &cfg())
    }

    #[test]
    fn open_attaches_all_segments() {
        let p = pool();
        assert_eq!(p.attached_chunks(), 4);
        assert_eq!(p.free_chunks(), 4);
        assert_eq!(p.armed_cells(), 1024);
        assert!(p.is_consistent());
    }

    #[test]
    fn dma_fills_in_ring_order() {
        let mut p = pool();
        for _ in 0..256 {
            assert!(p.on_dma(0));
        }
        // First chunk full, still attached until captured.
        assert_eq!(p.armed_cells(), 768);
        let (metas, rearmed) = p.capture_full();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].pkt_count, 256);
        assert_eq!(rearmed, 256);
        assert_eq!(p.armed_cells(), 1024);
        assert!(p.is_consistent());
    }

    #[test]
    fn capture_pops_multiple_full_chunks() {
        let mut p = pool();
        for _ in 0..700 {
            p.on_dma(0);
        }
        let (metas, rearmed) = p.capture_full();
        assert_eq!(metas.len(), 2); // 700 = 2 × 256 + 188
        assert_eq!(rearmed, 512);
        // The partial third chunk stays attached.
        assert_eq!(p.armed_cells(), 1024 - 188);
    }

    #[test]
    fn starvation_exhausts_armed_cells() {
        let mut p = pool();
        // Fill and capture chunks without ever recycling: after the 4
        // spares are used, captures stop re-arming.
        let mut landed = 0u64;
        let mut metas = Vec::new();
        loop {
            if !p.on_dma(0) {
                break;
            }
            landed += 1;
            let (m, _) = p.capture_full();
            metas.extend(m);
        }
        // 8 chunks × 256 cells = 2048 packets, then starvation.
        assert_eq!(landed, 2048);
        assert_eq!(p.free_chunks(), 0);
        assert_eq!(p.armed_cells(), 0);
        assert_eq!(metas.len(), 8);
        assert!(p.is_consistent());

        // Recycling brings capacity back.
        for m in &metas {
            p.recycle(m).unwrap();
        }
        let armed = p.replenish();
        assert_eq!(armed, 1024);
        assert!(p.on_dma(0));
        assert!(p.is_consistent());
    }

    #[test]
    fn partial_capture_copies_and_rearms() {
        let mut p = pool();
        for _ in 0..10 {
            p.on_dma(1_000);
        }
        // Too young: no partial capture yet.
        assert!(p.capture_partial(500_000, 1_000_000).is_none());
        // Old enough: fires.
        let (meta, rearmed) = p.capture_partial(1_200_000, 1_000_000).unwrap();
        assert_eq!(meta.pkt_count, 10);
        assert_eq!(rearmed, 10);
        assert_eq!(p.partial_copy_packets(), 10);
        assert_eq!(p.armed_cells(), 1024);
        // The delivered chunk is a *different* chunk (a copy).
        assert_eq!(p.free_chunks(), 3);
        assert!(p.is_consistent());
        p.recycle(&meta).unwrap();
        assert_eq!(p.free_chunks(), 4);
    }

    #[test]
    fn partial_capture_requires_a_free_chunk() {
        let mut p = RingBufferPool::open(0, 0, &WireCapConfig::basic(256, 5, 0));
        // Use up the single spare chunk.
        for _ in 0..256 {
            p.on_dma(0);
        }
        let (metas, _) = p.capture_full();
        assert_eq!(metas.len(), 1);
        assert_eq!(p.free_chunks(), 0);
        p.on_dma(10);
        assert!(p.capture_partial(10_000_000, 1_000_000).is_none());
    }

    #[test]
    fn full_or_empty_chunks_never_partial_capture() {
        let mut p = pool();
        assert!(p.capture_partial(u64::MAX, 0).is_none()); // empty
        for _ in 0..256 {
            p.on_dma(0);
        }
        assert!(p.capture_partial(u64::MAX, 0).is_none()); // full
    }

    #[test]
    fn close_requires_all_chunks_recycled() {
        let mut p = pool();
        for _ in 0..256 {
            p.on_dma(0);
        }
        let (metas, _) = p.capture_full();
        // Outstanding captured chunk: close refused, pool returned intact.
        let (mut p, err) = p.close().unwrap_err();
        assert_eq!(err, CloseError::ChunksOutstanding(1));
        assert!(p.is_consistent());
        // After recycling, close succeeds.
        p.recycle(&metas[0]).unwrap();
        assert_eq!(p.close().unwrap(), 0);
    }

    #[test]
    fn close_reports_packets_discarded_with_the_ring() {
        let mut p = pool();
        for _ in 0..10 {
            p.on_dma(0);
        }
        // 10 packets sit in an attached chunk; closing tears them down.
        assert_eq!(p.close().unwrap(), 10);
    }

    #[test]
    fn recycle_validation_rejects_garbage() {
        let mut p = pool();
        for _ in 0..256 {
            p.on_dma(0);
        }
        let (metas, _) = p.capture_full();
        let good = metas[0];

        // Wrong pool.
        let mut bad = good;
        bad.id.ring_id = 9;
        assert_eq!(p.recycle(&bad), Err(RecycleError::WrongPool));

        // Out-of-range chunk id.
        let mut bad = good;
        bad.id.chunk_id = 999;
        assert_eq!(p.recycle(&bad), Err(RecycleError::BadChunkId));

        // Forged address.
        let mut bad = good;
        bad.process_address ^= 0xdead;
        assert_eq!(p.recycle(&bad), Err(RecycleError::BadAddress));

        // Recycling an attached chunk (never captured).
        let mut bad = good;
        bad.id.chunk_id = *p.attached.front().unwrap();
        bad.process_address = p.chunks[bad.id.chunk_id as usize].process_address;
        assert_eq!(p.recycle(&bad), Err(RecycleError::NotCaptured));

        // The genuine one succeeds exactly once.
        assert_eq!(p.recycle(&good), Ok(()));
        assert_eq!(p.recycle(&good), Err(RecycleError::NotCaptured));
        assert!(p.is_consistent());
    }
}
