//! Multi-core delivery: work-stealing consumer pools, adaptive polling,
//! and core pinning (DESIGN.md §4.11).
//!
//! The live engine's baseline delivery model binds exactly one consumer
//! to each queue's SPSC rings, so aggregate throughput is capped by the
//! slowest consumer and the buddy-group mechanism only rebalances
//! *after* a capture queue is already over the offload threshold T.
//! This module adds a second, earlier rebalancing layer on the
//! *delivery* side:
//!
//! * a bounded, chunk-granularity **work-stealing deque** — the owner
//!   pushes and pops at the bottom without atomic read-modify-write
//!   instructions; thieves CAS at the top only — so the common
//!   (no-contention) path stays as cheap as a local queue;
//! * a [`ConsumerPool`] running N worker threads over the queues of one
//!   [`BuddyGroup`]: each worker drains the SPSC rings of the queues it
//!   owns into its local deque, and steals sealed chunks from busy
//!   workers when its own queues go quiet — rebalancing at the
//!   sealed-chunk handoff, **before** the capture queue ever climbs
//!   toward T;
//! * an [`AdaptivePoller`] (spin → `yield_now` → parked-with-wakeup on
//!   a [`WakeupGate`]) so idle capture and worker threads stop burning
//!   the cycles busy threads need — on oversubscribed hosts this, not
//!   parallelism, is where the scaling headroom lives;
//! * optional core pinning ([`pin_to_core`]) behind a shim, so builds
//!   without `sched_setaffinity` still compile and run.
//!
//! Recycling stays home-pool-only exactly as the offload path does:
//! stealing moves the *handle*, never the payload, and the slot always
//! returns to `recycle[chunk.home()]`. `ChunkLens`/capdisk drainers are
//! unaffected because stealing happens after chunks leave the rings,
//! never inside another consumer's inbox.
//!
//! With `cfg.concurrent_queue` the pool switches delivery models
//! entirely: instead of per-worker deques fed by per-queue rings,
//! every worker claims sealed chunks straight off the group's shared
//! [`ClaimQueue`]s (COREC-style concurrent single-queue consumption,
//! DESIGN.md §4.12), so even one scorching queue is drained by all N
//! workers at once. A lost claim CAS feeds the `claim_contention`
//! counter and the poller's cheap [`AdaptivePoller::lost_race`] reset
//! instead of restarting the full spin→yield→park ladder.

use crate::arena::ChunkView;
use crate::buddy::BuddyGroup;
use crate::claim::{Claim, ClaimQueue, ReorderBuffer};
use crate::config::WireCapConfig;
use crate::live::{LiveChunk, Shared};
use crate::spsc::MAX_BATCH;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use telemetry::{clock, SpanRecord, WorkerState, WorkerTimeState};

/// Chunks a pool worker takes from its own deque per drain/process
/// round, bounding the latency between ring drains.
const PROCESS_BURST: usize = 8;

// ---------------------------------------------------------------------
// Bounded Chase-Lev work-stealing deque
// ---------------------------------------------------------------------

/// The owner's endpoint of a bounded work-stealing deque: push and pop
/// at the bottom, no CAS except when racing a thief for the final item.
/// Created by [`steal_deque`]; there is exactly one owner.
#[derive(Debug)]
pub struct DequeOwner<T> {
    inner: Arc<imp::Inner<T>>,
}

/// A thief's endpoint of a bounded work-stealing deque: [`steal`]
/// takes the *oldest* item with a single CAS at the top. Cheap to
/// clone; any number of thieves may race.
///
/// [`steal`]: DequeStealer::steal
#[derive(Debug)]
pub struct DequeStealer<T> {
    inner: Arc<imp::Inner<T>>,
}

impl<T> Clone for DequeStealer<T> {
    fn clone(&self) -> Self {
        DequeStealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of a [`DequeStealer::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque was empty at the time of the attempt.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Took the oldest item.
    Success(T),
}

/// Creates a bounded work-stealing deque holding at most `capacity`
/// items (rounded up to a power of two). The owner endpoint pushes and
/// pops LIFO at the bottom; stealers take FIFO at the top.
pub fn steal_deque<T>(capacity: usize) -> (DequeOwner<T>, DequeStealer<T>) {
    let inner = Arc::new(imp::Inner::new(capacity));
    (
        DequeOwner {
            inner: Arc::clone(&inner),
        },
        DequeStealer { inner },
    )
}

impl<T> DequeOwner<T> {
    /// Pushes at the bottom. Returns the value back when the deque is
    /// full (callers size the deque so this cannot happen in steady
    /// state — e.g. the pool sizes it to every chunk in existence).
    pub fn push(&mut self, value: T) -> Result<(), T> {
        self.inner.push(value)
    }

    /// Pops the most recently pushed item (LIFO keeps the owner on
    /// cache-warm chunks; thieves take the oldest).
    pub fn pop(&mut self) -> Option<T> {
        self.inner.pop()
    }

    /// Items currently queued (racy under concurrent steals).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing is queued (racy under concurrent steals).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> DequeStealer<T> {
    /// Attempts to take the oldest item with one CAS at the top.
    pub fn steal(&self) -> Steal<T> {
        self.inner.steal()
    }

    /// Items currently queued (racy; a load-only estimate for "is this
    /// victim worth visiting").
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing appears queued (racy estimate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The unsafe core of the deque: a fixed ring of `MaybeUninit` cells
/// indexed by two monotonic counters, after Chase & Lev ("Dynamic
/// Circular Work-Stealing Deque") with the memory orderings of Lê,
/// Pop, Cohen & Zappa Nardelli ("Correct and Efficient Work-Stealing
/// for Weak Memory Models"), minus the growth path — capacity is fixed
/// and `push` reports a full deque instead of resizing.
#[allow(unsafe_code)]
mod imp {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, Ordering};

    #[derive(Debug)]
    pub(super) struct Inner<T> {
        /// Next slot thieves take from; only ever advanced by CAS.
        top: AtomicIsize,
        /// Next slot the owner pushes to; only the owner stores it.
        bottom: AtomicIsize,
        buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
    }

    // The cells are plain memory coordinated entirely through
    // `top`/`bottom`: a slot is readable only inside `[top, bottom)`,
    // and ownership of the value transfers with the CAS on `top` (or
    // the owner's exclusive access to `bottom`). `T: Send` is all the
    // cells themselves require.
    unsafe impl<T: Send> Send for Inner<T> {}
    unsafe impl<T: Send> Sync for Inner<T> {}

    impl<T> Inner<T> {
        pub(super) fn new(capacity: usize) -> Self {
            let cap = capacity.max(2).next_power_of_two();
            Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buf: (0..cap)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
                mask: cap - 1,
            }
        }

        pub(super) fn len(&self) -> usize {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Relaxed);
            b.saturating_sub(t).max(0) as usize
        }

        /// Owner-only: push at the bottom. One release store publishes
        /// the item; no read-modify-write.
        pub(super) fn push(&self, value: T) -> Result<(), T> {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Acquire);
            if b.wrapping_sub(t) >= self.buf.len() as isize {
                return Err(value);
            }
            // SAFETY: slot `b & mask` is outside `[t, b)` (checked just
            // above: the ring is not full), so no thief can be reading
            // it; we are the only writer of `bottom`.
            unsafe {
                (*self.buf[b as usize & self.mask].get()).write(value);
            }
            self.bottom.store(b.wrapping_add(1), Ordering::Release);
            Ok(())
        }

        /// Owner-only: pop at the bottom. CAS only when racing a thief
        /// for the final item.
        pub(super) fn pop(&self) -> Option<T> {
            let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
            self.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let t = self.top.load(Ordering::Relaxed);
            if t > b {
                // Empty (bottom transiently sat below top; restore).
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                return None;
            }
            // SAFETY: `t <= b` so slot `b & mask` holds an initialized
            // value. The copy is bitwise; exactly one of owner/thief
            // keeps it (the loser forgets its copy below).
            let value = unsafe { (*self.buf[b as usize & self.mask].get()).assume_init_read() };
            if t == b {
                // Final item: race thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                if !won {
                    // A thief took it; our bitwise copy must not drop.
                    std::mem::forget(value);
                    return None;
                }
            }
            Some(value)
        }

        /// Thief: take the oldest item with one CAS on `top`.
        pub(super) fn steal(&self) -> super::Steal<T> {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return super::Steal::Empty;
            }
            // SAFETY: `t < b` so the slot held an initialized value
            // when read; the CAS below decides whether our bitwise
            // copy is the surviving one (on failure it is forgotten,
            // never dropped).
            let value = unsafe { (*self.buf[t as usize & self.mask].get()).assume_init_read() };
            if self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                super::Steal::Success(value)
            } else {
                std::mem::forget(value);
                super::Steal::Retry
            }
        }
    }

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            for i in t..b {
                // SAFETY: exclusive access (`&mut self`); every slot in
                // `[top, bottom)` holds an initialized value.
                unsafe {
                    (*self.buf[i as usize & self.mask].get()).assume_init_drop();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wakeup gate + adaptive polling
// ---------------------------------------------------------------------

/// An eventcount-style wakeup gate: waiters take a [`ticket`], re-check
/// their work source, then [`park`]; notifiers bump a sequence number
/// and only touch the mutex when somebody is actually parked — so the
/// hot-path cost of `notify` with no sleepers is one relaxed load.
///
/// Parks are always timeout-bounded, so the one tolerated race (a
/// notify landing between the caller's last work check and its ticket
/// read) costs at most one park timeout, never a hang.
///
/// [`ticket`]: WakeupGate::ticket
/// [`park`]: WakeupGate::park
#[derive(Debug, Default)]
pub struct WakeupGate {
    seq: AtomicU64,
    parked: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl WakeupGate {
    /// Creates a gate with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes every parked waiter. Cheap when nobody is parked: one
    /// sequence bump and one load, no mutex.
    pub fn notify(&self) {
        self.seq.fetch_add(1, Ordering::Release);
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    /// The current sequence number. Take it *before* the final
    /// is-there-work check, then pass it to [`park`](Self::park): any
    /// notify after the ticket was taken returns the park immediately.
    pub fn ticket(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Parks the calling thread until a notify arrives after `ticket`
    /// was taken, or `timeout` elapses. Returns `true` when woken by a
    /// notify (sequence advanced), `false` on timeout.
    pub fn park(&self, ticket: u64, timeout: Duration) -> bool {
        self.parked.fetch_add(1, Ordering::SeqCst);
        let mut guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        let mut woken = self.seq.load(Ordering::Acquire) != ticket;
        while !woken {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _timed_out) = self
                .cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
            woken = self.seq.load(Ordering::Acquire) != ticket;
        }
        drop(guard);
        self.parked.fetch_sub(1, Ordering::SeqCst);
        woken
    }

    /// Waiters currently parked (diagnostic).
    pub fn parked(&self) -> u64 {
        self.parked.load(Ordering::SeqCst)
    }
}

/// What one [`AdaptivePoller::idle`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleStep {
    /// Busy-spun (`spin_loop` hints) — the cheapest-latency stage.
    Spun,
    /// Yielded the timeslice to other runnable threads.
    Yielded,
    /// Parked on the gate until notify or timeout.
    Parked,
}

/// The three-stage idle strategy for capture and pool-worker threads:
/// spin for `spin_iters` idle rounds (lowest wakeup latency), yield for
/// the next `yield_iters` rounds (lets co-scheduled threads run), then
/// park on a [`WakeupGate`] with a bounded timeout (stops burning the
/// CPU other threads need). Any sign of work resets to the spin stage.
///
/// Thresholds come from [`WireCapConfig`]: `spin_iters`, `yield_iters`,
/// `park_timeout_ns`.
#[derive(Debug)]
pub struct AdaptivePoller {
    spin_iters: u32,
    yield_iters: u32,
    park_timeout: Duration,
    idle_rounds: u32,
}

impl AdaptivePoller {
    /// A poller with explicit stage thresholds.
    pub fn new(spin_iters: u32, yield_iters: u32, park_timeout_ns: u64) -> Self {
        AdaptivePoller {
            spin_iters,
            yield_iters,
            park_timeout: Duration::from_nanos(park_timeout_ns.max(1)),
            idle_rounds: 0,
        }
    }

    /// A poller using the thresholds in `cfg`.
    pub fn from_config(cfg: &WireCapConfig) -> Self {
        Self::new(cfg.spin_iters, cfg.yield_iters, cfg.park_timeout_ns)
    }

    /// Work happened: fall back to the spin stage.
    pub fn reset(&mut self) {
        self.idle_rounds = 0;
    }

    /// A claim (or steal) CAS race was lost: work exists, a peer just
    /// took it. Re-spinning from zero would burn the full spin budget
    /// re-contending the same cache line, so jump straight to the
    /// yield stage — and pin there: contention alone never escalates
    /// to a park, only a truly empty stream may. With a zero yield
    /// budget this instead holds one round short of the park stage.
    pub fn lost_race(&mut self) {
        let hi = self
            .spin_iters
            .saturating_add(self.yield_iters)
            .saturating_sub(1);
        let lo = self.spin_iters.min(hi);
        self.idle_rounds = self.idle_rounds.clamp(lo, hi.max(lo));
    }

    /// One idle round with the park timeout capped at `max_park`
    /// (capture threads holding a non-empty partial chunk cap the park
    /// at the remaining capture timeout so the partial-delivery
    /// deadline cannot be overslept). Take `ticket` from the gate
    /// *before* the final work check.
    pub fn idle_capped(&mut self, gate: &WakeupGate, ticket: u64, max_park: Duration) -> IdleStep {
        let step = if self.idle_rounds < self.spin_iters {
            std::hint::spin_loop();
            IdleStep::Spun
        } else if self.idle_rounds < self.spin_iters.saturating_add(self.yield_iters) {
            std::thread::yield_now();
            IdleStep::Yielded
        } else {
            gate.park(ticket, self.park_timeout.min(max_park));
            IdleStep::Parked
        };
        self.idle_rounds = self.idle_rounds.saturating_add(1);
        step
    }

    /// One idle round: spin, yield, or park according to how many idle
    /// rounds have passed since the last [`reset`](Self::reset).
    pub fn idle(&mut self, gate: &WakeupGate, ticket: u64) -> IdleStep {
        self.idle_capped(gate, ticket, Duration::MAX)
    }
}

// ---------------------------------------------------------------------
// Core affinity
// ---------------------------------------------------------------------

/// Pins the calling thread to `core`, returning whether the kernel
/// accepted the mask. Always `false` (a no-op) on platforms without
/// `sched_setaffinity`, so `pin_threads` configurations degrade to
/// unpinned threads instead of failing to build or run.
pub fn pin_to_core(core: usize) -> bool {
    affinity::pin(core)
}

/// The number of cores available to this process (≥ 1).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod affinity {
    /// 1024-bit CPU mask, matching the kernel's default `cpu_set_t`.
    const MASK_WORDS: usize = 16;

    // Declared directly so the workspace needs no `libc` crate: std
    // already links the platform C library, which exports this symbol.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub(super) fn pin(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] |= 1u64 << (core % 64);
        // SAFETY: the mask buffer outlives the call and the size passed
        // matches it; pid 0 targets the calling thread.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    pub(super) fn pin(_core: usize) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Consumer pool
// ---------------------------------------------------------------------

/// One delivered chunk as a pool handler sees it: the borrowed packet
/// view plus delivery metadata. The pool recycles the chunk to its home
/// pool when the handler returns; the borrow rules make it impossible
/// for packet slices to escape that window.
pub struct PoolDelivery<'a> {
    chunk: &'a LiveChunk,
    view: ChunkView<'a>,
    worker: usize,
    stolen: bool,
}

impl<'a> PoolDelivery<'a> {
    /// The packets of the chunk, borrowed zero-copy from its home arena.
    pub fn view(&self) -> &ChunkView<'a> {
        &self.view
    }

    /// The chunk handle (home queue, offload flag, length).
    pub fn chunk(&self) -> &LiveChunk {
        self.chunk
    }

    /// Packets in the chunk.
    pub fn len(&self) -> usize {
        self.chunk.len()
    }

    /// True if the chunk holds no packets.
    pub fn is_empty(&self) -> bool {
        self.chunk.is_empty()
    }

    /// The queue whose pool owns the chunk's cells.
    pub fn home(&self) -> usize {
        self.chunk.home()
    }

    /// The pool worker index processing this chunk.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Whether this chunk was stolen from another worker's deque
    /// (as opposed to drained from one of this worker's own queues).
    pub fn stolen(&self) -> bool {
        self.stolen
    }

    /// Seal-order sequence number within the chunk's home queue. In
    /// in-order concurrent mode, deliveries for one home queue carry
    /// strictly increasing values.
    pub fn seq(&self) -> u64 {
        self.chunk.seq()
    }
}

impl std::fmt::Debug for PoolDelivery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolDelivery")
            .field("home", &self.home())
            .field("len", &self.len())
            .field("worker", &self.worker)
            .field("stolen", &self.stolen)
            .finish()
    }
}

/// What one pool worker did over its lifetime, returned by
/// [`ConsumerPool::join`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolWorkerReport {
    /// The worker's index in the pool.
    pub worker: usize,
    /// Chunks processed (drained from owned queues plus stolen).
    pub chunks: u64,
    /// Packets delivered to the handler.
    pub packets: u64,
    /// Of the processed chunks, how many were stolen from other
    /// workers' deques.
    pub stolen_chunks: u64,
    /// Times the worker parked on the delivery gate.
    pub parks: u64,
}

/// The handler a [`ConsumerPool`] runs for every delivered chunk.
pub type PoolHandler = dyn Fn(PoolDelivery<'_>) + Send + Sync;

/// N worker threads consuming the queues of one buddy group, with
/// chunk-granularity work stealing between workers (see the module
/// docs). Create one with `LiveWireCap::consumer_pool`; the pool
/// assumes it is the group's only consumer — do not also attach
/// `LiveConsumer`s to the same queues.
pub struct ConsumerPool {
    handles: Vec<JoinHandle<PoolWorkerReport>>,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
}

impl std::fmt::Debug for ConsumerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsumerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

struct WorkerCtx {
    worker: usize,
    /// Queues this worker drains (a disjoint shard of the group).
    owned: Vec<usize>,
    /// Every queue of the group (exit condition scans all of them).
    members: Vec<usize>,
    shared: Arc<Shared>,
    cfg: WireCapConfig,
    stop: Arc<AtomicBool>,
    stealers: Vec<DequeStealer<LiveChunk>>,
    handler: Arc<PoolHandler>,
    pin_core: Option<usize>,
}

impl ConsumerPool {
    pub(crate) fn spawn(
        shared: Arc<Shared>,
        cfg: WireCapConfig,
        group: &BuddyGroup,
        workers: usize,
        handler: Arc<PoolHandler>,
    ) -> Self {
        assert!(workers > 0, "a consumer pool needs at least one worker");
        let queues = shared.rings.len();
        for &q in group.members() {
            assert!(q < queues, "group queue {q} out of range");
        }
        let concurrent = shared.claims.is_some();
        // Size each deque to every chunk that exists across the group:
        // an owner push can then never find the deque full. Concurrent
        // mode claims straight off the shared queues and never touches
        // the deques, so keep them token-sized.
        let deque_cap = if concurrent {
            2
        } else {
            (group.members().len().max(1)) * cfg.r
        };
        let mut owners = Vec::with_capacity(workers);
        let mut stealers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (o, s) = steal_deque::<LiveChunk>(deque_cap);
            owners.push(o);
            stealers.push(s);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let cores = available_cores();
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(w, deque)| {
                let ctx = WorkerCtx {
                    worker: w,
                    owned: group.worker_shard(w, workers),
                    members: group.members().to_vec(),
                    shared: Arc::clone(&shared),
                    cfg,
                    stop: Arc::clone(&stop),
                    stealers: stealers.clone(),
                    handler: Arc::clone(&handler),
                    // Workers sit after the capture threads in the core
                    // map so, with enough cores, capture and delivery
                    // never compete for the same one.
                    pin_core: cfg.pin_threads.then_some((queues + w) % cores),
                };
                std::thread::Builder::new()
                    .name(format!("wirecap-pool-{w}"))
                    .spawn(move || {
                        if ctx.shared.claims.is_some() {
                            drop(deque);
                            concurrent_worker_loop(ctx)
                        } else {
                            worker_loop(ctx, deque)
                        }
                    })
                    .expect("spawning pool worker")
            })
            .collect();
        ConsumerPool {
            handles,
            shared,
            stop,
        }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every worker to finish naturally — they exit when all
    /// of the group's rings are closed and drained (i.e. after the
    /// engine's capture threads have shut down).
    pub fn join(mut self) -> Vec<PoolWorkerReport> {
        self.handles
            .drain(..)
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    }

    /// Forces the workers down without waiting for end-of-stream.
    /// Chunks still queued are recycled home and counted as delivery
    /// drops, preserving slot and packet conservation.
    pub fn stop(self) -> Vec<PoolWorkerReport> {
        self.stop.store(true, Ordering::SeqCst);
        self.shared.delivery_gate.notify();
        self.join()
    }
}

impl Drop for ConsumerPool {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        self.shared.delivery_gate.notify();
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                eprintln!("wirecap: pool worker panicked during drop");
            }
        }
    }
}

/// Charges wall time to one pool worker's time-state buckets
/// (`telemetry::WorkerState`, DESIGN.md §4.14). Constructed only when
/// span tracing is on, so the unprofiled hot path pays nothing — not
/// even the clock reads.
struct WorkerProfiler {
    state: Arc<WorkerState>,
    last_ns: u64,
}

impl WorkerProfiler {
    fn new(state: Arc<WorkerState>) -> Self {
        WorkerProfiler {
            state,
            last_ns: clock::mono_ns(),
        }
    }

    /// Charges the wall time since the previous charge to state `s`.
    fn charge(&mut self, s: WorkerTimeState) {
        let now = clock::mono_ns();
        self.state.account(s, now.saturating_sub(self.last_ns));
        self.last_ns = now;
    }

    /// Charges an idle step to its matching bucket.
    fn charge_idle(&mut self, step: IdleStep) {
        self.charge(match step {
            IdleStep::Spun => WorkerTimeState::Spin,
            IdleStep::Yielded => WorkerTimeState::Yield,
            IdleStep::Parked => WorkerTimeState::Park,
        });
    }
}

/// Builds a worker's profiler when span tracing is enabled.
fn profiler_for(ctx: &WorkerCtx) -> Option<WorkerProfiler> {
    (ctx.cfg.span_sample_n > 0)
        .then(|| WorkerProfiler::new(ctx.shared.tel.register_worker(ctx.worker as u32)))
}

/// Processes one chunk: hands it to the handler, closes the latency
/// interval, recycles the slot home, and tallies delivery telemetry.
///
/// `delivered_ns` is the caller's batch delivery stamp — read once per
/// burst (the moment the batch crossed from the engine to this worker)
/// and shared by every chunk in it, mirroring [`LiveConsumer`]'s
/// per-refill stamp. `0` means the caller had no batch stamp (single
/// chunk off the steal path); the interval then closes against a fresh
/// clock read. Either way the ceiling is one read per chunk, and on
/// the burst paths it is one read per *burst* — the fix for the small-M
/// latency-overhead regression, where chunks seal every few packets
/// and a per-chunk clock read dominates the delivery cost.
fn process_chunk(
    ctx: &WorkerCtx,
    report: &mut PoolWorkerReport,
    mut chunk: LiveChunk,
    stolen: bool,
    delivered_ns: u64,
) {
    let home = chunk.home();
    let len = chunk.len() as u64;
    // Sampled chunk: the handler call is the deliver stage. The
    // acquisition stamps may already be set (claim CAS or ring drain);
    // anything unset collapses to this instant.
    if let Some(span) = chunk.span.as_mut() {
        let now = clock::mono_ns();
        if span.acquire_started_ns == 0 {
            span.acquire_started_ns = now;
        }
        if span.acquired_ns == 0 {
            span.acquired_ns = now;
        }
        span.deliver_start_ns = now;
    }
    {
        let view = ctx.shared.arenas[home].view(&chunk.seal);
        (ctx.handler)(PoolDelivery {
            chunk: &chunk,
            view,
            worker: ctx.worker,
            stolen,
        });
    }
    if let Some(span) = chunk.span.as_mut() {
        span.deliver_end_ns = clock::mono_ns();
    }
    report.chunks += 1;
    report.packets += len;
    // Multi-writer delivery accounting: any worker may recycle any
    // group queue's chunks, so this uses the fetch-add counters, same
    // as offloaded-chunk recycling does from foreign consumers.
    let app = &ctx.shared.tel.queue(home).app;
    app.delivered_packets.add(len);
    app.recycled_chunks.add(1);
    // Latency histograms are single-writer: each worker records into
    // its *first owned* queue's shard (shards are disjoint across
    // workers; queue-less workers skip the sample).
    if let Some(&pq) = ctx.owned.first() {
        let sealed_ns = chunk.seal.sealed_ns();
        if sealed_ns > 0 {
            let now = if delivered_ns > 0 {
                delivered_ns
            } else {
                clock::mono_ns()
            };
            ctx.shared
                .tel
                .queue(pq)
                .app
                .latency_ns
                .record(now.saturating_sub(sealed_ns));
        }
    }
    // Sampled chunk: decompose the interval into stages (same shard
    // discipline as `latency_ns`) and retire the span to the shared
    // ring, which is lock-protected and safe from any worker.
    if let Some(span) = chunk.span {
        let rec = SpanRecord::from_stamps(
            chunk.home,
            chunk.seq,
            len as u32,
            Some(ctx.worker as u32),
            stolen,
            &span,
            span.deliver_end_ns,
        );
        if let Some(&pq) = ctx.owned.first() {
            let app = &ctx.shared.tel.queue(pq).app;
            app.stage_backend_ns.record(rec.stage_backend_ns);
            app.stage_queue_wait_ns.record(rec.stage_queue_wait_ns);
            app.stage_claim_ns.record(rec.stage_claim_ns);
            app.stage_reorder_ns.record(rec.stage_reorder_ns);
            app.stage_deliver_ns.record(rec.stage_deliver_ns);
        }
        ctx.shared.tel.spans().push(rec);
    }
    recycle_home(&ctx.shared, chunk);
}

/// Returns a chunk's sealed slot to its home pool (never full: only R
/// slots exist per queue; spin defensively anyway).
fn recycle_home(shared: &Shared, chunk: LiveChunk) {
    let home = chunk.home();
    let mut seal = chunk.seal;
    while let Err(back) = shared.recycle[home].push(seal) {
        seal = back;
        std::thread::yield_now();
    }
    // Wake a capture thread parked on pool exhaustion (backpressure
    // leaves packets in the NIC ring until a slot comes home).
    shared.capture_gate.notify();
}

/// Recycles a chunk that will never reach the handler (forced stop),
/// accounting its packets as delivery drops.
fn drop_chunk(shared: &Shared, chunk: LiveChunk) {
    let home = chunk.home();
    let tel = shared.tel.queue(home);
    tel.app.recycled_chunks.add(1);
    tel.cap.delivery_drop_packets.add(chunk.len() as u64);
    recycle_home(shared, chunk);
}

fn worker_loop(ctx: WorkerCtx, mut deque: DequeOwner<LiveChunk>) -> PoolWorkerReport {
    if let Some(core) = ctx.pin_core {
        pin_to_core(core);
    }
    let mut report = PoolWorkerReport {
        worker: ctx.worker,
        ..Default::default()
    };
    let mut poller = AdaptivePoller::from_config(&ctx.cfg);
    let mut scratch: Vec<LiveChunk> = Vec::new();
    let producers = ctx.shared.rings.len();
    // The gauge shard this worker publishes its deque occupancy to.
    let primary = ctx.owned.first().copied();
    let mut prof = profiler_for(&ctx);
    loop {
        // Forced stop preempts further processing: everything still
        // queued for this worker — its owned queues' rings and its own
        // deque — goes home as delivery drops, so slot and packet
        // conservation survive a teardown mid-stream. (Chunks in other
        // workers' deques are theirs to drain the same way.)
        if ctx.stop.load(Ordering::SeqCst) {
            for &q in &ctx.owned {
                for p in 0..producers {
                    while ctx.shared.rings[q][p].pop_batch(&mut scratch, MAX_BATCH) > 0 {}
                }
            }
            for chunk in scratch.drain(..) {
                drop_chunk(&ctx.shared, chunk);
            }
            while let Some(chunk) = deque.pop() {
                drop_chunk(&ctx.shared, chunk);
            }
            break;
        }

        let mut progressed = false;

        // 1. Drain owned queues' rings into the local deque. In
        // fast-recycle mode (`CacheResident` tuning) the drain is
        // bounded at the plan's recycle depth: once the deque backlog
        // reaches the bound the worker stops claiming new chunks and
        // the burst below recycles what it holds first — sealed cells
        // go home while still cache-warm instead of cooling in a long
        // backlog. Chunks left on the rings stay the producers'
        // (bounded) inventory; nothing is lost, only deferred.
        let depth = ctx.shared.recycle_depth;
        let mut budget = if depth > 0 {
            depth.saturating_sub(deque.len())
        } else {
            usize::MAX
        };
        'drain: for &q in &ctx.owned {
            for p in 0..producers {
                if budget == 0 {
                    break 'drain;
                }
                let n = ctx.shared.rings[q][p].pop_batch(&mut scratch, MAX_BATCH.min(budget));
                budget -= n;
                if n > 0 {
                    progressed = true;
                }
            }
        }
        // The drain is the acquisition start for sampled chunks: from
        // here until a worker pops them for processing they wait in
        // the deque (or a thief's hands) — the claim stage. One lazy
        // clock read covers the whole drained batch.
        let mut drain_ns = 0u64;
        for chunk in scratch.iter_mut() {
            if let Some(span) = chunk.span.as_mut() {
                if drain_ns == 0 {
                    drain_ns = clock::mono_ns();
                }
                span.acquire_started_ns = drain_ns;
            }
        }
        for chunk in scratch.drain(..) {
            if let Err(back) = deque.push(chunk) {
                // Sized to every chunk in existence, so this is
                // unreachable; process inline rather than lose a chunk.
                process_chunk(&ctx, &mut report, back, false, 0);
            }
        }
        if let Some(p) = prof.as_mut() {
            p.charge(WorkerTimeState::Claim);
        }
        if let Some(pq) = primary {
            ctx.shared
                .tel
                .queue(pq)
                .pool
                .steal_queue_len
                .set(deque.len() as u64);
        }

        // 2. Process a bounded burst from the local deque (LIFO:
        // cache-warm chunks first; thieves take the oldest). One lazy
        // clock read stamps the delivery moment for the whole burst.
        let mut burst_ns = 0u64;
        for _ in 0..PROCESS_BURST {
            match deque.pop() {
                Some(chunk) => {
                    if burst_ns == 0 {
                        burst_ns = clock::mono_ns();
                    }
                    process_chunk(&ctx, &mut report, chunk, false, burst_ns);
                    progressed = true;
                }
                None => break,
            }
        }
        if let Some(p) = prof.as_mut() {
            p.charge(WorkerTimeState::Deliver);
        }

        // 3. Own queues quiet: steal the oldest chunk from a busy
        // worker — delivery-side rebalancing before the capture queue
        // ever climbs toward the offload threshold.
        if !progressed {
            for i in 1..ctx.stealers.len() {
                let victim = (ctx.worker + i) % ctx.stealers.len();
                match ctx.stealers[victim].steal() {
                    Steal::Success(chunk) => {
                        let pool_tel = &ctx.shared.tel.queue(chunk.home()).pool;
                        pool_tel.steal_out_chunks.inc();
                        pool_tel.stolen_packets.add(chunk.len() as u64);
                        if let Some(pq) = primary {
                            ctx.shared.tel.queue(pq).pool.steal_in_chunks.inc();
                        } else {
                            // Queue-less workers attribute steal_in to
                            // the victim chunk's home so Σin == Σout
                            // still holds engine-wide.
                            ctx.shared
                                .tel
                                .queue(chunk.home())
                                .pool
                                .steal_in_chunks
                                .inc();
                        }
                        report.stolen_chunks += 1;
                        process_chunk(&ctx, &mut report, chunk, true, 0);
                        progressed = true;
                        break;
                    }
                    Steal::Retry => {
                        // Contention means work exists; stay hot.
                        progressed = true;
                        break;
                    }
                    Steal::Empty => continue,
                }
            }
            if let Some(p) = prof.as_mut() {
                p.charge(WorkerTimeState::Steal);
            }
        }

        if progressed {
            poller.reset();
            continue;
        }

        // Take the gate ticket *before* the final end-of-stream check:
        // any chunk published (or ring closed) after this point turns
        // the park into an immediate return.
        let ticket = ctx.shared.delivery_gate.ticket();
        let drained = ctx.members.iter().all(|&q| {
            (0..producers).all(|p| {
                let r = &ctx.shared.rings[q][p];
                r.is_closed() && r.is_empty()
            })
        });
        if drained && deque.is_empty() {
            // Residual chunks in *other* workers' deques are theirs:
            // every worker drains its own deque before exiting.
            break;
        }
        let step = poller.idle(&ctx.shared.delivery_gate, ticket);
        if let Some(p) = prof.as_mut() {
            p.charge_idle(step);
        }
        if step == IdleStep::Parked {
            report.parks += 1;
            // Every queue this worker services loses its consumer for
            // the park's duration, so each owned queue's shard counts
            // it (see `PoolSide::worker_parks`).
            for &q in &ctx.owned {
                ctx.shared.tel.queue(q).pool.worker_parks.inc();
            }
        }
    }
    if let Some(pq) = primary {
        ctx.shared.tel.queue(pq).pool.steal_queue_len.set(0);
    }
    report
}

/// COREC-style worker loop: every worker claims sealed chunks straight
/// off the group's shared [`ClaimQueue`]s, so N workers drain even a
/// single hot queue concurrently. No deques and no stealing — the
/// claim CAS *is* the load balancer — so `Σ steal_in == Σ steal_out ==
/// 0` holds trivially in this mode.
fn concurrent_worker_loop(ctx: WorkerCtx) -> PoolWorkerReport {
    if let Some(core) = ctx.pin_core {
        pin_to_core(core);
    }
    let mut report = PoolWorkerReport {
        worker: ctx.worker,
        ..Default::default()
    };
    let mut poller = AdaptivePoller::from_config(&ctx.cfg);
    let claims = ctx
        .shared
        .claims
        .as_deref()
        .expect("concurrent worker loop without claim queues");
    let reorder = ctx.shared.reorder.as_deref();
    let members = ctx.members.len();
    let mut prof = profiler_for(&ctx);
    loop {
        // Forced stop: drain every member claim queue home as delivery
        // drops, then sweep the reorder buffers for stranded chunks.
        // Each worker runs this sweep *after* its own last insert, so a
        // chunk it parked behind a gap is reclaimed by its own sweep
        // even if the other workers swept earlier.
        if ctx.stop.load(Ordering::SeqCst) {
            stop_drain_concurrent(&ctx, claims, reorder);
            break;
        }

        let mut claimed = false;
        let mut contended = false;
        // Fast-recycle mode caps the per-queue claim burst at the
        // recycle depth: a worker turns each claimed chunk around
        // (deliver + recycle home) within a bounded window before
        // scanning for more, instead of monopolizing one queue's
        // cursor for a full burst while sealed cells cool.
        let burst = if ctx.shared.recycle_depth > 0 {
            PROCESS_BURST.min(ctx.shared.recycle_depth)
        } else {
            PROCESS_BURST
        };
        for i in 0..members {
            // Rotate the scan start per worker so N workers don't all
            // hammer the same queue's claim cursor first.
            let q = ctx.members[(ctx.worker + i) % members];
            // Delivery stamp shared by the whole burst (lazy: no clock
            // read on an empty scan), as in `worker_loop`'s burst.
            let mut burst_ns = 0u64;
            for _ in 0..burst {
                match claims[q].try_claim() {
                    Claim::Claimed(mut chunk) => {
                        claimed = true;
                        if burst_ns == 0 {
                            burst_ns = clock::mono_ns();
                        }
                        // The winning CAS is the whole acquisition in
                        // concurrent mode (the claim stage is the CAS
                        // itself); reorder-buffer dwell then lands in
                        // the reorder stage.
                        if let Some(span) = chunk.span.as_mut() {
                            span.acquire_started_ns = burst_ns;
                            span.acquired_ns = burst_ns;
                        }
                        deliver_claimed(&ctx, &mut report, reorder, chunk, burst_ns);
                    }
                    Claim::Contended => {
                        ctx.shared.tel.queue(q).pool.claim_contention.inc();
                        contended = true;
                        break;
                    }
                    Claim::Empty => break,
                }
            }
        }
        if let Some(p) = prof.as_mut() {
            // The claim scan delivers inline, so a round that claimed
            // anything is deliver time; an empty round is claim time.
            p.charge(if claimed {
                WorkerTimeState::Deliver
            } else {
                WorkerTimeState::Claim
            });
        }
        if claimed {
            poller.reset();
            continue;
        }
        if contended {
            // Lost the claim race only: work exists and a peer has it.
            // Skip the spin budget (re-spinning re-contends the same
            // cursor line) but never park from contention alone.
            poller.lost_race();
            let ticket = ctx.shared.delivery_gate.ticket();
            let step = poller.idle(&ctx.shared.delivery_gate, ticket);
            if let Some(p) = prof.as_mut() {
                p.charge_idle(step);
            }
            continue;
        }

        // Ticket before the end-of-stream check, as in worker_loop: a
        // publish after this point turns the park into a no-op.
        let ticket = ctx.shared.delivery_gate.ticket();
        let drained = ctx
            .members
            .iter()
            .all(|&q| claims[q].is_closed() && claims[q].is_empty())
            && reorder.is_none_or(|ro| ctx.members.iter().all(|&q| ro[q].is_empty()));
        if drained {
            // Any chunk a peer has claimed but not yet delivered is
            // that peer's to deliver (or, in in-order mode, to insert
            // and pump — the inserting worker always pumps, so no gap
            // survives a natural end-of-stream).
            break;
        }
        let step = poller.idle(&ctx.shared.delivery_gate, ticket);
        if let Some(p) = prof.as_mut() {
            p.charge_idle(step);
        }
        if step == IdleStep::Parked {
            report.parks += 1;
            // As in `worker_loop`: every owned queue's shard counts
            // the park, not just the first one.
            for &q in &ctx.owned {
                ctx.shared.tel.queue(q).pool.worker_parks.inc();
            }
        }
    }
    report
}

/// Delivers one claimed chunk: straight to the handler in unordered
/// mode, or through the home queue's reorder buffer in in-order mode.
fn deliver_claimed(
    ctx: &WorkerCtx,
    report: &mut PoolWorkerReport,
    reorder: Option<&[ReorderBuffer<LiveChunk>]>,
    chunk: LiveChunk,
    delivered_ns: u64,
) {
    let Some(ro) = reorder else {
        process_chunk(ctx, report, chunk, false, delivered_ns);
        return;
    };
    // Claimed after stop was raised: drop instead of parking it in the
    // reorder buffer — ordering is void during teardown, and the stop
    // sweep may already have passed this buffer.
    if ctx.stop.load(Ordering::SeqCst) {
        drop_chunk(&ctx.shared, chunk);
        return;
    }
    let buf = &ro[chunk.home()];
    let home = chunk.home();
    buf.insert(chunk.seq(), chunk);
    let delivered = buf.pump(|_seq, c| process_chunk(ctx, report, c, false, delivered_ns));
    ctx.shared
        .tel
        .queue(home)
        .pool
        .reorder_occupancy
        .set(buf.len());
    if delivered > 0 {
        // Wake peers whose end-of-stream check waits on the reorder
        // buffers draining.
        ctx.shared.delivery_gate.notify();
    }
}

/// Forced-stop sweep for concurrent mode: claim-drain every member
/// queue, then reclaim anything stranded behind a gap in the reorder
/// buffers. Everything goes home as a delivery drop.
fn stop_drain_concurrent(
    ctx: &WorkerCtx,
    claims: &[ClaimQueue<LiveChunk>],
    reorder: Option<&[ReorderBuffer<LiveChunk>]>,
) {
    for &q in &ctx.members {
        loop {
            match claims[q].try_claim() {
                Claim::Claimed(chunk) => drop_chunk(&ctx.shared, chunk),
                Claim::Contended => std::hint::spin_loop(),
                Claim::Empty => break,
            }
        }
    }
    if let Some(ro) = reorder {
        for &q in &ctx.members {
            for chunk in ro[q].take_stranded() {
                drop_chunk(&ctx.shared, chunk);
            }
            ctx.shared.tel.queue(q).pool.reorder_occupancy.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deque_owner_is_lifo_stealer_is_fifo() {
        let (mut owner, stealer) = steal_deque::<u32>(8);
        for v in 0..4 {
            owner.push(v).unwrap();
        }
        assert_eq!(owner.len(), 4);
        assert_eq!(owner.pop(), Some(3), "owner pops newest");
        match stealer.steal() {
            Steal::Success(v) => assert_eq!(v, 0, "thief takes oldest"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(owner.pop(), Some(2));
        assert_eq!(owner.pop(), Some(1));
        assert_eq!(owner.pop(), None);
        assert!(matches!(stealer.steal(), Steal::Empty));
    }

    #[test]
    fn deque_reports_full() {
        let (mut owner, _stealer) = steal_deque::<u32>(2);
        owner.push(1).unwrap();
        owner.push(2).unwrap();
        assert_eq!(owner.push(3), Err(3));
        assert_eq!(owner.pop(), Some(2));
        owner.push(3).unwrap();
    }

    #[test]
    fn deque_drops_leftover_items() {
        // Drop coverage for the `[top, bottom)` cleanup.
        let (mut owner, stealer) = steal_deque::<Arc<u32>>(8);
        let item = Arc::new(7u32);
        owner.push(Arc::clone(&item)).unwrap();
        owner.push(Arc::clone(&item)).unwrap();
        assert_eq!(Arc::strong_count(&item), 3);
        drop(owner);
        drop(stealer);
        assert_eq!(Arc::strong_count(&item), 1, "deque dropped its copies");
    }

    #[test]
    fn concurrent_steals_conserve_items() {
        let (mut owner, stealer) = steal_deque::<u64>(1024);
        let total = 10_000u64;
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let s = stealer.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    let mut empties = 0;
                    while empties < 10_000 {
                        match s.steal() {
                            Steal::Success(v) => {
                                sum += v;
                                empties = 0;
                            }
                            Steal::Retry => empties = 0,
                            Steal::Empty => empties += 1,
                        }
                        if empties > 0 {
                            std::thread::yield_now();
                        }
                    }
                    sum
                })
            })
            .collect();
        let mut own_sum = 0u64;
        let mut next = 1u64;
        while next <= total {
            if owner.push(next).is_ok() {
                next += 1;
            }
            if next.is_multiple_of(7) {
                if let Some(v) = owner.pop() {
                    own_sum += v;
                }
            }
        }
        while let Some(v) = owner.pop() {
            own_sum += v;
        }
        let stolen: u64 = thieves.into_iter().map(|t| t.join().unwrap()).sum();
        // Remaining items (if any) are still in the deque; drain them.
        while let Some(v) = owner.pop() {
            own_sum += v;
        }
        assert_eq!(
            own_sum + stolen,
            total * (total + 1) / 2,
            "every pushed item popped or stolen exactly once"
        );
    }

    #[test]
    fn gate_notify_after_ticket_returns_immediately() {
        let gate = WakeupGate::new();
        let ticket = gate.ticket();
        gate.notify();
        let start = std::time::Instant::now();
        assert!(gate.park(ticket, Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn gate_park_times_out_without_notify() {
        let gate = WakeupGate::new();
        let ticket = gate.ticket();
        assert!(!gate.park(ticket, Duration::from_millis(10)));
    }

    #[test]
    fn gate_wakes_parked_thread() {
        let gate = Arc::new(WakeupGate::new());
        let g = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let ticket = g.ticket();
            g.park(ticket, Duration::from_secs(10))
        });
        while gate.parked() == 0 {
            std::thread::yield_now();
        }
        gate.notify();
        assert!(h.join().unwrap(), "woken by notify, not timeout");
    }

    #[test]
    fn poller_escalates_spin_yield_park() {
        let gate = WakeupGate::new();
        let mut p = AdaptivePoller::new(2, 2, 1_000_000);
        let steps: Vec<_> = (0..5).map(|_| p.idle(&gate, gate.ticket())).collect();
        assert_eq!(
            steps,
            vec![
                IdleStep::Spun,
                IdleStep::Spun,
                IdleStep::Yielded,
                IdleStep::Yielded,
                IdleStep::Parked
            ]
        );
        p.reset();
        assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Spun);
    }

    #[test]
    fn lost_race_skips_spin_but_never_parks() {
        let gate = WakeupGate::new();
        let mut p = AdaptivePoller::new(4, 2, 1_000_000);
        // From a fresh reset a lost race jumps straight past the spin
        // budget into the yield stage.
        p.lost_race();
        assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Yielded);
        // Repeated lost races hold the poller at the yield stage:
        // contention alone must never escalate to a park.
        for _ in 0..10 {
            p.lost_race();
            assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Yielded);
        }
        // From deep in the park stage a lost race drops *back* to
        // yield — work clearly exists, parking would add latency.
        p.reset();
        for _ in 0..20 {
            p.idle(&gate, gate.ticket());
        }
        p.lost_race();
        assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Yielded);
        // Real progress still resets to the spin stage.
        p.reset();
        assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Spun);
    }

    #[test]
    fn lost_race_with_zero_yield_budget_stays_short_of_park() {
        let gate = WakeupGate::new();
        let mut p = AdaptivePoller::new(2, 0, 1_000_000);
        // No yield stage to land in: hold one round short of the park
        // threshold so a contended worker still never parks.
        p.lost_race();
        assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Spun);
        p.lost_race();
        assert_eq!(p.idle(&gate, gate.ticket()), IdleStep::Spun);
    }

    #[test]
    fn pinning_is_safe_to_call() {
        // Accepts or cleanly refuses; must never crash, even for cores
        // beyond the machine (or on non-Linux builds, where it is a
        // no-op returning false).
        let _ = pin_to_core(0);
        assert!(!pin_to_core(usize::MAX));
        assert!(available_cores() >= 1);
    }
}
