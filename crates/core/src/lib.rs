//! # wirecap — the WireCAP packet capture engine
//!
//! A from-scratch Rust reproduction of *WireCAP: a Novel Packet Capture
//! Engine for Commodity NICs in High-speed Networks* (Wu & DeMar, ACM IMC
//! 2014). WireCAP provides lossless zero-copy packet capture and delivery
//! by combining two mechanisms:
//!
//! * the **ring-buffer-pool** ([`pool`]): each NIC receive queue gets a
//!   large kernel pool of R packet-buffer chunks of M cells; the receive
//!   ring is divided into descriptor segments of M descriptors, each
//!   attached to a chunk. Chunks cycle `free → attached → captured →
//!   free`, giving buffering far beyond the ring itself and absorbing
//!   short-term bursts (§3.2.1);
//! * **buddy-group-based offloading** ([`buddy`]): receive queues owned
//!   by one application form a buddy group; when a queue's user-space
//!   capture queue exceeds a threshold T, freshly captured chunks are
//!   placed on an idle or less-busy buddy's capture queue, resolving
//!   long-term load imbalance while preserving application logic (§3.2.1).
//!
//! The crate offers the engine twice:
//!
//! * [`engine::WireCapEngine`] — the simulation model used by every
//!   figure reproduction; it implements the same
//!   [`engines::CaptureEngine`] trait as the baseline engines;
//! * [`live`] — the same objects on real OS threads (crossbeam queues,
//!   real packets) against [`nicsim::livenic::LiveNic`], with a
//!   Libpcap-compatible delivery surface ([`pcap::PacketSource`]).
//!
//! Zero-copy is load-bearing, not aspirational: chunk hand-off moves only
//! `{nic_id, ring_id, chunk_id}` metadata, and the only packet-byte copy
//! in the engine — the capture-timeout partial-chunk copy of §3.2.1 — is
//! metered and asserted in tests.
//!
//! ```
//! use engines::CaptureEngine;
//! use sim::SimTime;
//! use wirecap::{WireCapConfig, WireCapEngine};
//!
//! // WireCAP-B-(256, 100) against the paper's heavy consumer (x = 300):
//! // a 10 000-packet wire-rate burst sits inside the R·M pool and is
//! // absorbed losslessly, where a bare ring would have dropped most of it.
//! let mut engine = WireCapEngine::new(1, WireCapConfig::basic(256, 100, 300));
//! for i in 0..10_000u64 {
//!     engine.on_arrival(SimTime(i * 67), 0, 64); // ≈ 14.9 Mp/s
//! }
//! engine.finish(SimTime(10_000_000_000));
//! let stats = engine.queue_stats(0);
//! assert_eq!(stats.capture_drops, 0);
//! assert_eq!(stats.delivered, 10_000);
//! ```

#![deny(missing_docs)]
// Unsafe code is denied everywhere except the audited hot-path modules
// ([`arena`], [`spsc`], [`claim`], and [`steal`]'s deque/affinity
// internals), which opt back in with module-level
// `#[allow(unsafe_code)]` around a safe public API.
#![deny(unsafe_code)]

pub mod arena;
pub mod backend;
pub mod buddy;
pub mod chunk;
pub mod claim;
pub mod config;
pub mod engine;
pub mod live;
pub mod pool;
pub mod spsc;
pub mod steal;
pub mod steering;
pub mod tx;
pub mod workqueue;

pub use arena::{ChunkArena, ChunkView, PacketRef};
pub use backend::{
    BackendError, BackendQueue, CaptureBackend, LiveWireCapBuilder, LoopbackBackend, NicSimBackend,
    NicSimQueue, QueueAccounting, RxFrame,
};
pub use buddy::BuddyGroup;
pub use chunk::{ChunkId, ChunkMeta, ChunkState};
pub use claim::{Claim, ClaimQueue, ReorderBuffer};
pub use config::{ConfigError, TuningMode, TuningPlan, WireCapConfig, WireCapConfigBuilder};
pub use engine::WireCapEngine;
pub use live::{ChunkLens, LiveChunk, LiveConsumer, LiveWireCap, RegistryHandle};
pub use pool::RingBufferPool;
pub use spsc::{BatchRing, MAX_BATCH};
pub use steal::{
    pin_to_core, steal_deque, AdaptivePoller, ConsumerPool, DequeOwner, DequeStealer, IdleStep,
    PoolDelivery, PoolHandler, PoolWorkerReport, Steal, WakeupGate,
};
