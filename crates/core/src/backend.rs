//! The pluggable capture-backend boundary (DESIGN.md §4.13).
//!
//! WireCAP's contribution — ring-buffer-pool capture with chunk recycle
//! and buddy-group offload — is backend-agnostic: the engine needs only
//! three operations from whatever feeds it packets. This module names
//! that boundary so `nicsim::LiveNic` becomes *one* implementation (the
//! [`NicSimBackend`] adapter here) rather than a hard dependency, and a
//! descriptor-ring backend (`shmring`) or a real NIC driver can slot in
//! behind the same engine:
//!
//! 1. **Poll** ([`BackendQueue::poll_batch`]): lend up to `max` received
//!    frames to a sink callback, borrowed straight from backend-owned
//!    memory — the engine copies each frame into its arena cell inside
//!    the callback, so the backend never allocates per packet and the
//!    frame's backing store is released on the very next step;
//! 2. **Recycle** ([`BackendQueue::recycle`]): return the polled frames'
//!    backing slots to the backend. For a descriptor ring this is the
//!    RDT advance that lets the producer/DMA reuse the slots — a backend
//!    may stall (never lose) frames if the engine forgets it;
//! 3. **Introspect** ([`CaptureBackend::queue_count`] /
//!    [`CaptureBackend::stop`] / [`BackendQueue::accounting`]): topology,
//!    teardown, and the NIC-side drop accounting that the telemetry
//!    snapshot folds into every [`QueueTelemetry`].
//!
//! Dispatch is `Arc<dyn CaptureBackend>`: the engine makes two virtual
//! calls per poll batch (≤ 256 packets) plus one indirect call per
//! frame through the sink — measured against the monomorphized direct
//! path by the `backend_dispatch` entry in `BENCH_hotpath.json` and
//! gated ≤ 2% by `scripts/check.sh`.
//!
//! Error handling replaces the old mix of `Option`, panics, and silent
//! drops: poll/recycle/stop return [`BackendError`]s, and the engine
//! maps them into the drop-accounting vocabulary of DESIGN.md §4.8 —
//! frames a backend loses internally surface as `nic_drop_packets`
//! through [`BackendQueue::accounting`]; a fatal poll/recycle error
//! terminates that queue's capture thread through the normal
//! close-and-flush path, so the conservation laws still hold over
//! everything that was captured.

use crate::buddy::BuddyGroups;
use crate::config::WireCapConfig;
use crate::live::LiveWireCap;
use netproto::Packet;
use nicsim::livenic::{LiveNic, LiveQueue};
use std::fmt;
use std::sync::Arc;
use telemetry::QueueTelemetry;

/// Why a backend operation failed. Returned by the poll/recycle/stop
/// paths instead of panicking or silently dropping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The backend was torn down while the operation was in flight.
    Stopped,
    /// A protocol invariant of the backend's ring was violated — a
    /// corrupt descriptor, or a recycle of more frames than were
    /// delivered (the recycle ownership rule of DESIGN.md §4.13).
    Corrupt(&'static str),
    /// An I/O error from the backend's transport (device file, socket,
    /// shared-memory segment).
    Io(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Stopped => write!(f, "backend stopped"),
            BackendError::Corrupt(what) => write!(f, "backend ring corrupt: {what}"),
            BackendError::Io(e) => write!(f, "backend I/O error: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// One received frame, lent to the poll sink for the duration of the
/// callback. The payload borrows backend-owned memory (a descriptor
/// ring's buffer slot, a popped packet's bytes); it is only valid until
/// the sink returns, which is why the engine copies it into an arena
/// cell there and then.
#[derive(Debug, Clone, Copy)]
pub struct RxFrame<'a> {
    /// Capture timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Original length on the wire (the payload may be snapped shorter).
    pub wire_len: u32,
    /// The captured bytes, borrowed from the backend.
    pub data: &'a [u8],
}

/// The NIC-side accounting every backend must report identically, so no
/// implementation can skew the offered/dropped bookkeeping. Raw counts
/// go here; the one place they are folded into a [`QueueTelemetry`] is
/// the provided [`BackendQueue::fill_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueAccounting {
    /// Frames the backend accepted into this queue's ring.
    pub received: u64,
    /// Frames the backend lost before the engine could poll them (ring
    /// full — "no receive descriptor in the ready state").
    pub dropped: u64,
    /// Frames currently waiting in the ring.
    pub ring_used: u64,
    /// The ring's capacity in frames.
    pub ring_capacity: u64,
}

/// One receive queue of a capture backend.
///
/// # Contract
///
/// * The engine attaches exactly **one** poller (the queue's capture
///   thread); `poll_batch`/`recycle` are never called concurrently on
///   the same queue. Producer-side concurrency is the backend's
///   business.
/// * Frames are delivered in ring order; a frame lent to the sink must
///   stay valid until the sink returns.
/// * Every successfully polled frame must eventually be [`Self::recycle`]d,
///   and never more than were polled: for descriptor-ring backends the
///   recycle is the RDT/tail advance that returns buffer slots to the
///   producer, so forgetting it stalls the ring and over-recycling
///   corrupts it (an over-recycle returns [`BackendError::Corrupt`]).
pub trait BackendQueue: Send + Sync {
    /// Lends up to `max` received frames to `sink`, in order. Returns
    /// how many frames were delivered; `0` means the ring is currently
    /// empty (poll again, or check [`CaptureBackend::is_stopped`]).
    fn poll_batch(
        &self,
        max: usize,
        sink: &mut dyn FnMut(RxFrame<'_>),
    ) -> Result<usize, BackendError>;

    /// Returns the backing slots of the oldest `frames` polled-but-not-
    /// yet-recycled frames to the backend (the RDT advance). The engine
    /// calls this after each poll batch has been copied into the arena.
    fn recycle(&self, frames: usize) -> Result<(), BackendError>;

    /// Frames waiting in the ring right now (approximate while
    /// producers run). The engine treats `is_stopped() && depth() == 0`
    /// as end-of-stream.
    fn depth(&self) -> usize;

    /// The queue's raw NIC-side accounting. `received + dropped` is the
    /// offered-packet count the conservation laws are checked against.
    fn accounting(&self) -> QueueAccounting;

    /// Folds [`Self::accounting`] into a telemetry snapshot. Provided —
    /// and deliberately *not* overridable per backend field-by-field:
    /// this is the single place NIC-side counts map onto
    /// [`QueueTelemetry`], so every backend reports `offered ==
    /// received + dropped` the same way and none can skew the counters
    /// the conservation proptests rely on.
    fn fill_telemetry(&self, t: &mut QueueTelemetry) {
        let a = self.accounting();
        t.offered_packets = a.received + a.dropped;
        t.nic_drop_packets = a.dropped;
        t.ring_used = a.ring_used;
        t.ring_ready = a.ring_capacity.saturating_sub(a.ring_used);
    }
}

/// A packet source the live engine can capture from: a set of receive
/// queues plus stop/teardown introspection. Implementations:
/// [`NicSimBackend`] (the in-memory NIC adapter) and `shmring` (the
/// shared-memory descriptor-ring backend).
pub trait CaptureBackend: Send + Sync {
    /// Short stable name for telemetry and test labels (`"nicsim"`,
    /// `"shmring"`).
    fn name(&self) -> &'static str;

    /// Number of receive queues.
    fn queue_count(&self) -> usize;

    /// Handle to receive queue `q`.
    ///
    /// # Panics
    ///
    /// If `q >= queue_count()`.
    fn queue(&self, q: usize) -> Arc<dyn BackendQueue>;

    /// Stops the packet source; pollers treat this as end-of-stream
    /// once the rings drain. Idempotent.
    fn stop(&self) -> Result<(), BackendError>;

    /// Whether [`Self::stop`] has been called.
    fn is_stopped(&self) -> bool;
}

/// A backend with a software loopback producer: packets can be injected
/// "from the wire" with RSS flow steering. This is what lets the
/// conformance and conservation suites run the *same* test body against
/// every backend — and what hardware backends simply don't implement.
pub trait LoopbackBackend: CaptureBackend {
    /// Steers and enqueues one packet. Returns the queue it landed on,
    /// or `None` if it was dropped (target ring full) — the drop is
    /// counted in that queue's [`QueueAccounting::dropped`].
    fn inject(&self, pkt: Packet) -> Option<usize>;

    /// Injects a slice of packets, steering each. Returns how many
    /// landed.
    fn inject_batch(&self, pkts: &[Packet]) -> u64 {
        pkts.iter()
            .filter(|pkt| self.inject((*pkt).clone()).is_some())
            .count() as u64
    }
}

/// Builds a [`LiveWireCap`] from any backend — the only way to
/// construct a live engine.
///
/// ```
/// use nicsim::livenic::LiveNic;
/// use wirecap::backend::NicSimBackend;
/// use wirecap::buddy::BuddyGroups;
/// use wirecap::live::LiveWireCap;
/// use wirecap::WireCapConfig;
///
/// let nic = LiveNic::new(2, 1024);
/// let engine = LiveWireCap::builder()
///     .backend(NicSimBackend::new(std::sync::Arc::clone(&nic)))
///     .config(WireCapConfig::basic(64, 32, 0))
///     .groups(BuddyGroups::isolated(2))
///     .start();
/// nic.stop();
/// engine.shutdown();
/// ```
#[derive(Default)]
pub struct LiveWireCapBuilder {
    backend: Option<Arc<dyn CaptureBackend>>,
    cfg: Option<WireCapConfig>,
    groups: Option<BuddyGroups>,
}

impl LiveWireCapBuilder {
    /// The packet source to capture from. Required. Concrete backend
    /// handles (`Arc<NicSimBackend>`, `Arc<shmring::ShmRingNic>`, any
    /// `Arc<dyn LoopbackBackend>`) coerce here.
    pub fn backend(mut self, backend: Arc<dyn CaptureBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Engine configuration. Defaults to the paper's standard
    /// environment ([`WireCapConfig::basic`] with M = 256, R = 100).
    pub fn config(mut self, cfg: WireCapConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Buddy-group partition. Defaults to
    /// [`BuddyGroups::isolated`] over the backend's queue count (basic
    /// mode, no offloading).
    pub fn groups(mut self, groups: BuddyGroups) -> Self {
        self.groups = Some(groups);
        self
    }

    /// Starts capture threads for every queue of the backend.
    ///
    /// # Panics
    ///
    /// If no backend was supplied, or the configuration is invalid.
    pub fn start(self) -> LiveWireCap {
        let backend = self
            .backend
            .expect("LiveWireCap::builder() requires .backend(..)");
        let cfg = self
            .cfg
            .unwrap_or_else(|| WireCapConfig::basic(256, 100, 0));
        let groups = self
            .groups
            .unwrap_or_else(|| BuddyGroups::isolated(backend.queue_count()));
        LiveWireCap::start_with(backend, cfg, groups)
    }
}

impl fmt::Debug for LiveWireCapBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LiveWireCapBuilder")
            .field("backend", &self.backend.as_ref().map(|b| b.name()))
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

/// The [`CaptureBackend`] adapter over [`nicsim::livenic::LiveNic`]:
/// the in-memory NIC becomes one backend among several. Frames are
/// lent to the poll sink borrowed from the popped packet's bytes;
/// `recycle` is a no-op because popping an `ArrayQueue` slot already
/// frees it.
#[derive(Debug)]
pub struct NicSimBackend {
    nic: Arc<LiveNic>,
    queues: Vec<Arc<NicSimQueue>>,
}

impl NicSimBackend {
    /// Wraps a live NIC. Keep the `Arc<LiveNic>` for injection; the
    /// returned handle coerces to `Arc<dyn CaptureBackend>` at the
    /// builder.
    pub fn new(nic: Arc<LiveNic>) -> Arc<Self> {
        let queues = (0..nic.queue_count())
            .map(|q| {
                Arc::new(NicSimQueue {
                    queue: nic.queue(q),
                })
            })
            .collect();
        Arc::new(NicSimBackend { nic, queues })
    }

    /// The wrapped NIC.
    pub fn nic(&self) -> &Arc<LiveNic> {
        &self.nic
    }

    /// Concrete (statically dispatched) handle to queue `q`, for
    /// callers that must avoid the vtable — the `backend_dispatch`
    /// benchmark prices the `dyn` path against this one.
    pub fn mono_queue(&self, q: usize) -> Arc<NicSimQueue> {
        Arc::clone(&self.queues[q])
    }
}

impl CaptureBackend for NicSimBackend {
    fn name(&self) -> &'static str {
        "nicsim"
    }

    fn queue_count(&self) -> usize {
        self.queues.len()
    }

    fn queue(&self, q: usize) -> Arc<dyn BackendQueue> {
        Arc::clone(&self.queues[q]) as Arc<dyn BackendQueue>
    }

    fn stop(&self) -> Result<(), BackendError> {
        self.nic.stop();
        Ok(())
    }

    fn is_stopped(&self) -> bool {
        self.nic.is_stopped()
    }
}

impl LoopbackBackend for NicSimBackend {
    fn inject(&self, pkt: Packet) -> Option<usize> {
        self.nic.inject(pkt)
    }

    fn inject_batch(&self, pkts: &[Packet]) -> u64 {
        self.nic.inject_batch(pkts)
    }
}

/// One [`LiveNic`] receive queue behind the [`BackendQueue`] trait.
#[derive(Debug)]
pub struct NicSimQueue {
    queue: Arc<LiveQueue>,
}

impl NicSimQueue {
    /// The monomorphized poll path: identical logic to the trait's
    /// `poll_batch`, statically dispatched with an inlined sink. The
    /// trait impl delegates here; the `backend_dispatch` benchmark
    /// measures this path against the `dyn` one to price the
    /// indirection honestly.
    #[inline]
    pub fn poll_batch_mono<F: FnMut(RxFrame<'_>)>(&self, max: usize, mut sink: F) -> usize {
        let mut n = 0;
        while n < max {
            match self.queue.pop() {
                Some(pkt) => {
                    sink(RxFrame {
                        ts_ns: pkt.ts_ns,
                        wire_len: pkt.wire_len,
                        data: &pkt.data,
                    });
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl BackendQueue for NicSimQueue {
    fn poll_batch(
        &self,
        max: usize,
        sink: &mut dyn FnMut(RxFrame<'_>),
    ) -> Result<usize, BackendError> {
        Ok(self.poll_batch_mono(max, sink))
    }

    fn recycle(&self, _frames: usize) -> Result<(), BackendError> {
        // Popping the ArrayQueue slot already released it; there is no
        // tail pointer to advance.
        Ok(())
    }

    fn depth(&self) -> usize {
        self.queue.depth()
    }

    fn accounting(&self) -> QueueAccounting {
        QueueAccounting {
            received: self.queue.received(),
            dropped: self.queue.dropped(),
            ring_used: self.queue.depth() as u64,
            ring_capacity: self.queue.capacity() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn packet(i: u16) -> Packet {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
            1000 + i,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        PacketBuilder::new()
            .build_packet(u64::from(i), &flow, 100)
            .unwrap()
    }

    #[test]
    fn adapter_polls_lend_frames_and_account() {
        let nic = LiveNic::new(1, 8);
        let backend = NicSimBackend::new(Arc::clone(&nic));
        assert_eq!(backend.name(), "nicsim");
        assert_eq!(backend.queue_count(), 1);
        for i in 0..10 {
            backend.inject(packet(i));
        }
        let q = backend.queue(0);
        let mut seen = 0u64;
        let polled = q
            .poll_batch(64, &mut |f| {
                assert!(!f.data.is_empty());
                assert!(f.wire_len > 0);
                seen += 1;
            })
            .unwrap();
        assert_eq!(polled, 8, "ring depth caps the poll");
        assert_eq!(seen, 8);
        q.recycle(polled).unwrap();
        let a = q.accounting();
        assert_eq!(a.received, 8);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.ring_used, 0);
        assert_eq!(a.ring_capacity, 8);
        let mut t = QueueTelemetry::default();
        q.fill_telemetry(&mut t);
        assert_eq!(t.offered_packets, 10);
        assert_eq!(t.nic_drop_packets, 2);
        assert_eq!(t.ring_ready, 8);
        backend.stop().unwrap();
        assert!(backend.is_stopped());
        assert!(nic.is_stopped(), "stop reaches the wrapped NIC");
    }
}
