//! Buddy groups and the offloading policy (§3.2.1, §3.2.2a).
//!
//! "The receive queues accessed by threads (or processes) of a single
//! application can form a buddy group. Traffic offloading is only allowed
//! within a buddy group." The policy itself: when a capture thread moves
//! a chunk up and its own capture queue exceeds the threshold T, it
//! places the chunk on the capture queue of "an idle or less busy receive
//! queue" — we pick the buddy with the shortest capture queue, strictly
//! inside the group.

/// How an over-threshold capture thread picks the buddy to offload to.
///
/// The paper's policy is "an idle or less busy receive queue" — shortest
/// capture queue. The alternatives exist for the ablation study
/// (`bench/bin/ablations`): they answer whether the *choice* of target
/// matters or only the act of offloading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The paper's policy: the buddy with the shortest capture queue.
    #[default]
    ShortestQueue,
    /// Rotate through buddies regardless of load.
    RoundRobin,
    /// Always the next queue index (a naive static spillover).
    NextNeighbor,
}

/// A buddy group: the set of receive queues one application owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuddyGroup {
    members: Vec<usize>,
    policy: PlacementPolicy,
}

impl BuddyGroup {
    /// Forms a buddy group over the given queue indices.
    pub fn new(members: Vec<usize>) -> Self {
        assert!(
            !members.is_empty(),
            "a buddy group needs at least one queue"
        );
        BuddyGroup {
            members,
            policy: PlacementPolicy::ShortestQueue,
        }
    }

    /// Replaces the placement policy (ablation support).
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The group's placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// A group over queues `0..n` (the paper's single-application setup).
    pub fn all(n: usize) -> Self {
        BuddyGroup::new((0..n).collect())
    }

    /// The queues in this group.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether `queue` belongs to this group.
    pub fn contains(&self, queue: usize) -> bool {
        self.members.contains(&queue)
    }

    /// The queues worker `worker` of a `workers`-wide consumer pool
    /// owns: the members at positions ≡ `worker` (mod `workers`).
    /// Shards are disjoint, cover the whole group, and differ in size
    /// by at most one queue; with `workers > members` the extra
    /// workers own nothing and live off stealing alone.
    pub fn worker_shard(&self, worker: usize, workers: usize) -> Vec<usize> {
        assert!(workers > 0, "a pool needs at least one worker");
        self.members
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % workers == worker % workers)
            .map(|(_, q)| q)
            .collect()
    }

    /// The offloading decision for a chunk captured on `from`:
    /// given each queue's capture-queue length (`lens[q]`) and shared
    /// capacity, returns the buddy to place the chunk on — `from` itself
    /// when its occupancy is within the threshold, otherwise a buddy
    /// chosen by the group's [`PlacementPolicy`] (the paper's default:
    /// shortest capture queue, ties broken by lowest index for
    /// determinism). Offloading never leaves the group.
    pub fn place(&self, from: usize, lens: &[usize], capacity: usize, threshold: f64) -> usize {
        self.place_seq(from, lens, capacity, threshold, 0)
    }

    /// [`BuddyGroup::place`] with a decision sequence number, which the
    /// rotation-based policies use as their cursor (keeps the group
    /// stateless and the simulation deterministic).
    pub fn place_seq(
        &self,
        from: usize,
        lens: &[usize],
        capacity: usize,
        threshold: f64,
        seq: u64,
    ) -> usize {
        debug_assert!(self.contains(from));
        let own = lens[from];
        if (own as f64) <= threshold * capacity as f64 {
            return from;
        }
        match self.policy {
            PlacementPolicy::ShortestQueue => self
                .members
                .iter()
                .copied()
                .min_by_key(|&q| (lens[q], q))
                .unwrap_or(from),
            PlacementPolicy::RoundRobin => self.members[(seq as usize) % self.members.len()],
            PlacementPolicy::NextNeighbor => {
                let pos = self.members.iter().position(|&q| q == from).unwrap_or(0);
                self.members[(pos + 1) % self.members.len()]
            }
        }
    }
}

/// A partition of queues into buddy groups (one per application), with
/// lookup from queue to group.
#[derive(Debug, Clone)]
pub struct BuddyGroups {
    groups: Vec<BuddyGroup>,
    /// queue index -> group index
    of_queue: Vec<Option<usize>>,
}

impl BuddyGroups {
    /// Builds a partition over `queues` total queues.
    ///
    /// # Panics
    /// Panics if a queue appears in two groups or is out of range —
    /// offloading across applications would violate application logic
    /// (§3.2.2c: "Different applications do not interfere with one
    /// another").
    pub fn new(queues: usize, groups: Vec<BuddyGroup>) -> Self {
        let mut of_queue = vec![None; queues];
        for (gi, g) in groups.iter().enumerate() {
            for &q in g.members() {
                assert!(q < queues, "queue {q} out of range");
                assert!(
                    of_queue[q].is_none(),
                    "queue {q} cannot belong to two buddy groups"
                );
                of_queue[q] = Some(gi);
            }
        }
        BuddyGroups { groups, of_queue }
    }

    /// Every queue in one group (the multi_pkt_handler setup of §4).
    pub fn single(queues: usize) -> Self {
        BuddyGroups::new(queues, vec![BuddyGroup::all(queues)])
    }

    /// Each queue its own group — equivalent to basic mode.
    pub fn isolated(queues: usize) -> Self {
        BuddyGroups::new(
            queues,
            (0..queues).map(|q| BuddyGroup::new(vec![q])).collect(),
        )
    }

    /// The group `queue` belongs to, if any.
    pub fn group_of(&self, queue: usize) -> Option<&BuddyGroup> {
        self.of_queue[queue].map(|gi| &self.groups[gi])
    }

    /// All groups.
    pub fn groups(&self) -> &[BuddyGroup] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_stays_home() {
        let g = BuddyGroup::all(4);
        let lens = [50, 0, 0, 0];
        assert_eq!(g.place(0, &lens, 100, 0.6), 0);
    }

    #[test]
    fn above_threshold_picks_shortest_buddy() {
        let g = BuddyGroup::all(4);
        let lens = [61, 10, 3, 7];
        assert_eq!(g.place(0, &lens, 100, 0.6), 2);
    }

    #[test]
    fn ties_break_deterministically() {
        let g = BuddyGroup::all(4);
        let lens = [61, 5, 5, 5];
        assert_eq!(g.place(0, &lens, 100, 0.6), 1);
    }

    #[test]
    fn offloading_respects_group_boundary() {
        // Queues 0-1 belong to app 1, queues 2-3 to app 2 (the paper's
        // Figure 5). Queue 0 overloads; queue 2 is idle but off-limits.
        let g = BuddyGroup::new(vec![0, 1]);
        let lens = [90, 40, 0, 0];
        assert_eq!(g.place(0, &lens, 100, 0.6), 1);
    }

    #[test]
    fn single_member_group_never_moves() {
        let g = BuddyGroup::new(vec![3]);
        let lens = [0, 0, 0, 99];
        assert_eq!(g.place(3, &lens, 100, 0.1), 3);
    }

    #[test]
    fn partition_lookup() {
        let groups = BuddyGroups::new(
            4,
            vec![BuddyGroup::new(vec![0, 1]), BuddyGroup::new(vec![2, 3])],
        );
        assert!(groups.group_of(0).unwrap().contains(1));
        assert!(!groups.group_of(0).unwrap().contains(2));
        assert!(groups.group_of(3).unwrap().contains(2));
        assert_eq!(groups.groups().len(), 2);
    }

    #[test]
    #[should_panic(expected = "two buddy groups")]
    fn overlapping_groups_rejected() {
        BuddyGroups::new(
            3,
            vec![BuddyGroup::new(vec![0, 1]), BuddyGroup::new(vec![1, 2])],
        );
    }

    #[test]
    fn round_robin_rotates_with_seq() {
        let g = BuddyGroup::all(3).with_policy(PlacementPolicy::RoundRobin);
        let lens = [99, 99, 99];
        let picks: Vec<usize> = (0..6).map(|s| g.place_seq(0, &lens, 100, 0.6, s)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn next_neighbor_is_static() {
        let g = BuddyGroup::all(3).with_policy(PlacementPolicy::NextNeighbor);
        let lens = [99, 0, 0];
        for s in 0..5 {
            assert_eq!(g.place_seq(0, &lens, 100, 0.6, s), 1);
        }
        assert_eq!(g.place_seq(2, &[0, 0, 99], 100, 0.6, 0), 0);
    }

    #[test]
    fn policies_only_apply_over_threshold() {
        for policy in [
            PlacementPolicy::ShortestQueue,
            PlacementPolicy::RoundRobin,
            PlacementPolicy::NextNeighbor,
        ] {
            let g = BuddyGroup::all(4).with_policy(policy);
            assert_eq!(g.place_seq(2, &[0, 0, 10, 0], 100, 0.6, 7), 2, "{policy:?}");
        }
    }

    #[test]
    fn worker_shards_partition_the_group() {
        let g = BuddyGroup::new(vec![2, 5, 7, 9, 11]);
        let shards: Vec<Vec<usize>> = (0..3).map(|w| g.worker_shard(w, 3)).collect();
        assert_eq!(shards[0], vec![2, 9]);
        assert_eq!(shards[1], vec![5, 11]);
        assert_eq!(shards[2], vec![7]);
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![2, 5, 7, 9, 11], "disjoint and covering");
        // More workers than members: the surplus owns nothing.
        assert!(g.worker_shard(6, 7).is_empty());
        // One worker owns everything.
        assert_eq!(g.worker_shard(0, 1), vec![2, 5, 7, 9, 11]);
    }

    #[test]
    fn helper_partitions() {
        assert_eq!(BuddyGroups::single(3).groups().len(), 1);
        assert_eq!(BuddyGroups::isolated(3).groups().len(), 3);
    }
}
