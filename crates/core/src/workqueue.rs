//! Work-queue pairs (§3.2.2).
//!
//! "A work-queue pair consists of a capture queue and a recycle queue. A
//! capture queue keeps the metadata of captured packet buffer chunks, and
//! a recycle queue keeps the metadata of packet buffer chunks that are
//! waiting to be recycled."
//!
//! The capture queue's *length relative to its capacity* is WireCAP's
//! load signal: the advanced mode offloads when it exceeds the threshold
//! T, and chooses offload targets by shortest capture queue.

use crate::chunk::ChunkMeta;
use std::collections::VecDeque;

/// Error returned when a capture queue is at capacity: the chunk was
/// **not** enqueued and the caller must recycle it (and account the
/// loss). Previously this condition was a `debug_assert!` that vanished
/// in release builds, silently growing the queue past its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureQueueFull;

impl std::fmt::Display for CaptureQueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "capture queue at capacity")
    }
}

impl std::error::Error for CaptureQueueFull {}

/// The user-space work-queue pair of one receive queue.
#[derive(Debug, Default)]
pub struct WorkQueuePair {
    capture: VecDeque<ChunkMeta>,
    recycle: VecDeque<ChunkMeta>,
    capacity: usize,
    /// Chunks ever placed on this capture queue.
    pub enqueued: u64,
    /// Chunks placed here by a *buddy's* capture thread (offloaded in).
    pub offloaded_in: u64,
    /// Chunks rejected because the capture queue was at capacity.
    pub rejected: u64,
}

impl WorkQueuePair {
    /// Creates a pair whose capture queue holds up to `capacity` chunks
    /// (the pool size R — there are only R chunks in existence).
    pub fn new(capacity: usize) -> Self {
        WorkQueuePair {
            capacity,
            ..Default::default()
        }
    }

    /// Capture-queue occupancy as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        self.capture.len() as f64 / self.capacity as f64
    }

    /// Chunks waiting on the capture queue.
    pub fn capture_len(&self) -> usize {
        self.capture.len()
    }

    /// Chunks waiting on the recycle queue.
    pub fn recycle_len(&self) -> usize {
        self.recycle.len()
    }

    /// Capture-queue capacity in chunks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Places a captured chunk's metadata on the capture queue.
    ///
    /// # Errors
    /// Returns [`CaptureQueueFull`] — without enqueueing — when the
    /// queue already holds `capacity` chunks; the rejection is counted
    /// in [`WorkQueuePair::rejected`]. With correct accounting (at most
    /// R chunks exist and the capacity is R) this cannot fire from the
    /// engine's own placement, but the capacity bound is now enforced in
    /// release builds rather than assumed.
    pub fn push_captured(&mut self, meta: ChunkMeta) -> Result<(), CaptureQueueFull> {
        if self.capture.len() >= self.capacity {
            self.rejected += 1;
            return Err(CaptureQueueFull);
        }
        self.enqueued += 1;
        if meta.offloaded {
            self.offloaded_in += 1;
        }
        self.capture.push_back(meta);
        Ok(())
    }

    /// The application takes the next chunk to process.
    pub fn pop_captured(&mut self) -> Option<ChunkMeta> {
        self.capture.pop_front()
    }

    /// Peeks at the chunk the application would take next.
    pub fn peek_captured(&self) -> Option<&ChunkMeta> {
        self.capture.front()
    }

    /// The application returns a fully processed chunk for recycling.
    pub fn push_recycle(&mut self, meta: ChunkMeta) {
        self.recycle.push_back(meta);
    }

    /// The capture thread drains one chunk to recycle.
    pub fn pop_recycle(&mut self) -> Option<ChunkMeta> {
        self.recycle.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkId;

    fn meta(c: u32, offloaded: bool) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId {
                nic_id: 0,
                ring_id: 0,
                chunk_id: c,
            },
            process_address: 0x7000 + u64::from(c),
            pkt_count: 256,
            offloaded,
            first_fill_ns: 0,
        }
    }

    #[test]
    fn fifo_capture_order() {
        let mut wq = WorkQueuePair::new(10);
        wq.push_captured(meta(1, false)).unwrap();
        wq.push_captured(meta(2, false)).unwrap();
        assert_eq!(wq.pop_captured().unwrap().id.chunk_id, 1);
        assert_eq!(wq.pop_captured().unwrap().id.chunk_id, 2);
        assert!(wq.pop_captured().is_none());
    }

    #[test]
    fn occupancy_tracks_length() {
        let mut wq = WorkQueuePair::new(4);
        assert_eq!(wq.occupancy(), 0.0);
        wq.push_captured(meta(1, false)).unwrap();
        wq.push_captured(meta(2, false)).unwrap();
        assert_eq!(wq.occupancy(), 0.5);
        wq.pop_captured();
        assert_eq!(wq.occupancy(), 0.25);
    }

    #[test]
    fn recycle_queue_is_independent() {
        let mut wq = WorkQueuePair::new(4);
        wq.push_captured(meta(1, false)).unwrap();
        let m = wq.pop_captured().unwrap();
        wq.push_recycle(m);
        assert_eq!(wq.capture_len(), 0);
        assert_eq!(wq.recycle_len(), 1);
        assert_eq!(wq.pop_recycle().unwrap().id.chunk_id, 1);
    }

    #[test]
    fn offloaded_chunks_counted() {
        let mut wq = WorkQueuePair::new(4);
        wq.push_captured(meta(1, true)).unwrap();
        wq.push_captured(meta(2, false)).unwrap();
        assert_eq!(wq.offloaded_in, 1);
        assert_eq!(wq.enqueued, 2);
    }

    #[test]
    fn push_at_capacity_is_rejected_and_counted() {
        let mut wq = WorkQueuePair::new(2);
        wq.push_captured(meta(1, false)).unwrap();
        wq.push_captured(meta(2, false)).unwrap();
        assert_eq!(wq.push_captured(meta(3, true)), Err(CaptureQueueFull));
        assert_eq!(wq.push_captured(meta(4, false)), Err(CaptureQueueFull));
        // The rejected chunks were not enqueued and touched no counter
        // other than `rejected` — the queue never exceeds its capacity.
        assert_eq!(wq.rejected, 2);
        assert_eq!(wq.enqueued, 2);
        assert_eq!(wq.offloaded_in, 0);
        assert_eq!(wq.capture_len(), 2);
        assert_eq!(wq.occupancy(), 1.0);
        // Draining makes room again.
        wq.pop_captured().unwrap();
        wq.push_captured(meta(5, false)).unwrap();
        assert_eq!(wq.enqueued, 3);
    }
}
