//! The WireCAP engine under simulation.
//!
//! Implements [`engines::CaptureEngine`] so the experiment harness can
//! compare WireCAP against the baselines uniformly. Per receive queue the
//! engine runs the full §3.2.2 machinery:
//!
//! * DMA lands packets in the attached chunks of the queue's
//!   [`RingBufferPool`]; a packet with no armed cell is a *capture drop*
//!   (the only drop WireCAP suffers, §4);
//! * the **capture thread** (dedicated core, woken by traffic) moves full
//!   chunks to a capture queue as metadata, fires the timeout
//!   partial-chunk copy, recycles consumed chunks, and — in advanced
//!   mode — applies the buddy-group offloading policy;
//! * the **application thread** consumes chunks from its capture queue at
//!   the `pkt_handler` rate, with a configurable CPU-affinity penalty on
//!   offloaded chunks (§5b), and optionally forwards processed packets
//!   zero-copy through [`crate::tx::ForwardPath`].

use crate::buddy::BuddyGroups;
use crate::chunk::ChunkMeta;
use crate::config::WireCapConfig;
use crate::pool::RingBufferPool;
use crate::tx::ForwardPath;
use crate::workqueue::WorkQueuePair;
use engines::CaptureEngine;
use nicsim::tx::TxRing;
use sim::stats::CopyMeter;
use sim::SimTime;
use telemetry::{kind, QueueTelemetry, Registry};

#[derive(Debug)]
struct QueueState {
    pool: RingBufferPool,
    wq: WorkQueuePair,
    /// Chunk the application is currently processing: (meta, packets left).
    current: Option<(ChunkMeta, u32)>,
    app_carry: f64,
    last_app: SimTime,
    bytes_seen: u64,
    fwd: Option<ForwardPath>,
    latency: sim::stats::LatencyStats,
}

/// The WireCAP capture engine (simulation model).
#[derive(Debug)]
pub struct WireCapEngine {
    cfg: WireCapConfig,
    groups: BuddyGroups,
    queues: Vec<QueueState>,
    /// All packet/chunk counters, histograms and the event tracer.
    tel: Registry,
    app_rate: f64,
    /// Monotone offload-decision counter (rotation-policy cursor).
    place_seq: u64,
}

impl WireCapEngine {
    /// Creates an engine over `queues` receive queues of NIC 0.
    ///
    /// Basic mode isolates every queue; advanced mode forms one buddy
    /// group over all queues (the paper's `multi_pkt_handler` setup; use
    /// [`WireCapEngine::with_groups`] for multi-application partitions).
    pub fn new(queues: usize, cfg: WireCapConfig) -> Self {
        let groups = if cfg.threshold.is_some() {
            BuddyGroups::single(queues)
        } else {
            BuddyGroups::isolated(queues)
        };
        Self::with_groups(queues, cfg, groups)
    }

    /// Creates an engine with an explicit buddy-group partition.
    pub fn with_groups(queues: usize, cfg: WireCapConfig, groups: BuddyGroups) -> Self {
        cfg.validate().expect("invalid WireCAP configuration");
        WireCapEngine {
            app_rate: cfg.app.rate_pps(),
            place_seq: 0,
            groups,
            tel: Registry::new(queues),
            queues: (0..queues)
                .map(|q| QueueState {
                    pool: RingBufferPool::open(0, q as u16, &cfg),
                    wq: WorkQueuePair::new(cfg.r),
                    current: None,
                    app_carry: 0.0,
                    last_app: SimTime::ZERO,
                    bytes_seen: 0,
                    fwd: cfg
                        .app
                        .forward
                        .then(|| ForwardPath::new(TxRing::new(4096, 10.0))),
                    latency: sim::stats::LatencyStats::new(),
                })
                .collect(),
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &WireCapConfig {
        &self.cfg
    }

    /// The telemetry registry (counters + event tracer). Enable the
    /// tracer with `engine.registry().tracer().enable()`.
    pub fn registry(&self) -> &Registry {
        &self.tel
    }

    /// Application-thread step: consume packets from the capture queue.
    fn run_app(&mut self, q: usize, now: SimTime) {
        let qs = &mut self.queues[q];
        let dt = now.since(qs.last_app) as f64 / 1e9;
        qs.last_app = SimTime(qs.last_app.0.max(now.0));
        // Budget in units of home-affinity packets.
        let max_cost = 1.0 / self.cfg.offload_penalty;
        let mut budget = (self.app_rate * dt + qs.app_carry).min(
            // Never bank more than the queue could possibly consume —
            // keeps the server work-conserving across idle gaps.
            (qs.wq.capture_len() as u64 * self.cfg.m as u64
                + u64::from(qs.current.as_ref().map_or(0, |c| c.1))) as f64
                * max_cost
                + max_cost,
        );
        // Delivered packets are credited to the chunk's *home* queue
        // (the queue whose traffic they are), not the consuming queue —
        // otherwise offloading makes per-queue accounting incoherent
        // (a buddy would show more deliveries than captures).
        let mut delivered_by_home = vec![0u64; self.queues.len()];
        let captured_so_far = self.tel.queue(q).cap.captured_packets.get();
        let qs = &mut self.queues[q];
        loop {
            if qs.current.is_none() {
                qs.current = qs.wq.pop_captured().map(|m| (m, m.pkt_count));
            }
            let Some((meta, remaining)) = &mut qs.current else {
                break;
            };
            let cost = if meta.offloaded { max_cost } else { 1.0 };
            let can = (budget / cost).floor() as u32;
            if can == 0 {
                break;
            }
            let take = can.min(*remaining);
            budget -= f64::from(take) * cost;
            *remaining -= take;
            delivered_by_home[meta.id.ring_id as usize] += u64::from(take);
            if *remaining == 0 {
                let done = *meta;
                // Capture-to-delivery latency for the whole chunk: the
                // batching cost §5c warns about, metered per packet
                // against the chunk's first arrival.
                qs.latency.record_n(
                    now.as_nanos().saturating_sub(done.first_fill_ns),
                    u64::from(done.pkt_count),
                );
                qs.current = None;
                match &mut qs.fwd {
                    Some(fwd) => {
                        // Zero-copy forward: the chunk pins until the NIC
                        // transmits its packets, then recycles.
                        let mean_len = mean_frame_len(qs.bytes_seen, captured_so_far);
                        fwd.forward_chunk(now.as_nanos(), done, mean_len);
                    }
                    None => qs.wq.push_recycle(done),
                }
            }
        }
        qs.app_carry = budget.min(max_cost);
        // Reap transmit completions; released chunks go to recycling.
        if let Some(fwd) = &mut qs.fwd {
            fwd.reap(now.as_nanos());
            for meta in fwd.take_released() {
                qs.wq.push_recycle(meta);
            }
        }
        for (home, n) in delivered_by_home.into_iter().enumerate() {
            if n > 0 {
                self.tel.queue(home).app.delivered_packets.add(n);
            }
        }
    }

    /// Capture-thread step for queue `q`: recycle, capture, offload.
    fn run_capture_thread(&mut self, q: usize, now: SimTime) {
        // 1. Recycle consumed chunks (they may belong to other queues'
        // pools when offloading moved them here).
        while let Some(meta) = self.queues[q].wq.pop_recycle() {
            let home = meta.id.ring_id as usize;
            self.queues[home]
                .pool
                .recycle(&meta)
                .expect("engine-internal recycle metadata is always valid");
            self.queues[home].pool.replenish();
            self.tel.queue(home).app.recycled_chunks.inc();
            self.tel.tracer().record(
                now.as_nanos(),
                q as u32,
                kind::RECYCLE,
                meta.id.chunk_id,
                home as u32,
                u64::from(meta.pkt_count),
            );
        }

        // 2. Capture full chunks and the timeout partial.
        let (mut metas, _) = self.queues[q].pool.capture_full();
        for meta in &metas {
            self.tel.tracer().record(
                now.as_nanos(),
                q as u32,
                kind::CAPTURE,
                meta.id.chunk_id,
                q as u32,
                u64::from(meta.pkt_count),
            );
        }
        if let Some((meta, _)) = self.queues[q]
            .pool
            .capture_partial(now.as_nanos(), self.cfg.capture_timeout_ns)
        {
            self.tel.queue(q).cap.partial_chunks.inc();
            self.tel.tracer().record(
                now.as_nanos(),
                q as u32,
                kind::CAPTURE_PARTIAL,
                meta.id.chunk_id,
                q as u32,
                u64::from(meta.pkt_count),
            );
            metas.push(meta);
        }
        if metas.is_empty() {
            return;
        }
        {
            let cap = &self.tel.queue(q).cap;
            cap.sealed_chunks.add(metas.len() as u64);
            cap.batch_size.record(metas.len() as u64);
            for meta in &metas {
                cap.chunk_fill.record(u64::from(meta.pkt_count));
            }
        }

        // 3. Placement: home queue in basic mode; buddy-group policy in
        // advanced mode.
        let lens: Vec<usize> = self.queues.iter().map(|s| s.wq.capture_len()).collect();
        for mut meta in metas {
            self.place_seq += 1;
            let seq = self.place_seq;
            let target = match self.cfg.threshold {
                Some(t) => self.groups.group_of(q).map_or(q, |g| {
                    g.place_seq(q, &lens, self.cfg.capture_queue_capacity(), t, seq)
                }),
                None => q,
            };
            meta.offloaded = target != q;
            self.tel
                .queue(target)
                .cap
                .capture_queue_depth
                .record(lens[target] as u64);
            self.tel
                .queue(target)
                .capture_queue_watermark
                .observe(lens[target] as u64 + 1);
            if self.queues[target].wq.push_captured(meta).is_err() {
                // The target queue rejected the chunk (at capacity). The
                // packets are lost after capture; the chunk itself goes
                // straight back to its home pool so the buffer population
                // is preserved.
                let home = meta.id.ring_id as usize;
                self.tel
                    .queue(home)
                    .cap
                    .delivery_drop_packets
                    .add(u64::from(meta.pkt_count));
                self.queues[home]
                    .pool
                    .recycle(&meta)
                    .expect("engine-internal recycle metadata is always valid");
                self.queues[home].pool.replenish();
                self.tel.queue(home).app.recycled_chunks.inc();
                self.tel.tracer().record(
                    now.as_nanos(),
                    q as u32,
                    kind::REJECT,
                    meta.id.chunk_id,
                    target as u32,
                    u64::from(meta.pkt_count),
                );
            } else if meta.offloaded {
                self.tel.queue(q).cap.offloaded_out_chunks.inc();
                self.tel.queue(target).peer.offloaded_in_chunks.inc();
                self.tel.tracer().record(
                    now.as_nanos(),
                    q as u32,
                    kind::OFFLOAD,
                    meta.id.chunk_id,
                    target as u32,
                    lens[target] as u64,
                );
            }
        }
    }

    fn advance_queue(&mut self, q: usize, now: SimTime) {
        self.run_app(q, now);
        self.run_capture_thread(q, now);
    }

    fn any_backlog(&self) -> bool {
        self.queues.iter().any(|qs| {
            qs.wq.capture_len() > 0
                || qs.wq.recycle_len() > 0
                || qs.current.is_some()
                || qs.pool.armed_cells() < qs.pool.attached_chunks() * self.cfg.m
                || qs.fwd.as_ref().is_some_and(|f| f.pinned_chunks() > 0)
        })
    }
}

fn mean_frame_len(bytes_seen: u64, captured: u64) -> u16 {
    bytes_seen
        .checked_div(captured)
        .map_or(64, |mean| mean.clamp(60, 1518) as u16)
}

impl CaptureEngine for WireCapEngine {
    fn name(&self) -> String {
        self.cfg.name()
    }

    fn queues(&self) -> usize {
        self.queues.len()
    }

    fn on_arrival(&mut self, now: SimTime, queue: usize, len: u16) {
        // Advanced mode couples queues through offloading, so idle
        // buddies must make progress too.
        if self.cfg.threshold.is_some() {
            for q in 0..self.queues.len() {
                self.advance_queue(q, now);
            }
        } else {
            self.advance_queue(queue, now);
        }
        let cap = &self.tel.queue(queue).cap;
        cap.offered_packets.inc();
        let qs = &mut self.queues[queue];
        if qs.pool.on_dma(now.as_nanos()) {
            cap.captured_packets.inc();
            qs.bytes_seen += u64::from(len);
        } else {
            cap.capture_drop_packets.inc();
        }
    }

    fn advance(&mut self, now: SimTime) {
        for q in 0..self.queues.len() {
            self.advance_queue(q, now);
        }
    }

    fn finish(&mut self, after: SimTime) -> SimTime {
        let mut t = after;
        for _ in 0..100_000 {
            if !self.any_backlog() {
                return t;
            }
            t = SimTime(t.as_nanos() + self.cfg.capture_timeout_ns.max(1_000_000));
            self.advance(t);
        }
        t
    }

    fn telemetry(&self, queue: usize) -> QueueTelemetry {
        // WireCAP's design makes delivery drops structurally impossible:
        // the capture queue is bounded by the chunk population, and
        // back-pressure surfaces as capture drops. The bound is enforced
        // rather than assumed — a rejected chunk surfaces in
        // `delivery_drop_packets` instead of silently growing the queue.
        let mut t = self.tel.snapshot_queue(queue);
        let qs = &self.queues[queue];
        t.forwarded_packets = qs.fwd.as_ref().map_or(0, ForwardPath::forwarded);
        t.transmitted_packets = qs.fwd.as_ref().map_or(0, ForwardPath::transmitted);
        t.capture_queue_len = qs.wq.capture_len() as u64;
        let wm = &self.tel.queue(queue).capture_queue_watermark;
        wm.observe(t.capture_queue_len);
        t.capture_queue_watermark = wm.get();
        t.free_chunks = qs.pool.free_chunks() as u64;
        t.ring_ready = qs.pool.armed_cells() as u64;
        t.ring_used = (qs.pool.attached_chunks() * self.cfg.m) as u64 - t.ring_ready;
        // The sim engine meters latency in its own accumulator; expose
        // it through the unified schema too (bucket mapping documented
        // on the `From` impl).
        t.latency_ns = telemetry::HistogramSnapshot::from(&qs.latency);
        t
    }

    fn copies(&self) -> CopyMeter {
        let mut m = CopyMeter::default();
        for (q, qs) in self.queues.iter().enumerate() {
            let pkts = qs.pool.partial_copy_packets();
            let captured = self.tel.queue(q).cap.captured_packets.get();
            let mean = u64::from(mean_frame_len(qs.bytes_seen, captured));
            m.record(pkts, pkts * mean);
        }
        m
    }

    fn latency(&self) -> sim::stats::LatencyStats {
        let mut l = sim::stats::LatencyStats::new();
        for qs in &self.queues {
            l.merge(&qs.latency);
        }
        l
    }

    fn tuning(&self) -> Option<telemetry::TuningTelemetry> {
        Some(tuning_telemetry(&self.cfg, self.queues.len()))
    }
}

/// Renders the resolved [`TuningPlan`](crate::config::TuningPlan) for
/// `cfg` into the snapshot schema, shared by the sim engine and the
/// live threaded path.
pub fn tuning_telemetry(cfg: &WireCapConfig, queues: usize) -> telemetry::TuningTelemetry {
    let plan = cfg.tuning_plan(queues);
    let (mode, llc_bytes) = match cfg.tuning {
        crate::config::TuningMode::Throughput => ("throughput", 0),
        crate::config::TuningMode::CacheResident { llc_bytes } => ("cache_resident", llc_bytes),
    };
    telemetry::TuningTelemetry {
        mode: mode.into(),
        llc_bytes,
        queues: queues as u64,
        r_configured: cfg.r as u64,
        r_effective: plan.r as u64,
        m_effective: plan.m as u64,
        recycle_depth: plan.recycle_depth as u64,
        working_set_bytes: plan.working_set_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::time::SECOND;

    fn burst(e: &mut WireCapEngine, q: usize, n: u64, start: u64, gap: u64) {
        for i in 0..n {
            e.on_arrival(SimTime(start + i * gap), q, 64);
        }
    }

    /// Fig. 8: wire rate, no processing load — lossless for every tested
    /// (M, R).
    #[test]
    fn wire_rate_x0_lossless_all_configs() {
        for (m, r) in [(64, 100), (128, 100), (256, 100), (256, 500)] {
            let mut e = WireCapEngine::new(1, WireCapConfig::basic(m, r, 0));
            burst(&mut e, 0, 100_000, 0, 67);
            e.finish(SimTime(SECOND));
            let s = e.queue_stats(0);
            assert_eq!(s.capture_drops, 0, "WireCAP-B-({m},{r})");
            assert_eq!(s.delivered, 100_000, "WireCAP-B-({m},{r})");
            assert!(s.is_consistent());
        }
    }

    /// Fig. 9's headline: with x = 300, WireCAP-B-(256,500) absorbs a
    /// 100 000-packet wire-rate burst losslessly where DNA drops at 6 000.
    #[test]
    fn big_pool_absorbs_100k_burst() {
        let mut e = WireCapEngine::new(1, WireCapConfig::basic(256, 500, 300));
        burst(&mut e, 0, 100_000, 0, 67);
        e.finish(SimTime(10 * SECOND));
        let s = e.queue_stats(0);
        assert_eq!(s.capture_drops, 0);
        assert_eq!(s.delivered, 100_000);
    }

    /// …and the smaller pool WireCAP-B-(256,100) drops most of the same
    /// burst (the paper measures 71 % at P = 100 000).
    #[test]
    fn small_pool_drops_beyond_capacity() {
        let mut e = WireCapEngine::new(1, WireCapConfig::basic(256, 100, 300));
        burst(&mut e, 0, 100_000, 0, 67);
        e.finish(SimTime(10 * SECOND));
        let rate = e.queue_stats(0).capture_drop_rate();
        assert!((0.6..0.8).contains(&rate), "drop rate = {rate}");
    }

    /// The loss bound of §3.2.2a: bursts up to Pin·(R·M)/(Pin−Pp) are
    /// absorbed; beyond it drops begin.
    #[test]
    fn loss_bound_is_tight() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        let bound = cfg.max_lossless_burst(14_880_952.0, 38_844.0) as u64;
        let mut under = WireCapEngine::new(1, cfg);
        burst(&mut under, 0, bound - 200, 0, 67);
        under.finish(SimTime(10 * SECOND));
        assert_eq!(under.queue_stats(0).capture_drops, 0);

        let mut over = WireCapEngine::new(1, cfg);
        burst(&mut over, 0, bound + 500, 0, 67);
        over.finish(SimTime(10 * SECOND));
        assert!(over.queue_stats(0).capture_drops > 0);
    }

    /// R·M invariance (Fig. 10): equal pool capacity, equal behaviour.
    #[test]
    fn buffering_depends_on_rm_product() {
        let mut drops = Vec::new();
        for (m, r) in [(64, 400), (128, 200), (256, 100)] {
            let mut e = WireCapEngine::new(1, WireCapConfig::basic(m, r, 300));
            burst(&mut e, 0, 40_000, 0, 67);
            e.finish(SimTime(10 * SECOND));
            drops.push(e.queue_stats(0).capture_drop_rate());
        }
        for w in drops.windows(2) {
            assert!((w[0] - w[1]).abs() < 0.02, "{drops:?}");
        }
    }

    /// Advanced mode: a single overloaded queue offloads to idle buddies
    /// and the group absorbs what basic mode cannot.
    #[test]
    fn offloading_rescues_overloaded_queue() {
        let n = 200_000u64;
        // 80 k/s sustained onto queue 0 of 4 — double one core's rate.
        let mut basic = WireCapEngine::new(4, WireCapConfig::basic(256, 100, 300));
        burst(&mut basic, 0, n, 0, 12_500);
        basic.finish(SimTime(30 * SECOND));
        let b = basic.total_stats();

        let mut adv = WireCapEngine::new(4, WireCapConfig::advanced(256, 100, 0.6, 300));
        burst(&mut adv, 0, n, 0, 12_500);
        adv.finish(SimTime(30 * SECOND));
        let a = adv.total_stats();

        assert!(
            b.overall_drop_rate() > 0.3,
            "basic should drop heavily: {}",
            b.overall_drop_rate()
        );
        assert_eq!(a.capture_drops, 0, "advanced mode should be lossless");
        assert_eq!(a.delivered, n);
        // Work actually moved: buddies processed offloaded chunks.
        let moved: u64 = (1..4).map(|q| adv.telemetry(q).offloaded_in_chunks).sum();
        assert!(moved > 0);
    }

    /// Offloading respects buddy-group boundaries (§3.2.2c).
    #[test]
    fn offloading_stays_in_group() {
        use crate::buddy::{BuddyGroup, BuddyGroups};
        let groups = BuddyGroups::new(
            4,
            vec![BuddyGroup::new(vec![0, 1]), BuddyGroup::new(vec![2, 3])],
        );
        let mut e =
            WireCapEngine::with_groups(4, WireCapConfig::advanced(256, 100, 0.6, 300), groups);
        burst(&mut e, 0, 100_000, 0, 12_500);
        e.finish(SimTime(30 * SECOND));
        assert_eq!(e.telemetry(2).offloaded_in_chunks, 0);
        assert_eq!(e.telemetry(3).offloaded_in_chunks, 0);
        assert!(e.telemetry(1).offloaded_in_chunks > 0);
    }

    /// The timeout partial-capture path delivers stragglers, and those
    /// are the only copies WireCAP ever makes.
    #[test]
    fn partial_timeout_delivers_stragglers() {
        let mut e = WireCapEngine::new(1, WireCapConfig::basic(256, 100, 0));
        burst(&mut e, 0, 100, 0, 67); // 100 pkts: less than half a chunk
        e.finish(SimTime(SECOND));
        let s = e.queue_stats(0);
        assert_eq!(s.delivered, 100);
        let copies = e.copies();
        assert_eq!(copies.packets, 100);
        assert!(copies.bytes > 0);
    }

    /// Full chunks move zero-copy: a multiple of M packets never touches
    /// the copy path.
    #[test]
    fn full_chunks_are_zero_copy() {
        let mut e = WireCapEngine::new(1, WireCapConfig::basic(256, 100, 0));
        burst(&mut e, 0, 256 * 10, 0, 67);
        e.finish(SimTime(SECOND));
        assert_eq!(e.queue_stats(0).delivered, 2560);
        assert!(e.copies().is_zero_copy());
    }

    /// Forwarding: every delivered packet is transmitted, zero-copy, and
    /// chunks recycle after their packets leave the wire.
    #[test]
    fn forwarding_transmits_everything() {
        let mut e = WireCapEngine::new(1, WireCapConfig::basic(256, 100, 300).forwarding());
        burst(&mut e, 0, 20_000, 0, 67);
        e.finish(SimTime(10 * SECOND));
        let s = e.queue_stats(0);
        assert_eq!(s.capture_drops, 0);
        let t = e.telemetry(0);
        assert_eq!(t.forwarded_packets, 20_000);
        assert_eq!(t.transmitted_packets, 20_000);
        assert!(s.is_consistent());
    }

    /// Offload penalty (§5b): offloaded work costs more CPU, so under
    /// sustained overload a heavily penalized group drops where an
    /// unpenalized one keeps up. 80 k/s onto one queue of two: combined
    /// capacity is 38.8 k + 38.8 k·penalty.
    #[test]
    fn offload_penalty_costs_capacity() {
        let run = |penalty: f64| {
            let mut cfg = WireCapConfig::advanced(256, 100, 0.0, 300);
            cfg.offload_penalty = penalty;
            let mut e = WireCapEngine::new(2, cfg);
            burst(&mut e, 0, 400_000, 0, 12_500); // 80 k/s for 5 s
            e.finish(SimTime(30 * SECOND));
            e.total_stats().overall_drop_rate()
        };
        let penalized = run(0.5); // capacity ≈ 58 k/s < 80 k/s: must drop
        let full = run(1.0); // capacity ≈ 77.7 k/s: pools absorb the rest
        assert!(penalized > 0.05, "penalized drop rate = {penalized}");
        assert!(full < penalized / 2.0, "full-speed drop rate = {full}");
    }

    /// The tracer observes the chunk lifecycle when enabled, and the
    /// telemetry snapshot carries coherent chunk/histogram accounting.
    #[test]
    fn telemetry_traces_chunk_lifecycle() {
        let mut e = WireCapEngine::new(2, WireCapConfig::advanced(64, 20, 0.0, 300));
        e.registry().tracer().enable();
        for i in 0..20_000u64 {
            e.on_arrival(SimTime(i * 500), 0, 64);
        }
        e.finish(SimTime(10 * SECOND));
        let t = e.telemetry(0);
        assert!(t.sealed_chunks > 0);
        assert_eq!(t.chunk_fill.count, t.sealed_chunks);
        assert_eq!(
            t.sealed_chunks, t.recycled_chunks,
            "drained engine recycles every sealed chunk"
        );
        assert!(t.offloaded_out_chunks > 0, "T = 0 forces offloading");
        assert_eq!(t.offloaded_out_chunks, e.telemetry(1).offloaded_in_chunks);
        let kinds: std::collections::HashSet<&str> = e
            .registry()
            .tracer()
            .events()
            .iter()
            .map(|ev| ev.kind)
            .collect();
        assert!(kinds.contains(kind::CAPTURE));
        assert!(kinds.contains(kind::RECYCLE));
        assert!(kinds.contains(kind::OFFLOAD));
    }

    /// The trait-level snapshot emits the unified schema.
    #[test]
    fn snapshot_has_every_queue() {
        let mut e = WireCapEngine::new(2, WireCapConfig::basic(64, 20, 300));
        burst(&mut e, 0, 1_000, 0, 67);
        e.finish(SimTime(SECOND));
        let snap = e.snapshot();
        assert_eq!(snap.engine, e.name());
        assert_eq!(snap.queues.len(), 2);
        assert_eq!(snap.queues[0].delivered_packets, 1_000);
        assert!(snap.to_json().contains("\"capture_queue_depth\""));
        assert!(snap.total_drop_stats().is_consistent());
    }

    #[test]
    fn stats_are_consistent_under_stress() {
        let mut e = WireCapEngine::new(2, WireCapConfig::advanced(64, 20, 0.5, 300));
        for i in 0..50_000u64 {
            e.on_arrival(SimTime(i * 500), (i % 2) as usize, 64);
        }
        e.finish(SimTime(30 * SECOND));
        for q in 0..2 {
            assert!(e.queue_stats(q).is_consistent());
        }
        let t = e.total_stats();
        assert_eq!(t.captured, t.delivered + t.in_flight());
    }
}
