//! Cache-line-padded SPSC rings with batched hand-off.
//!
//! The live engine's chunk hand-off moved one chunk per atomic
//! compare-and-swap; at high rates the CAS and the head/tail false
//! sharing dominate. [`BatchRing`] replaces it: a bounded single-producer
//! single-consumer ring whose producer publishes up to [`MAX_BATCH`]
//! items with **one** release store of the tail, and whose consumer
//! claims up to a batch with one release store of the head. Head and
//! tail live on separate cache lines ([`crossbeam::utils::CachePadded`])
//! so producer and consumer never ping-pong a line.
//!
//! The intended topology is strictly one producer and one consumer per
//! ring (the live engine allocates one ring per (target queue, producer)
//! pair), but misuse must not be unsound: cheap spin guards serialize
//! concurrent pushers and concurrent poppers — uncontended in the
//! intended topology, correct when applications share a consumer handle
//! (§5e paradigm 1).
//!
//! Shutdown protocol: the producer pushes its final items, then calls
//! [`BatchRing::close`]. A consumer treats an empty ring as end-of-stream
//! only after observing `is_closed()`, followed by one final pop to close
//! the race window.

#[allow(unsafe_code)]
mod imp {
    use crossbeam::utils::CachePadded;
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    /// Maximum items moved per synchronization point.
    pub const MAX_BATCH: usize = 64;

    /// A bounded SPSC ring with batched push/pop.
    pub struct BatchRing<T> {
        buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
        /// Consumer cursor: next index to pop.
        head: CachePadded<AtomicUsize>,
        /// Producer cursor: next index to fill.
        tail: CachePadded<AtomicUsize>,
        closed: AtomicBool,
        push_guard: AtomicBool,
        pop_guard: AtomicBool,
    }

    // Safety: items are moved in through push_batch and out through
    // pop_batch; the head/tail protocol ensures a slot is never read and
    // written concurrently, and the guards serialize same-side callers.
    unsafe impl<T: Send> Send for BatchRing<T> {}
    unsafe impl<T: Send> Sync for BatchRing<T> {}

    impl<T> std::fmt::Debug for BatchRing<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("BatchRing")
                .field("capacity", &self.capacity())
                .field("len", &self.len())
                .field("closed", &self.is_closed())
                .finish()
        }
    }

    fn lock(guard: &AtomicBool) {
        while guard
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    impl<T> BatchRing<T> {
        /// Creates a ring holding at least `cap` items (rounded up to a
        /// power of two).
        pub fn with_capacity(cap: usize) -> Self {
            let cap = cap.max(2).next_power_of_two();
            BatchRing {
                buf: (0..cap)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
                mask: cap - 1,
                head: CachePadded::new(AtomicUsize::new(0)),
                tail: CachePadded::new(AtomicUsize::new(0)),
                closed: AtomicBool::new(false),
                push_guard: AtomicBool::new(false),
                pop_guard: AtomicBool::new(false),
            }
        }

        /// Ring capacity in items.
        pub fn capacity(&self) -> usize {
            self.buf.len()
        }

        /// Items currently queued (a racy snapshot).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::Acquire);
            let head = self.head.load(Ordering::Acquire);
            tail.wrapping_sub(head)
        }

        /// True when nothing is queued (a racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Moves up to [`MAX_BATCH`] items from the front of `items` into
        /// the ring, publishing them with a single tail store. Returns
        /// how many were moved; the rest stay in `items`.
        pub fn push_batch(&self, items: &mut Vec<T>) -> usize {
            if items.is_empty() {
                return 0;
            }
            lock(&self.push_guard);
            let tail = self.tail.load(Ordering::Relaxed);
            let head = self.head.load(Ordering::Acquire);
            let space = self.capacity() - tail.wrapping_sub(head);
            let n = items.len().min(space).min(MAX_BATCH);
            for (i, item) in items.drain(..n).enumerate() {
                let slot = &self.buf[(tail.wrapping_add(i)) & self.mask];
                // Safety: slots in [tail, tail + space) are dead (already
                // popped or never filled), and the push guard makes this
                // the only writer.
                unsafe { (*slot.get()).write(item) };
            }
            self.tail.store(tail.wrapping_add(n), Ordering::Release);
            self.push_guard.store(false, Ordering::Release);
            n
        }

        /// Moves up to `max` queued items into `out`, claiming them with
        /// a single head store. Returns how many were moved.
        pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
            if max == 0 {
                return 0;
            }
            // Empty fast path: a consumer polling many quiet rings (the
            // pool workers scan every producer ring of every owned
            // queue) skips the guard CAS entirely. Racy in its favor
            // only — a concurrent push after this check is caught on
            // the next poll round.
            if self.is_empty() {
                return 0;
            }
            lock(&self.pop_guard);
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::Acquire);
            let avail = tail.wrapping_sub(head);
            let n = avail.min(max);
            out.reserve(n);
            for i in 0..n {
                let slot = &self.buf[(head.wrapping_add(i)) & self.mask];
                // Safety: slots in [head, tail) hold initialized items
                // published by the Release tail store; the pop guard
                // makes this the only reader, and the head store below
                // transfers ownership out before the producer can reuse
                // the slot.
                out.push(unsafe { (*slot.get()).assume_init_read() });
            }
            self.head.store(head.wrapping_add(n), Ordering::Release);
            self.pop_guard.store(false, Ordering::Release);
            n
        }

        /// Marks the stream finished. Idempotent; pushed items remain
        /// poppable.
        pub fn close(&self) {
            self.closed.store(true, Ordering::Release);
        }

        /// True once the producer has closed the ring. An empty ring is
        /// end-of-stream only if this is set — and even then one final
        /// pop is required (items may have been pushed before the close).
        pub fn is_closed(&self) -> bool {
            self.closed.load(Ordering::Acquire)
        }
    }

    impl<T> Drop for BatchRing<T> {
        fn drop(&mut self) {
            let head = *self.head.get_mut();
            let tail = *self.tail.get_mut();
            for i in head..tail {
                let slot = &mut self.buf[i & self.mask];
                // Safety: &mut self — no other accessor; [head, tail)
                // holds initialized, un-popped items.
                unsafe { slot.get_mut().assume_init_drop() };
            }
        }
    }
}

pub use imp::{BatchRing, MAX_BATCH};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn batches_preserve_fifo_order() {
        let ring: BatchRing<u32> = BatchRing::with_capacity(8);
        let mut input: Vec<u32> = (0..6).collect();
        assert_eq!(ring.push_batch(&mut input), 6);
        assert!(input.is_empty());
        let mut out = Vec::new();
        assert_eq!(ring.pop_batch(&mut out, 4), 4);
        assert_eq!(ring.pop_batch(&mut out, 4), 2);
        assert_eq!(out, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn push_stops_at_capacity_and_resumes_after_pop() {
        let ring: BatchRing<u32> = BatchRing::with_capacity(4);
        let mut input: Vec<u32> = (0..10).collect();
        assert_eq!(ring.push_batch(&mut input), 4);
        assert_eq!(input.len(), 6);
        let mut out = Vec::new();
        assert_eq!(ring.pop_batch(&mut out, usize::MAX), 4);
        assert_eq!(ring.push_batch(&mut input), 4);
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn batch_size_is_capped() {
        let ring: BatchRing<u32> = BatchRing::with_capacity(256);
        let mut input: Vec<u32> = (0..200).collect();
        assert_eq!(ring.push_batch(&mut input), MAX_BATCH);
        assert_eq!(input.len(), 200 - MAX_BATCH);
    }

    #[test]
    fn close_then_drain_protocol() {
        let ring: BatchRing<u32> = BatchRing::with_capacity(8);
        let mut input = vec![1, 2, 3];
        ring.push_batch(&mut input);
        ring.close();
        assert!(ring.is_closed());
        let mut out = Vec::new();
        ring.pop_batch(&mut out, usize::MAX);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(ring.is_empty());
    }

    #[test]
    fn drop_releases_unpopped_items() {
        let item = Arc::new(());
        {
            let ring: BatchRing<Arc<()>> = BatchRing::with_capacity(8);
            let mut input = vec![Arc::clone(&item), Arc::clone(&item)];
            ring.push_batch(&mut input);
            assert_eq!(Arc::strong_count(&item), 3);
        }
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn two_thread_stream_is_lossless_and_ordered() {
        let ring: Arc<BatchRing<u64>> = Arc::new(BatchRing::with_capacity(64));
        const N: u64 = 100_000;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut pending: Vec<u64> = Vec::new();
                let mut next = 0u64;
                while next < N || !pending.is_empty() {
                    while pending.len() < MAX_BATCH && next < N {
                        pending.push(next);
                        next += 1;
                    }
                    if ring.push_batch(&mut pending) == 0 {
                        std::thread::yield_now();
                    }
                }
                ring.close();
            })
        };
        let mut seen = Vec::with_capacity(N as usize);
        let mut out = Vec::new();
        loop {
            out.clear();
            if ring.pop_batch(&mut out, MAX_BATCH) == 0 {
                if ring.is_closed() && ring.pop_batch(&mut out, MAX_BATCH) == 0 {
                    break;
                }
                std::thread::yield_now();
            }
            seen.extend_from_slice(&out);
        }
        producer.join().unwrap();
        assert_eq!(seen.len() as u64, N);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1));
    }
}
