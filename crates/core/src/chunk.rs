//! Packet-buffer chunks and their metadata.
//!
//! "A packet buffer chunk consists of M fixed-size cells, with each cell
//! corresponding to a ring buffer. … Within a pool, a packet buffer chunk
//! is identified by a unique chunk_id. Globally, a packet buffer chunk is
//! uniquely identified by a {nic_id, ring_id, chunk_id} tuple. … a packet
//! buffer chunk has three addresses, DMA_address, kernel_address, and
//! process_address." (§3.2.1)

use crate::config::CELL_BYTES;

/// Global chunk identity: `{nic_id, ring_id, chunk_id}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChunkId {
    /// The NIC the chunk's pool belongs to.
    pub nic_id: u16,
    /// The receive ring (queue) the pool serves.
    pub ring_id: u16,
    /// Index of the chunk within its pool.
    pub chunk_id: u32,
}

/// Lifecycle state of a chunk (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkState {
    /// Held in the kernel, available for (re)use.
    Free,
    /// Attached to a descriptor segment, receiving packets.
    Attached,
    /// Filled and handed to user space.
    Captured,
}

/// The metadata passed between kernel and user space on capture/recycle:
/// "{{nic_id, ring_id, chunk_id}, process_address, pkt_count} … The chunk
/// itself is not copied." (§3.2.1)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Global chunk identity.
    pub id: ChunkId,
    /// The chunk's address in the application's process space.
    pub process_address: u64,
    /// Number of packets the chunk carries.
    pub pkt_count: u32,
    /// Whether this chunk was placed on a non-home capture queue by the
    /// offloading mechanism (consumers lose core affinity on it).
    pub offloaded: bool,
    /// Arrival time of the chunk's first packet (drives latency
    /// accounting: every packet in the chunk waited at least
    /// `delivery − first_fill` minus its own position in the fill).
    pub first_fill_ns: u64,
}

/// A chunk as the kernel tracks it.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Global identity.
    pub id: ChunkId,
    /// Lifecycle state.
    pub state: ChunkState,
    /// Cells filled with received packets (0..=M).
    pub fill: u32,
    /// The three address views (§3.2.1), synthesized deterministically:
    /// the NIC uses `dma`, the kernel `kernel`, applications `process`.
    pub dma_address: u64,
    /// Kernel-space address of the chunk.
    pub kernel_address: u64,
    /// Process-space address of the chunk (populated at `open`).
    pub process_address: u64,
    /// Simulation timestamp at which the first packet of the current
    /// fill entered the chunk (drives the capture timeout).
    pub first_fill_ns: u64,
}

impl Chunk {
    /// Creates a free chunk with synthesized address views. Address
    /// synthesis mirrors a real mapping: one contiguous kernel region per
    /// pool, offset by chunk index, with fixed translation constants for
    /// the DMA/process views.
    pub fn new(id: ChunkId, m: usize) -> Self {
        let span = (m * CELL_BYTES) as u64;
        let base = 0x1000_0000_0000u64
            + u64::from(id.nic_id) * 0x100_0000_0000
            + u64::from(id.ring_id) * 0x10_0000_0000;
        let kernel = base + u64::from(id.chunk_id) * span;
        Chunk {
            id,
            state: ChunkState::Free,
            fill: 0,
            dma_address: kernel - 0x1000_0000_0000 + 0x8_0000_0000,
            kernel_address: kernel,
            process_address: kernel + 0x7000_0000_0000,
            first_fill_ns: 0,
        }
    }

    /// The metadata view handed to user space at capture.
    pub fn meta(&self, offloaded: bool) -> ChunkMeta {
        ChunkMeta {
            id: self.id,
            process_address: self.process_address,
            pkt_count: self.fill,
            offloaded,
            first_fill_ns: self.first_fill_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(c: u32) -> ChunkId {
        ChunkId {
            nic_id: 1,
            ring_id: 2,
            chunk_id: c,
        }
    }

    #[test]
    fn new_chunk_is_free_and_empty() {
        let c = Chunk::new(id(0), 256);
        assert_eq!(c.state, ChunkState::Free);
        assert_eq!(c.fill, 0);
    }

    #[test]
    fn three_addresses_are_distinct_and_consistent() {
        let a = Chunk::new(id(0), 256);
        let b = Chunk::new(id(1), 256);
        assert_ne!(a.dma_address, a.kernel_address);
        assert_ne!(a.kernel_address, a.process_address);
        // Adjacent chunks are one chunk span apart in every view.
        let span = (256 * CELL_BYTES) as u64;
        assert_eq!(b.kernel_address - a.kernel_address, span);
        assert_eq!(b.dma_address - a.dma_address, span);
        assert_eq!(b.process_address - a.process_address, span);
    }

    #[test]
    fn chunks_of_different_rings_do_not_overlap() {
        let a = Chunk::new(
            ChunkId {
                nic_id: 0,
                ring_id: 0,
                chunk_id: 499,
            },
            256,
        );
        let b = Chunk::new(
            ChunkId {
                nic_id: 0,
                ring_id: 1,
                chunk_id: 0,
            },
            256,
        );
        assert!(a.kernel_address + (256 * CELL_BYTES) as u64 <= b.kernel_address);
    }

    #[test]
    fn meta_reflects_fill() {
        let mut c = Chunk::new(id(3), 64);
        c.fill = 17;
        let m = c.meta(true);
        assert_eq!(m.id, id(3));
        assert_eq!(m.pkt_count, 17);
        assert!(m.offloaded);
        assert_eq!(m.process_address, c.process_address);
    }
}
