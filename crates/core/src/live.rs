//! The live (real-thread) WireCAP engine.
//!
//! Runs the ring-buffer-pool and buddy-group mechanisms on OS threads
//! against a [`nicsim::livenic::LiveNic`], with real packets. One capture
//! thread per receive queue performs the capture/recycle/offload work;
//! application threads consume chunks through [`LiveConsumer`], which
//! also implements [`pcap::PacketSource`] so ordinary pcap-style programs
//! run on top unchanged — the paper's Libpcap-compatibility claim,
//! demonstrated end-to-end in the examples.
//!
//! Simulation-mode experiments (the figures) use
//! [`crate::engine::WireCapEngine`]; this module exists to prove the
//! design works as a concurrent artifact.

use crate::buddy::BuddyGroups;
use crate::config::WireCapConfig;
use crossbeam::queue::ArrayQueue;
use netproto::Packet;
use nicsim::livenic::LiveNic;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A captured chunk in the live engine: the packets plus the metadata a
/// consumer needs to recycle it.
#[derive(Debug)]
pub struct LiveChunk {
    /// The captured packets (up to M).
    pub packets: Vec<Packet>,
    /// The queue whose pool owns this chunk.
    pub home: usize,
    /// Whether the offloading policy moved it off its home queue.
    pub offloaded: bool,
}

struct QueueShared {
    capture: ArrayQueue<LiveChunk>,
    recycle: ArrayQueue<usize>, // chunk counts to return to the pool
    free_chunks: AtomicUsize,
    captured_pkts: AtomicU64,
    dropped_pkts: AtomicU64,
    delivered_pkts: AtomicU64,
    offloaded_chunks: AtomicU64,
    partial_chunks: AtomicU64,
    /// Set by the capture thread after it has flushed its final chunk;
    /// consumers only treat an empty capture queue as end-of-stream once
    /// this is set.
    closed: AtomicBool,
}

/// The live WireCAP engine: per-queue capture threads over a live NIC.
pub struct LiveWireCap {
    nic: Arc<LiveNic>,
    cfg: WireCapConfig,

    shared: Vec<Arc<QueueShared>>,
    threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl LiveWireCap {
    /// Starts capture threads for every queue of `nic`.
    ///
    /// `groups` is the buddy-group partition; pass
    /// [`BuddyGroups::isolated`] for basic mode.
    pub fn start(nic: Arc<LiveNic>, cfg: WireCapConfig, groups: BuddyGroups) -> Self {
        cfg.validate().expect("invalid WireCAP configuration");
        let queues = nic.queue_count();
        let shared: Vec<Arc<QueueShared>> = (0..queues)
            .map(|_| {
                Arc::new(QueueShared {
                    capture: ArrayQueue::new(cfg.r),
                    recycle: ArrayQueue::new(cfg.r),
                    free_chunks: AtomicUsize::new(cfg.r),
                    captured_pkts: AtomicU64::new(0),
                    dropped_pkts: AtomicU64::new(0),
                    delivered_pkts: AtomicU64::new(0),
                    offloaded_chunks: AtomicU64::new(0),
                    partial_chunks: AtomicU64::new(0),
                    closed: AtomicBool::new(false),
                })
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let threads = (0..queues)
            .map(|q| {
                let nic = Arc::clone(&nic);
                let shared: Vec<Arc<QueueShared>> = shared.iter().map(Arc::clone).collect();
                let stop = Arc::clone(&stop);
                let group = groups.group_of(q).cloned();
                std::thread::Builder::new()
                    .name(format!("wirecap-capture-{q}"))
                    .spawn(move || capture_thread(q, nic, shared, cfg, group, stop))
                    .expect("spawning capture thread")
            })
            .collect();
        LiveWireCap {
            nic,
            cfg,
            shared,
            threads,
            stop,
        }
    }

    /// A consumer handle for queue `q` (the application side).
    pub fn consumer(&self, q: usize) -> LiveConsumer {
        LiveConsumer {
            q,
            shared: self.shared.iter().map(Arc::clone).collect(),
            pending: None,
            cursor: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &WireCapConfig {
        &self.cfg
    }

    /// The NIC this engine captures from.
    pub fn nic(&self) -> &Arc<LiveNic> {
        &self.nic
    }

    /// Packets captured into chunks on queue `q`.
    pub fn captured(&self, q: usize) -> u64 {
        self.shared[q].captured_pkts.load(Ordering::Relaxed)
    }

    /// Packets dropped on queue `q` for want of a free chunk.
    pub fn dropped(&self, q: usize) -> u64 {
        self.shared[q].dropped_pkts.load(Ordering::Relaxed)
    }

    /// Packets consumed from queue `q`'s capture queue.
    pub fn delivered(&self, q: usize) -> u64 {
        self.shared[q].delivered_pkts.load(Ordering::Relaxed)
    }

    /// Chunks queue `q` received via offloading.
    pub fn offloaded_in(&self, q: usize) -> u64 {
        self.shared[q].offloaded_chunks.load(Ordering::Relaxed)
    }

    /// Chunks delivered through the timeout partial path.
    pub fn partial_chunks(&self, q: usize) -> u64 {
        self.shared[q].partial_chunks.load(Ordering::Relaxed)
    }

    /// Stops the capture threads (consumers should be joined first) and
    /// waits for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            t.join().expect("capture thread panicked");
        }
    }
}

fn capture_thread(
    q: usize,
    nic: Arc<LiveNic>,
    shared: Vec<Arc<QueueShared>>,
    cfg: WireCapConfig,
    group: Option<crate::buddy::BuddyGroup>,
    stop: Arc<AtomicBool>,
) {
    let queue = nic.queue(q);
    let own = &shared[q];
    let mut current: Vec<Packet> = Vec::with_capacity(cfg.m);
    let mut chunk_started = Instant::now();
    let timeout = Duration::from_nanos(cfg.capture_timeout_ns);
    loop {
        // Recycle first: returned chunks replenish the pool.
        while let Some(n) = own.recycle.pop() {
            own.free_chunks.fetch_add(n, Ordering::Relaxed);
        }

        let mut progressed = false;
        while let Some(pkt) = queue.pop() {
            progressed = true;
            if current.is_empty() {
                // A chunk is claimed from the pool when it starts filling.
                if own.free_chunks.load(Ordering::Relaxed) == 0 {
                    own.dropped_pkts.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                own.free_chunks.fetch_sub(1, Ordering::Relaxed);
                chunk_started = Instant::now();
            }
            current.push(pkt);
            own.captured_pkts.fetch_add(1, Ordering::Relaxed);
            if current.len() == cfg.m {
                deliver(q, &shared, &cfg, group.as_ref(), &mut current, false);
            }
        }

        // Timeout partial delivery.
        if !current.is_empty() && chunk_started.elapsed() >= timeout {
            own.partial_chunks.fetch_add(1, Ordering::Relaxed);
            deliver(q, &shared, &cfg, group.as_ref(), &mut current, true);
        }

        if !progressed {
            let ending = stop.load(Ordering::SeqCst) || (nic.is_stopped() && queue.depth() == 0);
            if ending {
                // Close semantics: flush the in-progress chunk without
                // waiting for the timeout, then signal consumers.
                if !current.is_empty() {
                    own.partial_chunks.fetch_add(1, Ordering::Relaxed);
                    deliver(q, &shared, &cfg, group.as_ref(), &mut current, true);
                }
                own.closed.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::yield_now();
        }
    }
}

fn deliver(
    q: usize,
    shared: &[Arc<QueueShared>],
    cfg: &WireCapConfig,
    group: Option<&crate::buddy::BuddyGroup>,
    current: &mut Vec<Packet>,
    _partial: bool,
) {
    let packets = std::mem::replace(current, Vec::with_capacity(cfg.m));
    let target = match (cfg.threshold, group) {
        (Some(t), Some(g)) => {
            let lens: Vec<usize> = shared.iter().map(|s| s.capture.len()).collect();
            g.place(q, &lens, cfg.capture_queue_capacity(), t)
        }
        _ => q,
    };
    let chunk = LiveChunk {
        packets,
        home: q,
        offloaded: target != q,
    };
    if chunk.offloaded {
        shared[target].offloaded_chunks.fetch_add(1, Ordering::Relaxed);
    }
    // The capture queue has capacity R and at most R chunks exist, but an
    // offload target shares its queue with its own chunks; fall back to
    // the home queue if the buddy's queue is momentarily full.
    if let Err(chunk) = shared[target].capture.push(chunk) {
        if shared[q].capture.push(chunk).is_err() {
            // Both full: the chunk's packets are lost and the chunk
            // returns to the pool (cannot happen for home-only delivery).
            shared[q].free_chunks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The application-side handle for one queue: iterates captured packets
/// and recycles chunks when they are fully consumed.
pub struct LiveConsumer {
    q: usize,
    shared: Vec<Arc<QueueShared>>,
    pending: Option<LiveChunk>,
    cursor: usize,
}

impl LiveConsumer {
    /// Takes the next whole chunk, blocking (with yields) until one is
    /// available or the stream ends.
    pub fn next_chunk(&mut self) -> Option<LiveChunk> {
        loop {
            if let Some(chunk) = self.shared[self.q].capture.pop() {
                return Some(chunk);
            }
            if self.shared[self.q].closed.load(Ordering::SeqCst) {
                // The capture thread has flushed everything it will ever
                // deliver; one final pop closes the race window.
                return self.shared[self.q].capture.pop();
            }
            std::thread::yield_now();
        }
    }

    /// Returns a consumed chunk to its home pool.
    pub fn recycle(&self, chunk: LiveChunk) {
        let home = &self.shared[chunk.home];
        home.delivered_pkts
            .fetch_add(chunk.packets.len() as u64, Ordering::Relaxed);
        // Best effort: the recycle queue is sized R so this only fails if
        // the producer raced ahead; retry via spin.
        let mut n = 1;
        while let Err(v) = home.recycle.push(n) {
            n = v;
            std::thread::yield_now();
        }
    }
}

impl pcap::PacketSource for LiveConsumer {
    fn next_packet(&mut self) -> Option<Packet> {
        loop {
            if let Some(chunk) = &mut self.pending {
                if self.cursor < chunk.packets.len() {
                    let pkt = chunk.packets[self.cursor].clone();
                    self.cursor += 1;
                    return Some(pkt);
                }
                let done = self.pending.take().unwrap();
                self.cursor = 0;
                self.recycle(done);
            }
            match self.next_chunk() {
                Some(chunk) => {
                    self.pending = Some(chunk);
                    self.cursor = 0;
                }
                None => return None,
            }
        }
    }

    fn is_done(&self) -> bool {
        self.pending.is_none()
            && self.shared[self.q].closed.load(Ordering::SeqCst)
            && self.shared[self.q].capture.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn packets(n: u16) -> Vec<Packet> {
        let mut b = PacketBuilder::new();
        (0..n)
            .map(|i| {
                let flow = FlowKey::udp(
                    Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                    1000 + i,
                    Ipv4Addr::new(131, 225, 2, 1),
                    443,
                );
                b.build_packet(u64::from(i), &flow, 100).unwrap()
            })
            .collect()
    }

    fn test_cfg() -> WireCapConfig {
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 2_000_000; // 2 ms wall-clock
        cfg
    }

    #[test]
    fn live_capture_delivers_everything() {
        let nic = LiveNic::new(2, 4096);
        let cap = LiveWireCap::start(Arc::clone(&nic), test_cfg(), BuddyGroups::isolated(2));
        let consumers: Vec<_> = (0..2)
            .map(|q| {
                let mut c = cap.consumer(q);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while let Some(chunk) = c.next_chunk() {
                        n += chunk.packets.len() as u64;
                        c.recycle(chunk);
                    }
                    n
                })
            })
            .collect();
        let total = 3000u16;
        for p in packets(total) {
            while nic.inject(p.clone()).is_none() {
                std::thread::yield_now();
            }
        }
        nic.stop();
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        cap.shutdown();
        assert_eq!(consumed, u64::from(total));
    }

    #[test]
    fn live_consumer_as_pcap_source() {
        use pcap::capture::Capture;
        use pcap::PacketSource as _;
        let nic = LiveNic::new(1, 4096);
        let cap = LiveWireCap::start(Arc::clone(&nic), test_cfg(), BuddyGroups::isolated(1));
        let consumer = cap.consumer(0);
        let handle = std::thread::spawn(move || {
            let mut pcap_cap = Capture::new(consumer);
            pcap_cap.set_filter_expr("131.225.2 and udp").unwrap();
            let mut seen = 0u64;
            loop {
                let n = pcap_cap.dispatch(64, |_| seen += 1);
                if n == 0 && pcap_cap.source_mut().is_done() {
                    return seen;
                }
            }
        });
        for p in packets(500) {
            while nic.inject(p.clone()).is_none() {
                std::thread::yield_now();
            }
        }
        nic.stop();
        let matched = handle.join().unwrap();
        cap.shutdown();
        // Every generated packet is UDP to 131.225.2.1.
        assert_eq!(matched, 500);
    }

    #[test]
    fn partial_timeout_fires_on_stragglers() {
        let nic = LiveNic::new(1, 128);
        let cap = LiveWireCap::start(Arc::clone(&nic), test_cfg(), BuddyGroups::isolated(1));
        // 10 packets: far less than M = 64, so only the timeout path can
        // deliver them.
        for p in packets(10) {
            nic.inject(p).unwrap();
        }
        let mut c = cap.consumer(0);
        let chunk = c.next_chunk().expect("timeout should deliver");
        assert_eq!(chunk.packets.len(), 10);
        c.recycle(chunk);
        assert_eq!(cap.partial_chunks(0), 1);
        assert_eq!(cap.delivered(0), 10);
        nic.stop();
        cap.shutdown();
    }
}
