//! The live (real-thread) WireCAP engine.
//!
//! Runs the ring-buffer-pool and buddy-group mechanisms on OS threads
//! against any [`CaptureBackend`] (DESIGN.md §4.13) — the in-memory
//! [`nicsim::livenic::LiveNic`] behind the
//! [`crate::backend::NicSimBackend`] adapter, or the `shmring`
//! descriptor-ring backend — with real packets. One capture thread per
//! receive queue performs the capture/recycle/offload work;
//! application threads consume chunks through [`LiveConsumer`], which
//! also implements [`pcap::PacketSource`] so ordinary pcap-style programs
//! run on top unchanged — the paper's Libpcap-compatibility claim,
//! demonstrated end-to-end in the examples.
//!
//! Construction goes through [`LiveWireCap::builder`].
//!
//! # Hot path
//!
//! The capture path is allocation-free and batched:
//!
//! * packet payloads live in a per-queue [`ChunkArena`] allocated once at
//!   start; the capture thread writes each packet straight into a cell of
//!   the chunk it is filling, and consumers read borrowed `&[u8]` slices
//!   through [`ChunkView`] ([`LiveConsumer::view`]). A [`LiveChunk`] is
//!   a ~16-byte handle, not a packet vector;
//! * chunk hand-off uses one [`BatchRing`] per (target queue, producer)
//!   pair — strictly single-producer, so a whole batch of chunks is
//!   published with a single release store. Buddy-group offloading picks
//!   the target ring; because each producer owns its row of rings, the
//!   offload path needs no fallback and can never lose a chunk to a full
//!   queue;
//! * recycling returns the sealed slot through a small MPMC queue sized
//!   R — it can never be full because only R slots exist per queue.
//!
//! [`LiveConsumer::recycle`] consumes the [`LiveChunk`] by value, which
//! statically invalidates every [`ChunkView`] borrowed from it — the
//! compile-time form of the paper's rule that a recycled chunk's cells
//! may be overwritten by DMA at any time.
//!
//! Simulation-mode experiments (the figures) use
//! [`crate::engine::WireCapEngine`]; this module exists to prove the
//! design works as a concurrent artifact.

use crate::arena::{ChunkArena, ChunkView, FreeSlot, SealedSlot};
use crate::backend::{CaptureBackend, LiveWireCapBuilder};
use crate::buddy::{BuddyGroup, BuddyGroups};
use crate::claim::{ClaimQueue, ReorderBuffer};
use crate::config::{WireCapConfig, CELL_BYTES};
use crate::spsc::{BatchRing, MAX_BATCH};
use crate::steal::{available_cores, pin_to_core, AdaptivePoller, ConsumerPool, WakeupGate};
use crossbeam::queue::ArrayQueue;
use netproto::Packet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::{
    clock, dump, kind, EngineSnapshot, Observable, PipelineConfig, QueueTelemetry, Registry,
    SpanRecord, SpanStamps, TelemetryPipeline, TraceEvent,
};

/// Packets pulled from the NIC queue per batch.
const NIC_POP_BATCH: usize = 256;

/// A captured chunk in the live engine: a sealed arena slot plus the
/// metadata a consumer needs to view and recycle it. The payload stays
/// in the home queue's [`ChunkArena`]; borrow it with
/// [`LiveConsumer::view`].
#[derive(Debug)]
pub struct LiveChunk {
    pub(crate) seal: SealedSlot,
    pub(crate) home: u32,
    pub(crate) offloaded: bool,
    /// Seal-order sequence number within the home queue, stamped by the
    /// home capture thread (monotonic from 0 per queue). Drives the
    /// in-order reorder buffer; informational otherwise.
    pub(crate) seq: u64,
    /// Lifecycle span stamps (DESIGN.md §4.14), `Some` on the 1-in-N
    /// chunks the span sampler picked. The stamps travel inside the
    /// chunk because the chunk is owned by exactly one thread at every
    /// stage — plain `u64`s, no atomics, no allocation.
    pub(crate) span: Option<SpanStamps>,
}

impl LiveChunk {
    /// Packets the chunk holds.
    pub fn len(&self) -> usize {
        self.seal.len()
    }

    /// True if the chunk holds no packets.
    pub fn is_empty(&self) -> bool {
        self.seal.is_empty()
    }

    /// The queue whose pool owns this chunk.
    pub fn home(&self) -> usize {
        self.home as usize
    }

    /// Whether the offloading policy moved it off its home queue.
    pub fn offloaded(&self) -> bool {
        self.offloaded
    }

    /// Seal-order sequence number within the home queue (monotonic from
    /// 0 per queue). In in-order concurrent mode delivery follows this
    /// ordering exactly.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// True when the span sampler picked this chunk (1-in-N per queue,
    /// DESIGN.md §4.14).
    pub fn is_sampled(&self) -> bool {
        self.span.is_some()
    }

    /// Stamps the disk-handoff instant — the drainer → writer ownership
    /// transfer in the capture-to-disk subsystem — on a sampled chunk.
    /// No-op when the chunk is unsampled.
    pub fn stamp_disk_handoff(&mut self, now_ns: u64) {
        if let Some(span) = self.span.as_mut() {
            span.disk_handoff_ns = now_ns;
        }
    }

    /// Stamps the disk write-commit instant on a sampled chunk and
    /// returns the handoff → commit duration for the caller to record
    /// into its disk shard's `stage_disk_ns` histogram. `None` when the
    /// chunk is unsampled.
    pub fn stamp_disk_write(&mut self, now_ns: u64) -> Option<u64> {
        self.span.as_mut().map(|span| {
            span.disk_write_ns = now_ns;
            now_ns.saturating_sub(span.disk_handoff_ns)
        })
    }
}

pub(crate) struct Shared {
    /// `rings[target][producer]`: the SPSC batch ring carrying chunks
    /// captured by `producer` to `target`'s consumers.
    pub(crate) rings: Vec<Vec<BatchRing<LiveChunk>>>,
    /// Per-home-queue recycle queues carrying sealed slots back to the
    /// capture thread. Capacity R; can never be full.
    pub(crate) recycle: Vec<ArrayQueue<SealedSlot>>,
    /// Per-queue cell arenas; all payload bytes live here.
    pub(crate) arenas: Vec<Arc<ChunkArena>>,
    /// All counters, histograms and the event tracer — sharded by
    /// writer role per queue (see `telemetry::QueueCounters`), so the
    /// capture thread, the consumers, and offloading buddies each write
    /// their own cache line and never false-share on the hot path.
    pub(crate) tel: Registry,
    /// Woken whenever a capture thread publishes chunks or closes its
    /// rings; pool workers park here when their queues go quiet.
    pub(crate) delivery_gate: WakeupGate,
    /// Woken at shutdown; capture threads park here when the NIC is
    /// idle (NIC arrivals are invisible to the gate, so capture parks
    /// are bounded by the adaptive poller's park timeout).
    pub(crate) capture_gate: WakeupGate,
    /// Concurrent single-queue consumption (DESIGN.md §4.12): one
    /// lock-free claim queue per *target* queue, replacing the SPSC
    /// rings as the delivery path when `cfg.concurrent_queue` is set.
    /// Every capture thread is a producer on every target's queue
    /// (buddy offload crosses queues), so each is sized to hold every
    /// chunk in existence (`queues × R`) and closed by producer
    /// countdown.
    pub(crate) claims: Option<Vec<ClaimQueue<LiveChunk>>>,
    /// In-order mode: one reorder buffer per *home* queue (capacity R)
    /// re-serializing claimed chunks by seal sequence.
    pub(crate) reorder: Option<Vec<ReorderBuffer<LiveChunk>>>,
    /// Fast-recycle bound from the resolved [`TuningPlan`]: max
    /// sealed-but-unrecycled chunks a consumer holds before it
    /// prioritizes recycling over claiming new work. 0 = unbounded
    /// (`Throughput` mode's lazy recycle at refill).
    ///
    /// [`TuningPlan`]: crate::config::TuningPlan
    pub(crate) recycle_depth: usize,
    /// The resolved tuning derivation, reported verbatim in every
    /// engine snapshot so a capture of "what geometry actually ran"
    /// travels with the counters.
    pub(crate) tuning: telemetry::TuningTelemetry,
}

/// The live WireCAP engine: per-queue capture threads over any
/// [`CaptureBackend`].
pub struct LiveWireCap {
    backend: Arc<dyn CaptureBackend>,
    cfg: WireCapConfig,

    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    /// Sampler + scrape endpoint, attached from the environment
    /// (`WIRECAP_TELEMETRY_LISTEN` / `WIRECAP_TELEMETRY_SAMPLE_MS`).
    pipeline: Option<TelemetryPipeline>,
}

/// A cheap, thread-safe observer handle over a running [`LiveWireCap`]:
/// what the telemetry sampler and scrape endpoint hold. Keeps only the
/// shared state alive — not the capture threads — so observation never
/// extends the engine's lifetime.
struct LiveObserver {
    shared: Arc<Shared>,
    backend: Arc<dyn CaptureBackend>,
    cfg: WireCapConfig,
}

impl Observable for LiveObserver {
    fn snapshot(&self) -> EngineSnapshot {
        engine_snapshot(&self.shared, self.backend.as_ref(), &self.cfg)
    }

    fn trace_events(&self) -> Vec<TraceEvent> {
        self.shared.tel.tracer().events()
    }

    fn spans(&self) -> Vec<SpanRecord> {
        self.shared.tel.spans().records()
    }
}

impl LiveWireCap {
    /// A [`LiveWireCapBuilder`]: the way to construct a live engine
    /// over any backend.
    ///
    /// ```ignore
    /// let engine = LiveWireCap::builder()
    ///     .backend(NicSimBackend::new(Arc::clone(&nic)))
    ///     .config(cfg)
    ///     .groups(groups)
    ///     .start();
    /// ```
    pub fn builder() -> LiveWireCapBuilder {
        LiveWireCapBuilder::default()
    }

    /// Starts capture threads for every queue of `backend`. Called by
    /// [`LiveWireCapBuilder::start`].
    pub(crate) fn start_with(
        backend: Arc<dyn CaptureBackend>,
        cfg: WireCapConfig,
        groups: BuddyGroups,
    ) -> Self {
        cfg.validate().expect("invalid WireCAP configuration");
        let queues = backend.queue_count();
        // Resolve the tuning derivation (DESIGN.md §4.16) against the
        // actual queue count and build the pools with the *effective*
        // geometry: `CacheResident` shrinks R (and sometimes M) so the
        // hot working set fits the LLC budget; `Throughput` is the
        // identity.
        let plan = cfg.tuning_plan(queues);
        let tuning = crate::engine::tuning_telemetry(&cfg, queues);
        let cfg = plan.apply(cfg);
        let mut arenas = Vec::with_capacity(queues);
        let mut freelists = Vec::with_capacity(queues);
        for _ in 0..queues {
            let (arena, slots) = ChunkArena::with_slots(cfg.r, cfg.m, CELL_BYTES);
            arenas.push(arena);
            freelists.push(slots);
        }
        let shared = Arc::new(Shared {
            rings: (0..queues)
                .map(|_| {
                    (0..queues)
                        .map(|_| BatchRing::with_capacity(cfg.r))
                        .collect()
                })
                .collect(),
            recycle: (0..queues).map(|_| ArrayQueue::new(cfg.r)).collect(),
            arenas,
            tel: Registry::new(queues),
            delivery_gate: WakeupGate::new(),
            capture_gate: WakeupGate::new(),
            claims: cfg.concurrent_queue.then(|| {
                (0..queues)
                    .map(|_| ClaimQueue::new(queues * cfg.r, queues))
                    .collect()
            }),
            reorder: (cfg.concurrent_queue && cfg.in_order)
                .then(|| (0..queues).map(|_| ReorderBuffer::new(cfg.r)).collect()),
            recycle_depth: plan.recycle_depth,
            tuning,
        });
        if std::env::var_os("WIRECAP_TELEMETRY_DUMP").is_some() {
            dump::install_sigusr1();
        }
        // Live observability (DESIGN.md §4.9): sampler thread + scrape
        // endpoint, attached only when the telemetry env asks for them.
        // The anomaly detector's queue-depth limit comes from the
        // engine's own offloading threshold T — a capture queue
        // sustained above T means offloading has stopped keeping up.
        let mut pcfg = PipelineConfig::from_env();
        if let (Some(anom), Some(t)) = (pcfg.anomaly.as_mut(), cfg.threshold) {
            anom.queue_depth_limit = Some((t * cfg.capture_queue_capacity() as f64).ceil() as u64);
        }
        // Tail latency as a first-class SLO: a configured p99.9 budget
        // becomes a hysteretic anomaly condition, so a sustained
        // regression freezes a flight record like any other anomaly.
        if let (Some(anom), Some(slo)) = (pcfg.anomaly.as_mut(), cfg.latency_slo_ns) {
            anom.tail_latency_ns = Some(slo);
        }
        let pipeline = TelemetryPipeline::start(
            &cfg.name(),
            Arc::new(LiveObserver {
                shared: Arc::clone(&shared),
                backend: Arc::clone(&backend),
                cfg,
            }),
            pcfg,
        );
        let stop = Arc::new(AtomicBool::new(false));
        let threads = freelists
            .into_iter()
            .enumerate()
            .map(|(q, free)| {
                let backend = Arc::clone(&backend);
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let group = groups.group_of(q).cloned();
                std::thread::Builder::new()
                    .name(format!("wirecap-capture-{q}"))
                    .spawn(move || capture_thread(q, backend, shared, cfg, group, stop, free))
                    .expect("spawning capture thread")
            })
            .collect();
        LiveWireCap {
            backend,
            cfg,
            shared,
            threads,
            stop,
            pipeline,
        }
    }

    /// A [`ChunkLens`]: a thread-safe handle that can view any
    /// [`LiveChunk`]'s packets and account disk-sink telemetry from
    /// threads that are not the queue's consumer. The capture-to-disk
    /// subsystem's writer threads hold one of these; the corresponding
    /// [`LiveConsumer`] stays with the drainer thread that owns
    /// recycling.
    pub fn chunk_lens(&self) -> ChunkLens {
        ChunkLens {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Starts a [`ConsumerPool`]: `workers` threads consuming the
    /// queues of `group` with chunk-granularity work stealing between
    /// them and adaptive polling when idle (DESIGN.md §4.11). The pool
    /// must be the group's *only* consumer — do not also attach
    /// [`LiveConsumer`]s to its queues. `handler` runs once per
    /// delivered chunk, on whichever worker drained or stole it; the
    /// pool recycles the chunk home when the handler returns.
    ///
    /// Join order at end-of-run: stop the NIC, [`ConsumerPool::join`]
    /// *after* [`Self::shutdown`] has closed the rings — or simply join
    /// the pool once `shutdown` returns.
    pub fn consumer_pool<F>(&self, group: &BuddyGroup, workers: usize, handler: F) -> ConsumerPool
    where
        F: Fn(crate::steal::PoolDelivery<'_>) + Send + Sync + 'static,
    {
        ConsumerPool::spawn(
            Arc::clone(&self.shared),
            self.cfg,
            group,
            workers,
            Arc::new(handler),
        )
    }

    /// A consumer handle for queue `q` (the application side).
    ///
    /// # Panics
    ///
    /// In concurrent single-queue mode (`cfg.concurrent_queue`) the
    /// claim queues are the only delivery path — attach a
    /// [`Self::consumer_pool`] instead.
    pub fn consumer(&self, q: usize) -> LiveConsumer {
        assert!(
            !self.cfg.concurrent_queue,
            "concurrent_queue mode delivers through consumer_pool(), not per-queue consumers"
        );
        assert!(q < self.shared.rings.len());
        let queues = self.shared.rings.len();
        LiveConsumer {
            q,
            shared: Arc::clone(&self.shared),
            inbox: VecDeque::new(),
            scratch: Vec::new(),
            rr: 0,
            pending: None,
            cursor: 0,
            tally: vec![std::cell::Cell::new((0, 0)); queues],
            delivered_ns: std::cell::Cell::new(clock::mono_ns()),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &WireCapConfig {
        &self.cfg
    }

    /// The backend this engine captures from.
    pub fn backend(&self) -> &Arc<dyn CaptureBackend> {
        &self.backend
    }

    /// Full telemetry snapshot for queue `q` — the same
    /// [`QueueTelemetry`] type (and semantics) the simulation engine
    /// returns from `CaptureEngine::telemetry(q)`. Counters and gauges
    /// may disagree by a few in-flight packets while capture threads
    /// run.
    pub fn telemetry(&self, q: usize) -> QueueTelemetry {
        queue_telemetry(&self.shared, self.backend.as_ref(), &self.cfg, q)
    }

    /// Full engine snapshot in the unified schema (JSON / Prometheus).
    pub fn snapshot(&self) -> EngineSnapshot {
        engine_snapshot(&self.shared, self.backend.as_ref(), &self.cfg)
    }

    /// The telemetry registry (counters + event tracer). Enable the
    /// tracer with `engine.registry().tracer().enable()`.
    pub fn registry(&self) -> &Registry {
        &self.shared.tel
    }

    /// A cloneable, owning handle to the same registry. Worker
    /// closures (which outlive any borrow of the engine) move clones
    /// across threads and flush per-chunk counter deltas through it.
    pub fn registry_handle(&self) -> RegistryHandle {
        RegistryHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// An [`Observable`] handle for external samplers / scrape servers.
    /// Holds only the shared telemetry state, never the threads.
    pub fn observer(&self) -> Arc<dyn Observable> {
        Arc::new(LiveObserver {
            shared: Arc::clone(&self.shared),
            backend: Arc::clone(&self.backend),
            cfg: self.cfg,
        })
    }

    /// The attached telemetry pipeline, when the environment requested
    /// one at start (`WIRECAP_TELEMETRY_LISTEN` etc.).
    pub fn telemetry_pipeline(&self) -> Option<&TelemetryPipeline> {
        self.pipeline.as_ref()
    }

    /// The scrape endpoint's bound address, when one is serving —
    /// resolves `WIRECAP_TELEMETRY_LISTEN=127.0.0.1:0` ephemeral ports.
    pub fn telemetry_addr(&self) -> Option<std::net::SocketAddr> {
        self.pipeline.as_ref().and_then(TelemetryPipeline::addr)
    }

    /// Stops the capture threads (consumers should be joined first) and
    /// waits for them. Writes a final telemetry snapshot when
    /// `WIRECAP_TELEMETRY_DUMP` is set.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Parked capture threads notice the flag immediately instead of
        // waiting out their bounded park timeout.
        self.shared.capture_gate.notify();
        for t in self.threads.drain(..) {
            t.join().expect("capture thread panicked");
        }
        // Stop the pipeline after the capture threads so its final
        // sampler tick sees the end-of-run counters.
        if let Some(mut p) = self.pipeline.take() {
            p.stop();
        }
        dump::dump_snapshot(&self.snapshot());
    }
}

/// Builds queue `q`'s [`QueueTelemetry`]: registry counters plus the
/// NIC-side accounting and the engine-owned gauges.
fn queue_telemetry(
    shared: &Shared,
    backend: &dyn CaptureBackend,
    cfg: &WireCapConfig,
    q: usize,
) -> QueueTelemetry {
    let mut t = shared.tel.snapshot_queue(q);
    // NIC-side accounting flows through the one fold in
    // `BackendQueue::fill_telemetry`, the same for every backend.
    backend.queue(q).fill_telemetry(&mut t);
    t.capture_queue_len = shared.rings[q].iter().map(|r| r.len() as u64).sum();
    if let Some(claims) = shared.claims.as_ref() {
        t.capture_queue_len += claims[q].len() as u64;
    }
    if let Some(reorder) = shared.reorder.as_ref() {
        t.reorder_occupancy = reorder[q].len();
    }
    // The watermark is also advanced by readers: every snapshot (and so
    // every sampler tick) folds the current depth in, which covers
    // basic mode, where the capture path makes no placement decisions.
    let wm = &shared.tel.queue(q).capture_queue_watermark;
    wm.observe(t.capture_queue_len);
    t.capture_queue_watermark = wm.get();
    // Chunks not currently sealed-and-outstanding are free (the one
    // being filled counts as free here; the gauge is approximate while
    // threads run).
    t.free_chunks = (cfg.r as u64).saturating_sub(t.sealed_chunks - t.recycled_chunks);
    t
}

/// Builds the engine-wide snapshot in the unified schema.
fn engine_snapshot(
    shared: &Shared,
    backend: &dyn CaptureBackend,
    cfg: &WireCapConfig,
) -> EngineSnapshot {
    EngineSnapshot {
        engine: cfg.name(),
        tuning: Some(shared.tuning.clone()),
        queues: (0..shared.rings.len())
            .map(|q| queue_telemetry(shared, backend, cfg, q))
            .collect(),
        workers: shared.tel.worker_telemetry(),
        copies: sim::stats::CopyMeter::default(),
        latency: sim::stats::LatencyStats::new(),
    }
}

struct CaptureState {
    q: usize,
    free: Vec<FreeSlot>,
    current: Option<FreeSlot>,
    chunk_started: Instant,
    /// Chunks sealed this iteration, staged per target queue.
    outbox: Vec<Vec<LiveChunk>>,
    /// Scratch for buddy placement decisions.
    lens: Vec<usize>,
    /// Next seal-order sequence number (per home queue, monotonic
    /// from 0) stamped onto every sealed chunk.
    next_seq: u64,
    /// Seal stamp for the current NIC poll batch: read once per poll,
    /// shared by every chunk sealed within it. The ceiling is one clock
    /// read per chunk; amortizing over the poll batch keeps the stamp
    /// within one poll duration (microseconds) of the true seal time at
    /// a fraction of the cost.
    now_ns: u64,
}

fn capture_thread(
    q: usize,
    backend: Arc<dyn CaptureBackend>,
    shared: Arc<Shared>,
    cfg: WireCapConfig,
    group: Option<crate::buddy::BuddyGroup>,
    stop: Arc<AtomicBool>,
    free: Vec<FreeSlot>,
) {
    if cfg.pin_threads {
        // Capture thread q on core q; pool workers map onto the cores
        // after the capture threads (see `ConsumerPool::spawn`).
        pin_to_core(q % available_cores());
    }
    let queues = shared.rings.len();
    let queue = backend.queue(q);
    let arena = Arc::clone(&shared.arenas[q]);
    let mut poller = AdaptivePoller::from_config(&cfg);
    let mut st = CaptureState {
        q,
        free,
        current: None,
        chunk_started: Instant::now(),
        outbox: (0..queues).map(|_| Vec::new()).collect(),
        lens: Vec::with_capacity(queues),
        next_seq: 0,
        now_ns: clock::mono_ns(),
    };
    let timeout = Duration::from_nanos(cfg.capture_timeout_ns);
    let cap = &shared.tel.queue(q).cap;
    // Set when the backend returns a fatal poll/recycle error: the
    // queue then closes through the normal flush path (DESIGN.md
    // §4.13), so conservation holds over everything captured.
    let mut backend_dead = false;
    loop {
        // Recycle first: returned slots replenish the local freelist.
        while let Some(seal) = shared.recycle[q].pop() {
            st.free.push(arena.release(seal));
        }

        let mut progressed = false;
        while !backend_dead {
            // Backpressure: never poll more packets than the chunks on
            // hand can absorb. When the pool is exhausted the excess
            // stays in the backend's ring — where the NIC-side drop
            // accounting (wire/nic drops) owns the loss — instead of
            // being polled and immediately discarded as capture drops.
            // Consumers notify the capture gate on recycle, so a parked
            // capture thread resumes draining as soon as slots return.
            if st.current.is_none() && st.free.is_empty() {
                while let Some(seal) = shared.recycle[q].pop() {
                    st.free.push(arena.release(seal));
                }
                if st.free.is_empty() {
                    break;
                }
            }
            let room =
                st.current.as_ref().map_or(0, |s| cfg.m - s.filled()) + st.free.len() * cfg.m;
            // Counter writes are batched: one relaxed add per poll batch
            // (≤ NIC_POP_BATCH packets), not one per packet.
            let mut captured_batch = 0u64;
            let mut dropped_batch = 0u64;
            let mut stamped = false;
            // The backend lends each frame to this sink for the duration
            // of the call; the sink copies it into an arena cell, so the
            // frame's backing slot is free to recycle right after.
            let polled = queue.poll_batch(NIC_POP_BATCH.min(room), &mut |frame| {
                if !stamped {
                    // One clock read per non-empty poll batch stamps
                    // every chunk sealed in it (`CaptureState::now_ns`).
                    st.now_ns = clock::mono_ns();
                    stamped = true;
                }
                if st.current.is_none() {
                    // Claim a chunk; drain the recycle queue before
                    // declaring the pool exhausted.
                    if st.free.is_empty() {
                        while let Some(seal) = shared.recycle[q].pop() {
                            st.free.push(arena.release(seal));
                        }
                    }
                    match st.free.pop() {
                        Some(slot) => {
                            st.chunk_started = Instant::now();
                            st.current = Some(slot);
                        }
                        None => {
                            dropped_batch += 1;
                            return;
                        }
                    }
                }
                let slot = st.current.as_mut().expect("claimed above");
                arena.write_packet(slot, frame.ts_ns, frame.wire_len, frame.data);
                captured_batch += 1;
                if slot.filled() == cfg.m {
                    let full = st.current.take().expect("slot just filled");
                    stage(&shared, &cfg, group.as_ref(), &arena, full, &mut st);
                }
            });
            let polled = match polled {
                Ok(n) => n,
                Err(e) => {
                    // Contract: a backend errors *before* lending any
                    // frame in the failing call, so there is nothing to
                    // count or recycle here.
                    eprintln!("wirecap: queue {q} backend poll failed, closing queue: {e}");
                    backend_dead = true;
                    break;
                }
            };
            if polled == 0 {
                break;
            }
            progressed = true;
            if captured_batch > 0 {
                cap.captured_packets.add_local(captured_batch);
            }
            if dropped_batch > 0 {
                cap.capture_drop_packets.add_local(dropped_batch);
            }
            // Return the batch's backing slots (the RDT advance). The
            // frames are in the arena — or counted as capture drops —
            // either way their ring slots are done.
            if let Err(e) = queue.recycle(polled) {
                eprintln!("wirecap: queue {q} backend recycle failed, closing queue: {e}");
                backend_dead = true;
            }
            flush(&shared, &mut st);
            if backend_dead {
                break;
            }
        }

        // Timeout partial delivery.
        if st.current.as_ref().is_some_and(|s| !s.is_empty())
            && st.chunk_started.elapsed() >= timeout
        {
            cap.partial_chunks.inc_local();
            let partial = st.current.take().expect("checked non-empty");
            st.now_ns = clock::mono_ns();
            stage(&shared, &cfg, group.as_ref(), &arena, partial, &mut st);
            flush(&shared, &mut st);
        }

        if progressed {
            poller.reset();
        } else {
            // Queue 0's capture thread doubles as the SIGUSR1 servant:
            // it renders the dump off the hot path, only when idle.
            if q == 0 && dump::take_dump_request() {
                dump::dump_snapshot(&engine_snapshot(&shared, backend.as_ref(), &cfg));
            }
            // Ticket before the stop check: a shutdown() notify after
            // this point turns the park into an immediate return.
            let ticket = shared.capture_gate.ticket();
            let ending = stop.load(Ordering::SeqCst)
                || backend_dead
                || (backend.is_stopped() && queue.depth() == 0);
            if ending {
                // Close semantics: flush the in-progress chunk without
                // waiting for the timeout, then close our rings.
                if let Some(last) = st.current.take() {
                    if last.is_empty() {
                        st.free.push(last);
                    } else {
                        cap.partial_chunks.inc_local();
                        st.now_ns = clock::mono_ns();
                        stage(&shared, &cfg, group.as_ref(), &arena, last, &mut st);
                    }
                }
                // A forced stop can strand frames the backend already
                // received (they raced in after this thread's last
                // empty poll): nobody will ever poll them again, so
                // drain and count them as capture drops — `offered ==
                // captured + capture_drops + nic_drops` must survive a
                // non-graceful shutdown. Bounded by ring capacity so a
                // still-live producer cannot wedge teardown.
                if !backend_dead {
                    let mut budget = queue.accounting().ring_capacity as usize + NIC_POP_BATCH;
                    let mut stranded = 0u64;
                    while budget > 0 {
                        match queue.poll_batch(NIC_POP_BATCH.min(budget), &mut |_| {}) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                stranded += n as u64;
                                budget -= n;
                                if queue.recycle(n).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    if stranded > 0 {
                        cap.capture_drop_packets.add_local(stranded);
                    }
                }
                flush(&shared, &mut st);
                for target in 0..queues {
                    shared.rings[target][q].close();
                }
                // Concurrent mode: this thread is a producer on every
                // target's claim queue; count it out of each so pool
                // workers can observe end-of-stream.
                if let Some(claims) = shared.claims.as_ref() {
                    for claim in claims {
                        claim.producer_done();
                    }
                }
                // Parked consumers must observe the closes promptly.
                shared.delivery_gate.notify();
                return;
            }
            // Adaptive idling: spin → yield → bounded park. NIC
            // arrivals cannot notify the gate, so parks are bounded by
            // the park timeout — and, while a non-empty partial chunk
            // is held, by its remaining capture-timeout budget, so the
            // partial-delivery deadline is never overslept.
            let max_park = if st.current.as_ref().is_some_and(|s| !s.is_empty()) {
                timeout.saturating_sub(st.chunk_started.elapsed())
            } else {
                Duration::MAX
            };
            poller.idle_capped(&shared.capture_gate, ticket, max_park);
        }
    }
}

/// Seals a filled chunk, runs the buddy placement policy, and stages the
/// chunk on the target's outbox (batched; [`flush`] publishes).
fn stage(
    shared: &Shared,
    cfg: &WireCapConfig,
    group: Option<&crate::buddy::BuddyGroup>,
    arena: &ChunkArena,
    slot: FreeSlot,
    st: &mut CaptureState,
) {
    let q = st.q;
    // Latency stamp: the poll-batch clock read from `CaptureState`
    // (at most one read per chunk, never one per packet); the consumer
    // closes the interval against its own batch delivery stamp.
    let seal = arena.seal_at(slot, st.now_ns);
    let cap = &shared.tel.queue(q).cap;
    cap.sealed_chunks.inc_local();
    cap.chunk_fill.record(seal.len() as u64);
    let target = match (cfg.threshold, group) {
        (Some(t), Some(g)) => {
            st.lens.clear();
            st.lens.extend(
                shared.rings.iter().enumerate().map(|(tq, row)| {
                    row.iter().map(|r| r.len()).sum::<usize>() + st.outbox[tq].len()
                }),
            );
            let target = g.place(q, &st.lens, cfg.capture_queue_capacity(), t);
            cap.capture_queue_depth.record(st.lens[target] as u64);
            shared
                .tel
                .queue(target)
                .capture_queue_watermark
                .observe(st.lens[target] as u64 + 1);
            target
        }
        _ => q,
    };
    if target != q {
        cap.offloaded_out_chunks.inc_local();
        shared.tel.queue(target).peer.offloaded_in_chunks.inc();
        let tracer = shared.tel.tracer();
        if tracer.is_enabled() {
            tracer.record(
                wall_ns(),
                q as u32,
                kind::OFFLOAD,
                seal.len() as u32,
                target as u32,
                st.lens.get(target).copied().unwrap_or(0) as u64,
            );
        }
    }
    let seq = st.next_seq;
    st.next_seq += 1;
    // Span sampling (DESIGN.md §4.14): the seal-order sequence number
    // picks 1-in-N chunks per queue — one branch and no extra state on
    // the unsampled path. The seal stamp reuses the poll-batch clock
    // read; later stages stamp at their own ownership transfers.
    let span =
        (cfg.span_sample_n > 0 && seq.is_multiple_of(u64::from(cfg.span_sample_n))).then(|| {
            SpanStamps {
                sealed_ns: st.now_ns,
                ..Default::default()
            }
        });
    st.outbox[target].push(LiveChunk {
        seal,
        home: q as u32,
        offloaded: target != q,
        seq,
        span,
    });
}

/// Wall-clock nanoseconds for tracer timestamps (only computed when the
/// tracer is enabled).
fn wall_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// Publishes every staged chunk. Each ring is per-producer with capacity
/// ≥ R, and at most R chunks homed here exist, so the loop always drains.
/// In concurrent single-queue mode the claim queues replace the rings;
/// each is sized `queues × R` (every chunk in existence fits), so the
/// defensive full-queue spin can never engage.
fn flush(shared: &Shared, st: &mut CaptureState) {
    let q = st.q;
    let cap = &shared.tel.queue(q).cap;
    let mut published = false;
    // Publish stamp for sampled chunks: one lazy clock read per flush,
    // shared by every sampled chunk in it (mirrors the poll-batch seal
    // stamp). Zero clock reads when nothing in the flush is sampled.
    let mut publish_ns = 0u64;
    for staged in st.outbox.iter_mut() {
        for chunk in staged.iter_mut() {
            if let Some(span) = chunk.span.as_mut() {
                if publish_ns == 0 {
                    publish_ns = clock::mono_ns();
                }
                span.published_ns = publish_ns;
            }
        }
    }
    if let Some(claims) = shared.claims.as_ref() {
        for (target, staged) in st.outbox.iter_mut().enumerate() {
            if staged.is_empty() {
                continue;
            }
            cap.batch_size.record(staged.len() as u64);
            published = true;
            for chunk in staged.drain(..) {
                let mut item = chunk;
                while let Err(back) = claims[target].push(item) {
                    item = back;
                    std::thread::yield_now();
                }
            }
        }
        if published {
            shared.delivery_gate.notify();
        }
        return;
    }
    for (target, staged) in st.outbox.iter_mut().enumerate() {
        while !staged.is_empty() {
            let pushed = shared.rings[target][q].push_batch(staged);
            if pushed == 0 {
                std::thread::yield_now();
            } else {
                cap.batch_size.record(pushed as u64);
                published = true;
            }
        }
    }
    if published {
        // One cheap notify per flush (a relaxed load when nobody is
        // parked) wakes pool workers parked on the delivery gate.
        shared.delivery_gate.notify();
    }
}

/// A thread-safe read lens over a running engine's arenas and disk-side
/// telemetry, independent of any per-queue consumer.
///
/// [`LiveConsumer`] is deliberately single-threaded (it owns the SPSC
/// consumer end and the recycle path), but the capture-to-disk
/// subsystem splits work across a drainer thread (owns the consumer)
/// and a writer thread (encodes packets to the file). The writer only
/// needs to *read* chunk payloads and bump the `disk` counter shard —
/// exactly what this handle exposes. Borrow rules still hold: a
/// [`ChunkView`] borrows the [`LiveChunk`], so the chunk cannot be
/// recycled (moved back to the drainer) while a view is alive.
#[derive(Clone)]
pub struct ChunkLens {
    shared: Arc<Shared>,
}

impl ChunkLens {
    /// Borrows the packets of `chunk` from its home arena — same
    /// semantics as [`LiveConsumer::view`], usable from any thread.
    pub fn view<'a>(&'a self, chunk: &'a LiveChunk) -> ChunkView<'a> {
        self.shared.arenas[chunk.home()].view(&chunk.seal)
    }

    /// The engine's queue count.
    pub fn queues(&self) -> usize {
        self.shared.rings.len()
    }

    /// Queue `q`'s disk-sink counter shard (multi-writer counters; the
    /// disk subsystem fires them per chunk or batch, never per packet).
    pub fn disk(&self, q: usize) -> &telemetry::DiskSide {
        &self.shared.tel.queue(q).disk
    }
}

impl std::fmt::Debug for ChunkLens {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkLens")
            .field("queues", &self.queues())
            .finish()
    }
}

/// A cloneable, owning handle to a running engine's telemetry
/// [`Registry`] — the counters-only analogue of [`ChunkLens`].
///
/// [`LiveWireCap::registry`] returns a borrow tied to the engine, which
/// `'static` worker closures cannot hold. This handle keeps the shared
/// state alive on its own, so pool handlers move a clone into their
/// closure and flush per-chunk counter deltas from any thread.
#[derive(Clone)]
pub struct RegistryHandle {
    pub(crate) shared: Arc<Shared>,
}

impl RegistryHandle {
    /// The counter group for queue `q`.
    #[inline]
    pub fn queue(&self, q: usize) -> &telemetry::QueueCounters {
        self.shared.tel.queue(q)
    }

    /// The full registry (tracer, spans, worker profiles).
    pub fn registry(&self) -> &Registry {
        &self.shared.tel
    }
}

impl std::fmt::Debug for RegistryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryHandle")
            .field("queues", &self.shared.tel.queue_count())
            .finish()
    }
}

/// The application-side handle for one queue: takes chunk handles,
/// borrows their packets through [`ChunkView`], and recycles the slots.
pub struct LiveConsumer {
    q: usize,
    shared: Arc<Shared>,
    /// Chunks popped in a batch but not yet handed to the application.
    inbox: VecDeque<LiveChunk>,
    scratch: Vec<LiveChunk>,
    /// Round-robin cursor over inbound per-producer rings.
    rr: usize,
    /// pcap-source iteration state.
    pending: Option<LiveChunk>,
    cursor: usize,
    /// Per-home-queue (delivered packets, recycled chunks) tallies,
    /// flushed to the shared telemetry counters at every inbox refill —
    /// one atomic add per batch of chunks, not one per chunk.
    tally: Vec<std::cell::Cell<(u64, u64)>>,
    /// Delivery timestamp for the current inbox batch: read once per
    /// refill, shared by every chunk popped in that batch. The refill is
    /// the delivery moment — when chunks crossed from the engine to the
    /// application — so the latency interval closes here rather than at
    /// recycle, and the clock cost is one read per batch, not per chunk.
    delivered_ns: std::cell::Cell<u64>,
}

impl LiveConsumer {
    /// Flushes the local delivery tallies to the shared counters.
    fn flush_tally(&self) {
        for (home, cell) in self.tally.iter().enumerate() {
            let (delivered, recycled) = cell.take();
            if recycled > 0 {
                let app = &self.shared.tel.queue(home).app;
                app.delivered_packets.add(delivered);
                app.recycled_chunks.add(recycled);
            }
        }
    }

    /// Pops a batch from each inbound ring into the local inbox.
    ///
    /// Fast-recycle mode (`CacheResident` tuning): the pop is capped at
    /// the plan's recycle depth, so the consumer never holds more
    /// sealed-but-unrecycled chunks than the bound — each one goes back
    /// to the capture thread while its cells are still cache-warm,
    /// instead of queueing a full `MAX_BATCH` behind the handler.
    fn refill(&mut self) -> bool {
        self.flush_tally();
        let producers = self.shared.rings[self.q].len();
        let depth = self.shared.recycle_depth;
        let mut budget = if depth > 0 {
            depth.saturating_sub(self.inbox.len()).max(1)
        } else {
            usize::MAX
        };
        let mut got = false;
        for i in 0..producers {
            let p = (self.rr + i) % producers;
            if budget == 0 {
                break;
            }
            let n =
                self.shared.rings[self.q][p].pop_batch(&mut self.scratch, MAX_BATCH.min(budget));
            budget -= n;
            if n > 0 {
                got = true;
            }
        }
        self.rr = (self.rr + 1) % producers;
        if got {
            // One clock read per batch stamps the delivery moment for
            // every chunk just popped (see `delivered_ns`).
            let now = clock::mono_ns();
            self.delivered_ns.set(now);
            // Span convention for the per-queue consumer: the pop *is*
            // acquisition *and* delivery (there is no claim contention
            // and the handler runs inline), so the claim, reorder and
            // deliver stages collapse to zero and the stage sum equals
            // the end-to-end latency exactly.
            // The capture-to-delivery interval closes at the refill
            // stamp, so it is recorded here too — not per chunk at
            // recycle time (this consumer is the single writer of its
            // queue's delivery shard). Chunks sealed in one capture
            // poll batch share a seal stamp, so the intervals arrive
            // in runs and recording is a compare per chunk plus one
            // histogram flush per run.
            let mut lat =
                telemetry::RunRecorder::new(&self.shared.tel.queue(self.q).app.latency_ns);
            for chunk in self.scratch.iter_mut() {
                let sealed_ns = chunk.seal.sealed_ns();
                if sealed_ns > 0 {
                    lat.push(now.saturating_sub(sealed_ns));
                }
                if let Some(span) = chunk.span.as_mut() {
                    span.acquire_started_ns = now;
                    span.acquired_ns = now;
                    span.deliver_start_ns = now;
                    span.deliver_end_ns = now;
                }
            }
            lat.finish();
        }
        self.inbox.extend(self.scratch.drain(..));
        got
    }

    /// Takes the next whole chunk without blocking. `None` means nothing
    /// is available right now — the stream may still be live; use
    /// [`Self::next_chunk`] to wait for end-of-stream.
    pub fn try_chunk(&mut self) -> Option<LiveChunk> {
        if let Some(chunk) = self.inbox.pop_front() {
            return Some(chunk);
        }
        self.refill();
        self.inbox.pop_front()
    }

    /// Takes the next whole chunk, blocking (with yields) until one is
    /// available or the stream ends.
    pub fn next_chunk(&mut self) -> Option<LiveChunk> {
        loop {
            if let Some(chunk) = self.inbox.pop_front() {
                return Some(chunk);
            }
            if self.refill() {
                continue;
            }
            if self.shared.rings[self.q].iter().all(|r| r.is_closed()) {
                // Every producer has closed; one final drain closes the
                // push-then-close race window.
                if self.refill() {
                    continue;
                }
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Borrows the packets of a chunk from its home arena. The view (and
    /// every [`crate::arena::PacketRef`] from it) lives only as long as
    /// the chunk handle: [`Self::recycle`] consumes the chunk, so no view
    /// can outlive recycling.
    pub fn view<'a>(&'a self, chunk: &'a LiveChunk) -> ChunkView<'a> {
        self.shared.arenas[chunk.home()].view(&chunk.seal)
    }

    /// Returns a consumed chunk to its home pool. Consuming the handle
    /// invalidates all outstanding views of the chunk.
    ///
    /// Delivery accounting (`delivered_packets`, `recycled_chunks`) is
    /// tallied locally and flushed to the shared telemetry at the next
    /// inbox refill or when the consumer drops, so snapshots taken
    /// mid-batch may trail the true delivery count by a few chunks.
    pub fn recycle(&self, chunk: LiveChunk) {
        let home = chunk.home();
        let (delivered, recycled) = self.tally[home].get();
        self.tally[home].set((delivered + chunk.len() as u64, recycled + 1));
        // The capture-to-delivery latency interval was already recorded
        // at refill time (the delivery moment), batched for the whole
        // inbox — nothing to record per chunk here.
        // Sampled chunk: decompose the same interval into stages and
        // retire the span (this consumer is the single writer of its
        // queue's delivery shard, same discipline as `latency_ns`).
        // Chunks that took the disk leg are recycled after the write
        // commit, so the span end extends to the write stamp — keeping
        // the stage sum ≤ end-to-end even when the delivery stamp is
        // stale by then.
        if let Some(span) = chunk.span {
            let rec = SpanRecord::from_stamps(
                chunk.home,
                chunk.seq,
                chunk.len() as u32,
                None,
                false,
                &span,
                self.delivered_ns.get().max(span.disk_write_ns),
            );
            let app = &self.shared.tel.queue(self.q).app;
            app.stage_backend_ns.record(rec.stage_backend_ns);
            app.stage_queue_wait_ns.record(rec.stage_queue_wait_ns);
            app.stage_claim_ns.record(rec.stage_claim_ns);
            app.stage_reorder_ns.record(rec.stage_reorder_ns);
            app.stage_deliver_ns.record(rec.stage_deliver_ns);
            self.shared.tel.spans().push(rec);
        }
        let tracer = self.shared.tel.tracer();
        if tracer.is_enabled() {
            tracer.record(
                wall_ns(),
                self.q as u32,
                kind::RECYCLE,
                home as u32,
                home as u32,
                chunk.len() as u64,
            );
        }
        // The recycle queue is sized R and only R slots exist, so this
        // cannot stay full; spin defensively anyway.
        let mut seal = chunk.seal;
        while let Err(back) = self.shared.recycle[home].push(seal) {
            seal = back;
            std::thread::yield_now();
        }
        // A capture thread parked on pool exhaustion resumes as soon as
        // a slot comes home (cheap when nobody is parked).
        self.shared.capture_gate.notify();
    }
}

impl Drop for LiveConsumer {
    fn drop(&mut self) {
        // A consumer departing mid-run (early shutdown, panic unwind)
        // must not strand chunks it already popped off the rings: the
        // slots would never return to their home pools and the capture
        // side would bleed capacity. Every pending or inboxed chunk
        // goes home here, its packets accounted as delivery drops —
        // captured, popped, but never handed to an application. (Chunks
        // still *on* the rings are not ours to recycle; a successor
        // consumer on this queue finds them there.)
        let mut undelivered = 0u64;
        for chunk in self.pending.take().into_iter().chain(self.inbox.drain(..)) {
            undelivered += chunk.len() as u64;
            let home = chunk.home();
            self.shared.tel.queue(home).app.recycled_chunks.add(1);
            let mut seal = chunk.seal;
            while let Err(back) = self.shared.recycle[home].push(seal) {
                seal = back;
                std::thread::yield_now();
            }
            self.shared.capture_gate.notify();
        }
        if undelivered > 0 {
            self.shared
                .tel
                .queue(self.q)
                .cap
                .delivery_drop_packets
                .add(undelivered);
        }
        self.flush_tally();
    }
}

impl pcap::PacketSource for LiveConsumer {
    /// Compatibility shim: pcap-style callers receive owned [`Packet`]s,
    /// so this path **copies** each payload out of the arena (metered
    /// nowhere — it is the price of the owning interface; zero-copy
    /// consumers use [`LiveConsumer::view`] instead).
    fn next_packet(&mut self) -> Option<Packet> {
        loop {
            if let Some(chunk) = &self.pending {
                if self.cursor < chunk.len() {
                    let arena = &self.shared.arenas[chunk.home()];
                    let p = arena.view(&chunk.seal).packet(self.cursor);
                    let pkt = Packet {
                        ts_ns: p.ts_ns,
                        wire_len: p.wire_len,
                        data: bytes::Bytes::copy_from_slice(p.data),
                    };
                    self.cursor += 1;
                    return Some(pkt);
                }
                let done = self.pending.take().expect("just matched Some");
                self.cursor = 0;
                self.recycle(done);
            }
            match self.next_chunk() {
                Some(chunk) => {
                    self.pending = Some(chunk);
                    self.cursor = 0;
                }
                None => return None,
            }
        }
    }

    fn is_done(&self) -> bool {
        self.pending.is_none()
            && self.inbox.is_empty()
            && self.shared.rings[self.q]
                .iter()
                .all(|r| r.is_closed() && r.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::NicSimBackend;
    use netproto::{FlowKey, PacketBuilder};
    use nicsim::livenic::LiveNic;
    use std::net::Ipv4Addr;

    fn packets(n: u16) -> Vec<Packet> {
        let mut b = PacketBuilder::new();
        (0..n)
            .map(|i| {
                let flow = FlowKey::udp(
                    Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                    1000 + i,
                    Ipv4Addr::new(131, 225, 2, 1),
                    443,
                );
                b.build_packet(u64::from(i), &flow, 100).unwrap()
            })
            .collect()
    }

    fn test_cfg() -> WireCapConfig {
        let mut cfg = WireCapConfig::basic(64, 32, 0);
        cfg.capture_timeout_ns = 2_000_000; // 2 ms wall-clock
        cfg
    }

    fn start(nic: &Arc<LiveNic>, cfg: WireCapConfig, groups: BuddyGroups) -> LiveWireCap {
        LiveWireCap::builder()
            .backend(NicSimBackend::new(Arc::clone(nic)))
            .config(cfg)
            .groups(groups)
            .start()
    }

    #[test]
    fn live_capture_delivers_everything() {
        let nic = LiveNic::new(2, 4096);
        let cap = start(&nic, test_cfg(), BuddyGroups::isolated(2));
        let consumers: Vec<_> = (0..2)
            .map(|q| {
                let mut c = cap.consumer(q);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while let Some(chunk) = c.next_chunk() {
                        n += chunk.len() as u64;
                        c.recycle(chunk);
                    }
                    n
                })
            })
            .collect();
        let total = 3000u16;
        for p in packets(total) {
            while nic.inject(p.clone()).is_none() {
                std::thread::yield_now();
            }
        }
        nic.stop();
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        cap.shutdown();
        assert_eq!(consumed, u64::from(total));
    }

    #[test]
    fn views_expose_the_captured_bytes_without_copying() {
        let nic = LiveNic::new(1, 4096);
        let cap = start(&nic, test_cfg(), BuddyGroups::isolated(1));
        let injected = packets(64);
        for p in &injected {
            nic.inject(p.clone()).unwrap();
        }
        nic.stop();
        let mut c = cap.consumer(0);
        let chunk = c.next_chunk().expect("one full chunk");
        assert_eq!(chunk.len(), 64);
        let allocs_before = crate::arena::arena_allocations();
        {
            let view = c.view(&chunk);
            for (i, p) in view.iter().enumerate() {
                assert_eq!(p.data, &injected[i].data[..], "packet {i} payload");
                assert_eq!(p.ts_ns, injected[i].ts_ns);
                assert_eq!(p.wire_len, injected[i].wire_len);
            }
        }
        assert_eq!(
            crate::arena::arena_allocations(),
            allocs_before,
            "view consumption must not allocate"
        );
        c.recycle(chunk);
        assert!(c.next_chunk().is_none());
        cap.shutdown();
    }

    #[test]
    fn live_consumer_as_pcap_source() {
        use pcap::capture::Capture;
        use pcap::PacketSource as _;
        let nic = LiveNic::new(1, 4096);
        let cap = start(&nic, test_cfg(), BuddyGroups::isolated(1));
        let consumer = cap.consumer(0);
        let handle = std::thread::spawn(move || {
            let mut pcap_cap = Capture::new(consumer);
            pcap_cap.set_filter_expr("131.225.2 and udp").unwrap();
            let mut seen = 0u64;
            loop {
                let n = pcap_cap.dispatch(64, |_| seen += 1);
                if n == 0 && pcap_cap.source_mut().is_done() {
                    return seen;
                }
            }
        });
        for p in packets(500) {
            while nic.inject(p.clone()).is_none() {
                std::thread::yield_now();
            }
        }
        nic.stop();
        let matched = handle.join().unwrap();
        cap.shutdown();
        // Every generated packet is UDP to 131.225.2.1.
        assert_eq!(matched, 500);
    }

    #[test]
    fn partial_timeout_fires_on_stragglers() {
        let nic = LiveNic::new(1, 128);
        let cap = start(&nic, test_cfg(), BuddyGroups::isolated(1));
        // 10 packets: far less than M = 64, so only the timeout path can
        // deliver them.
        for p in packets(10) {
            nic.inject(p).unwrap();
        }
        let mut c = cap.consumer(0);
        let chunk = c.next_chunk().expect("timeout should deliver");
        assert_eq!(chunk.len(), 10);
        assert_eq!(c.view(&chunk).len(), 10);
        c.recycle(chunk);
        // Delivery tallies flush at batch boundaries (or consumer
        // drop), not per chunk.
        drop(c);
        let t = cap.telemetry(0);
        assert_eq!(t.partial_chunks, 1);
        assert_eq!(t.delivered_packets, 10);
        assert_eq!(t.sealed_chunks, 1);
        assert_eq!(t.chunk_fill.count, 1);
        assert_eq!(t.chunk_fill.max, 10);
        // One chunk recycled → one capture-to-delivery latency sample.
        assert_eq!(t.latency_ns.count, 1);
        assert!(t.latency_ns.sum > 0, "seal stamp preceded recycle");
        nic.stop();
        cap.shutdown();
    }

    #[test]
    fn latency_samples_cover_every_recycled_chunk() {
        let nic = LiveNic::new(1, 4096);
        let cap = start(&nic, test_cfg(), BuddyGroups::isolated(1));
        for p in packets(640) {
            while nic.inject(p.clone()).is_none() {
                std::thread::yield_now();
            }
        }
        nic.stop();
        let mut c = cap.consumer(0);
        let mut chunks = 0u64;
        while let Some(chunk) = c.next_chunk() {
            chunks += 1;
            c.recycle(chunk);
        }
        drop(c);
        let t = cap.telemetry(0);
        assert_eq!(t.latency_ns.count, chunks, "one sample per chunk");
        assert_eq!(t.recycled_chunks, chunks);
        cap.shutdown();
    }
}
