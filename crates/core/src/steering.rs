//! Application-level traffic steering (§5e).
//!
//! "Upon WireCAP work-queue pairs, a packet-processing application can
//! implement its own traffic steering and classification mechanisms to
//! create packet queues at the application level, in the cases of the
//! NIC hardware-based traffic classification and steering mechanism
//! cannot meet the application requirements; or there are not enough
//! physical queues in the NIC. In these paradigms, a simple approach is
//! to copy captured packets from WireCAP into the application's own set
//! of buffers. This approach simplifies WireCAP's recycle operations
//! while the benefit of zero-copy delivery will not be available."
//!
//! [`AppSteering`] is that layer: a software classifier (the same
//! Toeplitz hash the NIC would use, or any flow-keyed function) that
//! fans chunks out into application-level packet queues. As the paper
//! says, this path *copies* — the copy is metered so the zero-copy loss
//! is visible in measurements, and the source chunk can be recycled
//! immediately after dispatch.

use crossbeam::queue::ArrayQueue;
use netproto::{parse_frame, Packet};
use nicsim::rss::RssHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An application-level packet queue created by software steering.
#[derive(Debug)]
pub struct AppQueue {
    ring: ArrayQueue<Packet>,
    enqueued: AtomicU64,
    dropped: AtomicU64,
}

impl AppQueue {
    /// Takes the next packet, if any.
    pub fn pop(&self) -> Option<Packet> {
        self.ring.pop()
    }

    /// Packets placed on this queue.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Packets dropped because this queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Packets currently waiting.
    pub fn depth(&self) -> usize {
        self.ring.len()
    }
}

/// Software steering from captured chunks into application-level queues.
pub struct AppSteering {
    queues: Vec<Arc<AppQueue>>,
    hasher: RssHasher,
    copied_packets: AtomicU64,
    copied_bytes: AtomicU64,
}

impl AppSteering {
    /// Creates `n` application-level queues of `depth` packets each.
    pub fn new(n: usize, depth: usize) -> Arc<Self> {
        assert!(n >= 1 && depth >= 1);
        Arc::new(AppSteering {
            queues: (0..n)
                .map(|_| {
                    Arc::new(AppQueue {
                        ring: ArrayQueue::new(depth),
                        enqueued: AtomicU64::new(0),
                        dropped: AtomicU64::new(0),
                    })
                })
                .collect(),
            hasher: RssHasher::default(),
            copied_packets: AtomicU64::new(0),
            copied_bytes: AtomicU64::new(0),
        })
    }

    /// Number of application-level queues.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Handle to application-level queue `i`.
    pub fn queue(&self, i: usize) -> Arc<AppQueue> {
        Arc::clone(&self.queues[i])
    }

    /// The steering decision for a packet (software Toeplitz over the
    /// 5-tuple; non-IP lands on queue 0, like hardware RSS).
    pub fn classify(&self, pkt: &Packet) -> usize {
        self.classify_bytes(&pkt.data)
    }

    /// [`AppSteering::classify`] on a raw frame — usable with borrowed
    /// arena slices as well as owned packets.
    pub fn classify_bytes(&self, frame: &[u8]) -> usize {
        match parse_frame(frame).ok().and_then(|p| p.flow) {
            Some(flow) => (self.hasher.hash_flow(&flow) as usize) % self.queues.len(),
            None => 0,
        }
    }

    /// Dispatches every packet of a captured chunk into the app-level
    /// queues, **copying** each packet into application-owned buffers
    /// (the §5e tradeoff). Returns the number of packets that did not
    /// fit their target queue. The source chunk may be recycled as soon
    /// as this returns.
    pub fn dispatch(&self, packets: &[Packet]) -> u64 {
        let mut dropped = 0;
        for pkt in packets {
            // A real copy into the application's own buffer: the chunk
            // cell is no longer referenced afterwards.
            let copy = Packet {
                ts_ns: pkt.ts_ns,
                wire_len: pkt.wire_len,
                data: bytes::Bytes::copy_from_slice(&pkt.data),
            };
            self.copied_packets.fetch_add(1, Ordering::Relaxed);
            self.copied_bytes
                .fetch_add(copy.data.len() as u64, Ordering::Relaxed);
            let q = &self.queues[self.classify(pkt)];
            match q.ring.push(copy) {
                Ok(()) => {
                    q.enqueued.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    q.dropped.fetch_add(1, Ordering::Relaxed);
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// [`AppSteering::dispatch`] for a borrowed chunk view from the live
    /// engine: every packet is copied out of the arena into an
    /// application-owned buffer (the §5e tradeoff), so the chunk may be
    /// recycled as soon as this returns. Returns the number of packets
    /// that did not fit their target queue.
    pub fn dispatch_view(&self, view: crate::arena::ChunkView<'_>) -> u64 {
        let mut dropped = 0;
        for pkt in view.iter() {
            let copy = Packet {
                ts_ns: pkt.ts_ns,
                wire_len: pkt.wire_len,
                data: bytes::Bytes::copy_from_slice(pkt.data),
            };
            self.copied_packets.fetch_add(1, Ordering::Relaxed);
            self.copied_bytes
                .fetch_add(copy.data.len() as u64, Ordering::Relaxed);
            let q = &self.queues[self.classify_bytes(pkt.data)];
            match q.ring.push(copy) {
                Ok(()) => {
                    q.enqueued.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    q.dropped.fetch_add(1, Ordering::Relaxed);
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Packets copied so far (the zero-copy loss, metered).
    pub fn copied_packets(&self) -> u64 {
        self.copied_packets.load(Ordering::Relaxed)
    }

    /// Bytes copied so far.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for AppSteering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSteering")
            .field("queues", &self.queues.len())
            .field("copied_packets", &self.copied_packets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn packets(n: u16, flows: u16) -> Vec<Packet> {
        let mut b = PacketBuilder::new();
        (0..n)
            .map(|i| {
                let f = i % flows;
                let flow = FlowKey::udp(
                    Ipv4Addr::new(10, (f >> 8) as u8, f as u8, 1),
                    1000 + f,
                    Ipv4Addr::new(131, 225, 2, 1),
                    443,
                );
                b.build_packet(u64::from(i), &flow, 120).unwrap()
            })
            .collect()
    }

    #[test]
    fn flows_stay_on_their_app_queue() {
        let s = AppSteering::new(8, 1024);
        let pkts = packets(400, 10);
        assert_eq!(s.dispatch(&pkts), 0);
        // Re-classify each packet and check it landed where classify says.
        let mut per_flow_queue: std::collections::HashMap<u16, usize> =
            std::collections::HashMap::new();
        for (i, p) in pkts.iter().enumerate() {
            let q = s.classify(p);
            let flow = (i % 10) as u16;
            let prev = per_flow_queue.insert(flow, q);
            if let Some(prev) = prev {
                assert_eq!(prev, q, "flow {flow} split across app queues");
            }
        }
    }

    #[test]
    fn dispatch_copies_every_packet() {
        let s = AppSteering::new(4, 1024);
        let pkts = packets(100, 5);
        s.dispatch(&pkts);
        assert_eq!(s.copied_packets(), 100);
        assert_eq!(s.copied_bytes(), 100 * 120);
        let total: u64 = (0..4).map(|i| s.queue(i).enqueued()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn copies_do_not_alias_the_chunk() {
        let s = AppSteering::new(1, 16);
        let pkts = packets(1, 1);
        s.dispatch(&pkts);
        let copy = s.queue(0).pop().unwrap();
        assert_eq!(copy.data, pkts[0].data);
        // Different backing storage: the chunk cell is free to recycle.
        assert_ne!(copy.data.as_ptr(), pkts[0].data.as_ptr());
    }

    #[test]
    fn full_app_queue_drops_and_counts() {
        let s = AppSteering::new(1, 8);
        let pkts = packets(20, 1);
        let dropped = s.dispatch(&pkts);
        assert_eq!(dropped, 12);
        assert_eq!(s.queue(0).enqueued(), 8);
        assert_eq!(s.queue(0).dropped(), 12);
        assert_eq!(s.queue(0).depth(), 8);
    }

    #[test]
    fn more_app_queues_than_nic_queues() {
        // The §5e motivation: "there are not enough physical queues in
        // the NIC" — 64 app-level queues from one capture stream.
        let s = AppSteering::new(64, 64);
        let pkts = packets(1000, 200);
        assert_eq!(s.dispatch(&pkts), 0);
        let used = (0..64).filter(|&i| s.queue(i).enqueued() > 0).count();
        assert!(used > 30, "only {used} of 64 app queues used");
    }
}
