//! Concurrent single-queue consumption: lock-free chunk claiming and
//! optional in-order re-serialization (DESIGN.md §4.12).
//!
//! WireCAP's buddy groups and the work-stealing pool rebalance load
//! *across* queues, but until this module a single scorching queue was
//! still drained by exactly one worker at a time. Following COREC
//! ("Concurrent Non-Blocking Single-Queue Receive Driver for Low
//! Latency Networking"), [`ClaimQueue`] lets any number of pool
//! workers claim sealed chunks from the *same* capture stream through
//! a per-cell CAS-claimed sequence/ticket word. Per "From RDMA to
//! RDCA", every ticket word lives on its own cache line so claim
//! traffic for neighbouring chunks never bounces a shared line between
//! cores.
//!
//! Two primitives:
//!
//! * [`ClaimQueue`] — a bounded multi-producer multi-consumer queue in
//!   the Vyukov style. Each cell carries one atomic *ticket* word; a
//!   consumer claims a cell by CASing the shared claim cursor and then
//!   owns the cell's chunk exclusively until the ticket wraps a full
//!   lap. Losing the CAS race is reported explicitly as
//!   [`Claim::Contended`] so callers can feed claim-contention
//!   telemetry and the [`AdaptivePoller`](crate::AdaptivePoller)'s
//!   cheap lost-race reset instead of re-spinning blind.
//! * [`ReorderBuffer`] — the optional in-order stage. Chunks are
//!   sequence-stamped at seal time by their home capture thread;
//!   claimed chunks are inserted by `seq` and a CAS-acquired delivery
//!   token re-serializes delivery in strictly increasing `seq` order,
//!   one queue at a time, while other workers keep claiming.
//!
//! Recycling stays home-pool-only: claiming moves *handles* (sealed
//! chunk descriptors), never slots, exactly like stealing — the worker
//! that finishes a chunk still returns the slot to the chunk's home
//! arena free list.

pub use imp::{Claim, ClaimQueue, ReorderBuffer};

// Raw-cell internals: `MaybeUninit` storage guarded by the per-cell
// ticket protocol, same opt-in pattern as `spsc` and `steal`.
#[allow(unsafe_code)]
mod imp {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    /// Outcome of one [`ClaimQueue::try_claim`] attempt.
    #[derive(Debug, PartialEq, Eq)]
    pub enum Claim<T> {
        /// This worker won the CAS and exclusively owns the chunk.
        Claimed(T),
        /// Another worker won the race for the cell we targeted (or
        /// advanced the cursor under us). Work may still be available —
        /// retry after a cheap lost-race backoff, not a full park.
        Contended,
        /// Nothing published at the claim cursor.
        Empty,
    }

    /// One queue cell: the CAS-claimed sequence/ticket word plus the
    /// chunk it guards, padded to its own cache line (128 bytes covers
    /// adjacent-line prefetch) so per-chunk claim traffic never false-
    /// shares with the neighbouring cell's ticket.
    #[repr(align(128))]
    struct Cell<T> {
        /// Ticket protocol: `lap*cap + index` when empty and waiting
        /// for producer lap `lap`; `pos + 1` once the value for cursor
        /// position `pos` is published; back to `pos + cap` after a
        /// consumer takes it.
        ticket: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// Pads a hot cursor to its own cache line.
    #[derive(Default)]
    #[repr(align(128))]
    struct PaddedCursor(AtomicUsize);

    /// Bounded MPMC claim queue (Vyukov-style) with per-cell padded
    /// ticket words and an explicit contended claim outcome.
    ///
    /// Close protocol: the queue is constructed with the number of
    /// producers that will ever push (one per capture thread); each
    /// calls [`producer_done`](Self::producer_done) exactly once at
    /// exit. Consumers treat `is_closed() && Empty` as end-of-stream.
    pub struct ClaimQueue<T> {
        cells: Box<[Cell<T>]>,
        mask: usize,
        /// Producer cursor: next position to publish.
        publish_pos: PaddedCursor,
        /// Consumer cursor: next position to claim. The CAS on this
        /// word is the claim; the per-cell ticket then transfers
        /// exclusive ownership of the cell to the winner.
        claim_pos: PaddedCursor,
        open_producers: AtomicUsize,
    }

    unsafe impl<T: Send> Send for ClaimQueue<T> {}
    unsafe impl<T: Send> Sync for ClaimQueue<T> {}

    impl<T> ClaimQueue<T> {
        /// Creates a queue holding at least `capacity` chunks (rounded
        /// up to a power of two, minimum 2) with `producers` producers
        /// expected to call [`producer_done`](Self::producer_done).
        pub fn new(capacity: usize, producers: usize) -> Self {
            let cap = capacity.max(2).next_power_of_two();
            let cells = (0..cap)
                .map(|i| Cell {
                    ticket: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            ClaimQueue {
                cells,
                mask: cap - 1,
                publish_pos: PaddedCursor::default(),
                claim_pos: PaddedCursor::default(),
                open_producers: AtomicUsize::new(producers),
            }
        }

        /// Number of cells.
        pub fn capacity(&self) -> usize {
            self.cells.len()
        }

        /// Publishes a sealed chunk. Returns `Err(item)` when the
        /// queue is full — the engine sizes claim queues so this is
        /// unreachable under the chunk-conservation invariant (at most
        /// `queues * R` chunks exist), but the contract stays total.
        pub fn push(&self, item: T) -> Result<(), T> {
            let mut pos = self.publish_pos.0.load(Ordering::Relaxed);
            loop {
                let cell = &self.cells[pos & self.mask];
                let ticket = cell.ticket.load(Ordering::Acquire);
                let dif = ticket as isize - pos as isize;
                if dif == 0 {
                    // Cell empty and expecting this lap: race peers
                    // for the publish slot.
                    match self.publish_pos.0.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*cell.value.get()).write(item) };
                            cell.ticket.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(now) => pos = now,
                    }
                } else if dif < 0 {
                    return Err(item); // full: consumer lap not done
                } else {
                    pos = self.publish_pos.0.load(Ordering::Relaxed);
                }
            }
        }

        /// One claim attempt. [`Claim::Claimed`] transfers exclusive
        /// ownership of one chunk; [`Claim::Contended`] means another
        /// worker won the CAS (or moved the cursor) — back off cheaply
        /// and retry; [`Claim::Empty`] means nothing is published.
        pub fn try_claim(&self) -> Claim<T> {
            let pos = self.claim_pos.0.load(Ordering::Relaxed);
            let cell = &self.cells[pos & self.mask];
            let ticket = cell.ticket.load(Ordering::Acquire);
            let dif = ticket as isize - (pos + 1) as isize;
            if dif == 0 {
                // Published and unclaimed: the cursor CAS is the claim.
                match self.claim_pos.0.compare_exchange(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let value = unsafe { (*cell.value.get()).assume_init_read() };
                        cell.ticket.store(pos + self.mask + 1, Ordering::Release);
                        Claim::Claimed(value)
                    }
                    Err(_) => Claim::Contended,
                }
            } else if dif < 0 {
                Claim::Empty
            } else {
                // Our cursor read was stale: a peer already claimed
                // past this cell. Equivalent to losing the race.
                Claim::Contended
            }
        }

        /// Marks one producer finished (call exactly once per
        /// producer declared at construction).
        pub fn producer_done(&self) {
            let prev = self.open_producers.fetch_sub(1, Ordering::AcqRel);
            debug_assert!(prev > 0, "producer_done called more times than producers");
        }

        /// True once every producer called
        /// [`producer_done`](Self::producer_done). Combined with
        /// [`Claim::Empty`] this is end-of-stream.
        pub fn is_closed(&self) -> bool {
            self.open_producers.load(Ordering::Acquire) == 0
        }

        /// Published-but-unclaimed chunk count (racy estimate).
        pub fn len(&self) -> usize {
            let publish = self.publish_pos.0.load(Ordering::Relaxed);
            let claim = self.claim_pos.0.load(Ordering::Relaxed);
            publish.saturating_sub(claim)
        }

        /// True when no published chunk is waiting (racy estimate).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for ClaimQueue<T> {
        fn drop(&mut self) {
            // &mut self: no concurrent claims. Drop whatever is still
            // published and unclaimed.
            let publish = *self.publish_pos.0.get_mut();
            let claim = *self.claim_pos.0.get_mut();
            for pos in claim..publish {
                let cell = &mut self.cells[pos & self.mask];
                if *cell.ticket.get_mut() == pos + 1 {
                    unsafe { cell.value.get_mut().assume_init_drop() };
                }
            }
        }
    }

    /// One reorder slot: `tag == 0` empty, `tag == seq + 1` holding
    /// the chunk stamped `seq`. Padded like the claim cells so
    /// neighbouring in-flight sequence numbers never share a line.
    #[repr(align(128))]
    struct Slot<T> {
        tag: AtomicU64,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// Padded atomic word for the reorder cursors/token.
    #[derive(Default)]
    #[repr(align(128))]
    struct PaddedWord(AtomicU64);

    /// Fixed-capacity per-queue reorder stage for in-order delivery.
    ///
    /// Sequence `seq` lands in slot `seq % capacity`; capacity must be
    /// at least the home queue's chunk count `R`, which bounds the
    /// outstanding sequence window: delivery is in-order and a chunk's
    /// slot is recycled only at delivery, so at most `R` consecutive
    /// sequence numbers can be sealed-but-undelivered at once and no
    /// two live chunks ever map to the same slot.
    ///
    /// Delivery is serialized by a CAS token with `SeqCst` ordering on
    /// the insert/token/recheck path: an inserter that finds the token
    /// held may leave — in the sequentially consistent total order its
    /// insert precedes the holder's token release, and the holder
    /// re-checks readiness after releasing, so no ready chunk is ever
    /// stranded by a missed wakeup.
    pub struct ReorderBuffer<T> {
        slots: Box<[Slot<T>]>,
        mask: u64,
        /// Next sequence number to deliver.
        next_seq: PaddedWord,
        /// Chunks currently parked in the buffer.
        occupancy: PaddedWord,
        /// Delivery token: 1 while a worker is pumping this queue.
        token: PaddedWord,
    }

    unsafe impl<T: Send> Send for ReorderBuffer<T> {}
    unsafe impl<T: Send> Sync for ReorderBuffer<T> {}

    impl<T> ReorderBuffer<T> {
        /// Creates a buffer of at least `capacity` slots (rounded up
        /// to a power of two, minimum 2). `capacity` must cover the
        /// maximum outstanding sequence window (the home queue's `R`).
        pub fn new(capacity: usize) -> Self {
            let cap = capacity.max(2).next_power_of_two();
            let slots = (0..cap)
                .map(|_| Slot {
                    tag: AtomicU64::new(0),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice();
            ReorderBuffer {
                slots,
                mask: (cap - 1) as u64,
                next_seq: PaddedWord::default(),
                occupancy: PaddedWord::default(),
                token: PaddedWord::default(),
            }
        }

        /// Number of slots.
        pub fn capacity(&self) -> usize {
            self.slots.len()
        }

        /// Chunks currently parked (racy estimate; exact when quiesced).
        pub fn len(&self) -> u64 {
            self.occupancy.0.load(Ordering::Relaxed)
        }

        /// True when no chunk is parked (racy; exact when quiesced).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Next sequence number the buffer will deliver.
        pub fn next_expected(&self) -> u64 {
            self.next_seq.0.load(Ordering::SeqCst)
        }

        /// Parks the chunk stamped `seq`. Panics if the slot is still
        /// occupied — that would mean the outstanding window exceeded
        /// capacity, a violation of the `R`-bound invariant, and
        /// silently overwriting would strand a chunk.
        pub fn insert(&self, seq: u64, item: T) {
            let slot = &self.slots[(seq & self.mask) as usize];
            assert_eq!(
                slot.tag.load(Ordering::Acquire),
                0,
                "reorder window exceeded buffer capacity at seq {seq}"
            );
            unsafe { (*slot.value.get()).write(item) };
            self.occupancy.0.fetch_add(1, Ordering::Relaxed);
            slot.tag.store(seq + 1, Ordering::SeqCst);
        }

        /// Delivers every consecutive ready chunk starting at the
        /// next expected sequence, in strictly increasing order, to
        /// `deliver`. Only one worker pumps at a time (CAS token);
        /// callers race freely. Returns the number delivered.
        pub fn pump(&self, mut deliver: impl FnMut(u64, T)) -> u64 {
            let mut delivered = 0;
            loop {
                let next = self.next_seq.0.load(Ordering::SeqCst);
                let slot = &self.slots[(next & self.mask) as usize];
                if slot.tag.load(Ordering::SeqCst) != next + 1 {
                    return delivered; // head-of-line chunk not here yet
                }
                if self
                    .token
                    .0
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    // The token holder re-checks after releasing, so
                    // it will see (or already saw) this ready chunk.
                    return delivered;
                }
                loop {
                    let next = self.next_seq.0.load(Ordering::SeqCst);
                    let slot = &self.slots[(next & self.mask) as usize];
                    if slot.tag.load(Ordering::SeqCst) != next + 1 {
                        break;
                    }
                    let value = unsafe { (*slot.value.get()).assume_init_read() };
                    slot.tag.store(0, Ordering::SeqCst);
                    self.next_seq.0.store(next + 1, Ordering::SeqCst);
                    self.occupancy.0.fetch_sub(1, Ordering::Relaxed);
                    delivered += 1;
                    deliver(next, value);
                }
                self.token.0.store(0, Ordering::SeqCst);
                // Loop: re-check readiness after release (see above).
            }
        }

        /// Forced-stop drain: takes every parked chunk regardless of
        /// sequence gaps. Spins for the delivery token so it never
        /// races a concurrent [`pump`](Self::pump) over a slot.
        pub fn take_stranded(&self) -> Vec<T> {
            while self
                .token
                .0
                .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                std::hint::spin_loop();
            }
            let mut out = Vec::new();
            for slot in self.slots.iter() {
                if slot.tag.load(Ordering::SeqCst) != 0 {
                    out.push(unsafe { (*slot.value.get()).assume_init_read() });
                    slot.tag.store(0, Ordering::SeqCst);
                    self.occupancy.0.fetch_sub(1, Ordering::Relaxed);
                }
            }
            self.token.0.store(0, Ordering::SeqCst);
            out
        }
    }

    impl<T> Drop for ReorderBuffer<T> {
        fn drop(&mut self) {
            for slot in self.slots.iter_mut() {
                if *slot.tag.get_mut() != 0 {
                    unsafe { slot.value.get_mut().assume_init_drop() };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn claim_round_trips_in_order_single_thread() {
        let q = ClaimQueue::new(8, 1);
        for i in 0..5u32 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5u32 {
            assert_eq!(q.try_claim(), Claim::Claimed(i));
        }
        assert_eq!(q.try_claim(), Claim::Empty);
        assert!(!q.is_closed());
        q.producer_done();
        assert!(q.is_closed());
    }

    #[test]
    fn claim_queue_reports_full() {
        let q = ClaimQueue::new(2, 1);
        q.push(1u32).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.try_claim(), Claim::Claimed(1));
        q.push(3).unwrap();
    }

    #[test]
    fn claim_queue_wraps_many_laps() {
        let q = ClaimQueue::new(4, 1);
        for i in 0..1_000u64 {
            q.push(i).unwrap();
            assert_eq!(q.try_claim(), Claim::Claimed(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_claims_conserve_items() {
        const N: u64 = 40_000;
        const WORKERS: usize = 4;
        let q = Arc::new(ClaimQueue::new(1024, 1));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let claimers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let q = Arc::clone(&q);
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                std::thread::spawn(move || loop {
                    match q.try_claim() {
                        Claim::Claimed(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                        Claim::Contended => std::hint::spin_loop(),
                        Claim::Empty => {
                            if q.is_closed() && q.is_empty() {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for i in 1..=N {
            while q.push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.producer_done();
        for c in claimers {
            c.join().unwrap();
        }
        assert_eq!(count.load(Ordering::Relaxed), N, "items lost or duplicated");
        assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }

    #[test]
    fn drop_releases_unclaimed_items() {
        let q = ClaimQueue::new(8, 1);
        let item = Arc::new(());
        q.push(Arc::clone(&item)).unwrap();
        q.push(Arc::clone(&item)).unwrap();
        assert_eq!(Arc::strong_count(&item), 3);
        drop(q);
        assert_eq!(Arc::strong_count(&item), 1, "drop leaked queued items");
    }

    #[test]
    fn reorder_delivers_strictly_increasing() {
        let ro = ReorderBuffer::new(8);
        let mut seen = Vec::new();
        ro.insert(2, "c");
        assert_eq!(ro.pump(|s, v| seen.push((s, v))), 0, "gap holds delivery");
        ro.insert(0, "a");
        assert_eq!(ro.pump(|s, v| seen.push((s, v))), 1);
        ro.insert(1, "b");
        assert_eq!(
            ro.pump(|s, v| seen.push((s, v))),
            2,
            "gap fill releases 1+2"
        );
        assert_eq!(seen, vec![(0, "a"), (1, "b"), (2, "c")]);
        assert!(ro.is_empty());
    }

    #[test]
    fn reorder_wraps_past_capacity() {
        let ro = ReorderBuffer::new(4);
        let mut seen = Vec::new();
        for s in 0..100u64 {
            ro.insert(s, s * 10);
            ro.pump(|seq, v| seen.push((seq, v)));
        }
        assert_eq!(seen.len(), 100);
        assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reorder_take_stranded_clears_gapped_residue() {
        let ro = ReorderBuffer::new(8);
        ro.insert(1, "b");
        ro.insert(3, "d");
        assert_eq!(ro.pump(|_, _| {}), 0);
        assert_eq!(ro.len(), 2);
        let mut stranded = ro.take_stranded();
        stranded.sort_unstable();
        assert_eq!(stranded, vec!["b", "d"]);
        assert!(ro.is_empty());
    }

    #[test]
    fn reorder_concurrent_inserters_deliver_in_order() {
        const N: u64 = 20_000;
        let ro = Arc::new(ReorderBuffer::new(64));
        let next = Arc::new(AtomicU64::new(0));
        let delivered = Arc::new(AtomicU64::new(0));
        let last = Arc::new(AtomicU64::new(u64::MAX));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let ro = Arc::clone(&ro);
                let next = Arc::clone(&next);
                let delivered = Arc::clone(&delivered);
                let last = Arc::clone(&last);
                std::thread::spawn(move || loop {
                    let seq = next.fetch_add(1, Ordering::Relaxed);
                    if seq >= N {
                        return;
                    }
                    // The window invariant the engine provides (at most
                    // `capacity` outstanding seqs) is enforced here by
                    // waiting for the slot's lap to come around.
                    while seq >= ro.next_expected() + ro.capacity() as u64 {
                        ro.pump(|s, _v: u64| {
                            let prev = last.swap(s, Ordering::Relaxed);
                            assert!(prev == u64::MAX || s == prev + 1, "out of order");
                            delivered.fetch_add(1, Ordering::Relaxed);
                        });
                        std::hint::spin_loop();
                    }
                    ro.insert(seq, seq);
                    ro.pump(|s, _v: u64| {
                        let prev = last.swap(s, Ordering::Relaxed);
                        assert!(prev == u64::MAX || s == prev + 1, "out of order");
                        delivered.fetch_add(1, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // A final pump catches anything parked after the last worker's
        // own pump lost the token race.
        ro.pump(|_, _v: u64| {
            delivered.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(delivered.load(Ordering::Relaxed), N);
        assert!(ro.is_empty());
    }
}
