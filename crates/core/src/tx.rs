//! Zero-copy packet forwarding (§3.2.2b).
//!
//! "An application can forward a captured packet by simply attaching it
//! to a specific transmit queue … Attaching a packet to a transmit queue
//! only involves metadata operations. The packet itself is not copied."
//!
//! Two structural consequences, both enforced here:
//!
//! * a forwarded packet's *cell* stays pinned until the NIC transmits it —
//!   its chunk cannot recycle while any of its packets sit in a transmit
//!   ring;
//! * a full transmit ring back-pressures the application (the attach
//!   blocks until a descriptor frees), it does not drop — so chunks whose
//!   packets cannot be attached yet wait, still pinned.

use crate::chunk::ChunkMeta;
use nicsim::tx::TxRing;
use std::collections::VecDeque;

#[derive(Debug)]
struct Entry {
    meta: ChunkMeta,
    /// Packets not yet attached to a transmit descriptor.
    to_attach: u32,
    /// Packets not yet transmitted (≥ `to_attach`).
    to_complete: u32,
}

/// The forwarding path of one application thread: a transmit ring plus
/// chunk-pinning and back-pressure bookkeeping.
#[derive(Debug)]
pub struct ForwardPath {
    ring: TxRing,
    /// Chunks in flight, FIFO: attaches and completions both proceed
    /// front-first, so one queue carries both phases.
    entries: VecDeque<Entry>,
    /// Chunks fully transmitted, ready for the caller to recycle.
    released: Vec<ChunkMeta>,
    frame_len: u16,
    forwarded: u64,
    /// Ring completions already credited. The ring also advances inside
    /// `attach`, so crediting works from the cumulative counter.
    reaped: u64,
}

impl ForwardPath {
    /// Creates a forwarding path over a transmit ring.
    pub fn new(ring: TxRing) -> Self {
        ForwardPath {
            ring,
            entries: VecDeque::new(),
            released: Vec::new(),
            frame_len: 64,
            forwarded: 0,
            reaped: 0,
        }
    }

    /// Hands a processed chunk to the forwarding path. Every packet is
    /// forwarded by metadata attach; packets that do not fit the ring yet
    /// wait under back-pressure. `frame_len` is the mean wire frame
    /// length of the chunk's packets.
    pub fn forward_chunk(&mut self, now_ns: u64, meta: ChunkMeta, frame_len: u16) {
        self.frame_len = frame_len;
        self.entries.push_back(Entry {
            meta,
            to_attach: meta.pkt_count,
            to_complete: meta.pkt_count,
        });
        self.reap(now_ns);
    }

    /// Processes transmit completions up to `now`, attaches waiting
    /// packets into freed descriptors, and unpins finished chunks.
    pub fn reap(&mut self, now_ns: u64) {
        self.ring.advance(now_ns);
        self.credit_completions();
        // Attach waiting packets, FIFO, until the ring is full.
        'outer: for e in &mut self.entries {
            while e.to_attach > 0 {
                if !self.ring.attach(now_ns, self.frame_len) {
                    break 'outer;
                }
                e.to_attach -= 1;
                self.forwarded += 1;
            }
        }
        self.credit_completions();
        // Release fully transmitted chunks (always a prefix).
        while matches!(self.entries.front(), Some(e) if e.to_complete == 0) {
            let e = self.entries.pop_front().unwrap();
            self.released.push(e.meta);
        }
    }

    fn credit_completions(&mut self) {
        let total = self.ring.completed();
        let mut done = (total - self.reaped) as u32;
        self.reaped = total;
        for e in &mut self.entries {
            if done == 0 {
                break;
            }
            let attached_outstanding = e.to_complete - e.to_attach;
            let take = done.min(attached_outstanding);
            e.to_complete -= take;
            done -= take;
        }
        debug_assert_eq!(done, 0, "completions exceeded attached packets");
    }

    /// Takes the chunks whose packets have all been transmitted; the
    /// caller recycles them.
    pub fn take_released(&mut self) -> Vec<ChunkMeta> {
        std::mem::take(&mut self.released)
    }

    /// Chunks still pinned (waiting, attached, or partially transmitted).
    pub fn pinned_chunks(&self) -> usize {
        self.entries.len()
    }

    /// Packets attached to transmit descriptors so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Packets waiting under back-pressure for a transmit descriptor.
    pub fn waiting(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.to_attach)).sum()
    }

    /// Frames fully transmitted on the wire.
    pub fn transmitted(&self) -> u64 {
        self.ring.completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkId;

    fn meta(c: u32, pkts: u32) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId {
                nic_id: 0,
                ring_id: 0,
                chunk_id: c,
            },
            process_address: 0,
            pkt_count: pkts,
            offloaded: false,
            first_fill_ns: 0,
        }
    }

    fn path() -> ForwardPath {
        ForwardPath::new(TxRing::new(1024, 10.0))
    }

    #[test]
    fn chunk_pins_until_all_packets_transmit() {
        let mut p = path();
        p.forward_chunk(0, meta(1, 100), 64);
        assert_eq!(p.pinned_chunks(), 1);
        assert!(p.take_released().is_empty());
        // 100 × 67.2 ns = 6.72 µs on the wire.
        p.reap(6_800);
        let released = p.take_released();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].id.chunk_id, 1);
        assert_eq!(p.pinned_chunks(), 0);
        assert_eq!(p.transmitted(), 100);
    }

    #[test]
    fn chunks_release_in_fifo_order() {
        let mut p = path();
        p.forward_chunk(0, meta(1, 10), 64);
        p.forward_chunk(0, meta(2, 10), 64);
        // Enough time for the first chunk only (10 × 67.2 = 672 ns).
        p.reap(700);
        let r = p.take_released();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id.chunk_id, 1);
        p.reap(2_000);
        assert_eq!(p.take_released()[0].id.chunk_id, 2);
    }

    #[test]
    fn full_ring_backpressures_instead_of_dropping() {
        let mut p = ForwardPath::new(TxRing::new(64, 10.0));
        p.forward_chunk(0, meta(1, 100), 64);
        assert_eq!(p.forwarded(), 64);
        assert_eq!(p.waiting(), 36);
        // Once the ring drains, the waiting packets attach and transmit.
        p.reap(64 * 68);
        p.reap(200 * 68);
        assert_eq!(p.waiting(), 0);
        assert_eq!(p.transmitted(), 100);
        assert_eq!(p.take_released().len(), 1);
    }

    #[test]
    fn burst_of_chunks_at_one_instant_all_transmit_eventually() {
        // The overload scenario: the app hands 78 chunks at the same
        // simulated instant (a coarse advance step). Nothing is lost.
        let mut p = ForwardPath::new(TxRing::new(4096, 10.0));
        for c in 0..78u32 {
            p.forward_chunk(0, meta(c, 256), 64);
        }
        assert!(p.waiting() > 0, "ring should backpressure");
        // 19 968 packets × 67.2 ns ≈ 1.34 ms of line time; waiting
        // packets attach in ring-sized waves as descriptors free.
        for t in 1..=10u64 {
            p.reap(t * 2_000_000);
        }
        assert_eq!(p.transmitted(), 78 * 256);
        assert_eq!(p.waiting(), 0);
        assert_eq!(p.take_released().len(), 78);
    }

    #[test]
    fn empty_chunk_releases_immediately() {
        let mut p = ForwardPath::new(TxRing::new(1, 10.0));
        p.forward_chunk(0, meta(1, 0), 64);
        assert_eq!(p.take_released().len(), 1);
    }

    #[test]
    fn forwarding_keeps_pace_with_app_rates() {
        // The paper's x=300 consumer produces 38 844 p/s; the 10 GbE
        // transmitter at 14.88 Mp/s never becomes the bottleneck.
        let mut p = path();
        let mut now = 0u64;
        for c in 0..50u32 {
            now += 6_590_000; // one 256-packet chunk every ~6.6 ms
            p.forward_chunk(now, meta(c, 256), 64);
        }
        p.reap(now + 1_000_000);
        assert_eq!(p.waiting(), 0);
        assert_eq!(p.transmitted(), 50 * 256);
        assert_eq!(p.pinned_chunks(), 0);
    }
}
