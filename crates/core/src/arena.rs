//! Pre-allocated cell arenas for the live engine's chunks.
//!
//! The paper's ring buffer pool allocates all packet storage once, when a
//! queue is opened: "ring buffers are allocated in chunks … a chunk
//! consists of M cells" (§3.2.1), and afterwards only *metadata* moves.
//! [`ChunkArena`] is that storage: one flat buffer of `R × M` fixed-size
//! cells plus per-cell length/timestamp tables, allocated exactly once.
//! The DMA-fill, capture, and recycle paths never allocate and never copy
//! a payload — they write packet bytes into a cell and move an affine
//! *slot token* between threads.
//!
//! # Token discipline
//!
//! Each of the R chunks is represented by exactly one token, created at
//! arena construction and alive for the arena's lifetime, cycling
//! between two states:
//!
//! * [`FreeSlot`] — the chunk is owned by the capture thread, which may
//!   write packets into its cells (`&mut FreeSlot` proves exclusivity);
//! * [`SealedSlot`] — the chunk is full (or timed out partial) and
//!   read-only; consumers borrow its payload through [`ChunkView`].
//!
//! Neither token is `Clone` and both constructors are private, so at any
//! instant a chunk has exactly one writer *or* any number of readers —
//! never both. Transferring a token across threads through a queue
//! provides the happens-before edge that makes the cell bytes visible.
//!
//! Views borrow the `SealedSlot`; [`ChunkArena::release`] consumes it, so
//! recycling a chunk invalidates every outstanding [`ChunkView`] at
//! compile time.

#[allow(unsafe_code)]
mod imp {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Heap allocations performed by arena construction, process-wide.
    ///
    /// Test hook: the zero-copy integration tests snapshot this before the
    /// hot phase and assert it did not move — proof that capture and
    /// delivery perform no payload allocation after open.
    static ARENA_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Arena instance ids, so tokens cannot be replayed across arenas.
    static ARENA_IDS: AtomicU64 = AtomicU64::new(1);

    /// Number of arena-construction allocations performed so far,
    /// process-wide (see [`ChunkArena`]). Stable across the hot path by
    /// construction: only [`ChunkArena::with_slots`] increments it.
    pub fn arena_allocations() -> u64 {
        ARENA_ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// A write-capable token for one chunk of an arena. See the module
    /// docs for the token discipline.
    #[derive(Debug)]
    pub struct FreeSlot {
        arena: u64,
        chunk: u32,
        filled: u32,
    }

    impl FreeSlot {
        /// Packets written into the chunk so far.
        pub fn filled(&self) -> usize {
            self.filled as usize
        }

        /// True if no packet has been written yet.
        pub fn is_empty(&self) -> bool {
            self.filled == 0
        }
    }

    /// A sealed, read-only token for one chunk. Obtained from
    /// [`ChunkArena::seal`]; turned back into a [`FreeSlot`] by
    /// [`ChunkArena::release`].
    #[derive(Debug)]
    pub struct SealedSlot {
        arena: u64,
        chunk: u32,
        len: u32,
        sealed_ns: u64,
    }

    impl SealedSlot {
        /// Packets the sealed chunk holds.
        pub fn len(&self) -> usize {
            self.len as usize
        }

        /// True if the chunk was sealed empty.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Monotonic seal timestamp, ns (0 when sealed without one).
        ///
        /// The token carries one clock read per *chunk*, taken at seal
        /// time; the consumer subtracts it from its own clock read to
        /// get the capture-to-delivery latency without any per-packet
        /// timing cost.
        pub fn sealed_ns(&self) -> u64 {
            self.sealed_ns
        }
    }

    /// One packet borrowed from a sealed chunk: payload slice plus the
    /// capture metadata the cell tables record.
    #[derive(Debug, Clone, Copy)]
    pub struct PacketRef<'a> {
        /// The captured bytes, truncated to the cell size.
        pub data: &'a [u8],
        /// Capture timestamp, nanoseconds.
        pub ts_ns: u64,
        /// Original on-wire frame length.
        pub wire_len: u32,
    }

    /// A borrowed, read-only view of one sealed chunk's packets.
    ///
    /// Lives no longer than the `SealedSlot` it was created from, so
    /// recycling the chunk (which consumes the slot) statically
    /// invalidates the view.
    #[derive(Debug, Clone, Copy)]
    pub struct ChunkView<'a> {
        arena: &'a ChunkArena,
        chunk: u32,
        len: u32,
    }

    impl<'a> ChunkView<'a> {
        /// Packets in the chunk.
        pub fn len(&self) -> usize {
            self.len as usize
        }

        /// True if the chunk holds no packets.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }

        /// Borrows packet `i` of the chunk.
        ///
        /// # Panics
        /// If `i >= self.len()`.
        pub fn packet(&self, i: usize) -> PacketRef<'a> {
            assert!(i < self.len(), "packet {i} of a {}-packet chunk", self.len);
            let cell = self.chunk as usize * self.arena.m + i;
            // Safety: the chunk is sealed (the caller holds a borrow of
            // its SealedSlot via this view's lifetime), so no &mut
            // FreeSlot for it can exist and these cells are immutable.
            unsafe {
                let len = *self.arena.lens[cell].get() as usize;
                let start = cell * self.arena.cell_bytes;
                let bytes = std::slice::from_raw_parts(self.arena.data[start].get(), len);
                PacketRef {
                    data: bytes,
                    ts_ns: *self.arena.ts[cell].get(),
                    wire_len: *self.arena.wire[cell].get(),
                }
            }
        }

        /// Iterates the chunk's packets in capture order. Takes the view
        /// by value (it is `Copy`), so the iterator is independent of
        /// the view binding and lives for the full `'a`.
        pub fn iter(self) -> impl Iterator<Item = PacketRef<'a>> + 'a {
            (0..self.len()).map(move |i| self.packet(i))
        }
    }

    /// The fixed cell storage for R chunks of M cells each.
    ///
    /// All memory is allocated in [`ChunkArena::with_slots`]; every later
    /// operation is a bounds-checked write or a borrowed read.
    pub struct ChunkArena {
        id: u64,
        m: usize,
        cell_bytes: usize,
        /// `r * m * cell_bytes` payload bytes.
        data: Box<[UnsafeCell<u8>]>,
        /// Captured length per cell.
        lens: Box<[UnsafeCell<u32>]>,
        /// On-wire length per cell.
        wire: Box<[UnsafeCell<u32>]>,
        /// Capture timestamp per cell.
        ts: Box<[UnsafeCell<u64>]>,
    }

    // Safety: cells are only written through an exclusively held &mut
    // FreeSlot and only read through a shared &SealedSlot; the affine
    // token protocol (see module docs) guarantees the two never overlap
    // for the same chunk, and token transfer between threads happens
    // through synchronizing queues.
    unsafe impl Send for ChunkArena {}
    unsafe impl Sync for ChunkArena {}

    impl std::fmt::Debug for ChunkArena {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ChunkArena")
                .field("id", &self.id)
                .field("m", &self.m)
                .field("cell_bytes", &self.cell_bytes)
                .field("cells", &self.lens.len())
                .finish()
        }
    }

    impl ChunkArena {
        /// Allocates an arena of `r` chunks × `m` cells of `cell_bytes`
        /// each, returning it together with the `r` write tokens.
        ///
        /// This is the *only* allocation site on the capture path; the
        /// returned `FreeSlot`s are the complete, final token population.
        pub fn with_slots(r: usize, m: usize, cell_bytes: usize) -> (Arc<Self>, Vec<FreeSlot>) {
            assert!(r > 0 && m > 0 && cell_bytes > 0);
            let cells = r * m;
            let id = ARENA_IDS.fetch_add(1, Ordering::Relaxed);
            let arena = Arc::new(ChunkArena {
                id,
                m,
                cell_bytes,
                data: (0..cells * cell_bytes)
                    .map(|_| UnsafeCell::new(0))
                    .collect(),
                lens: (0..cells).map(|_| UnsafeCell::new(0)).collect(),
                wire: (0..cells).map(|_| UnsafeCell::new(0)).collect(),
                ts: (0..cells).map(|_| UnsafeCell::new(0)).collect(),
            });
            ARENA_ALLOCATIONS.fetch_add(4, Ordering::Relaxed);
            let slots = (0..r as u32)
                .map(|chunk| FreeSlot {
                    arena: id,
                    chunk,
                    filled: 0,
                })
                .collect();
            (arena, slots)
        }

        /// Cells per chunk (the paper's M).
        pub fn m(&self) -> usize {
            self.m
        }

        /// Bytes per cell.
        pub fn cell_bytes(&self) -> usize {
            self.cell_bytes
        }

        fn check(&self, arena: u64, chunk: u32) {
            assert_eq!(arena, self.id, "slot token from a different arena");
            assert!((chunk as usize) < self.lens.len() / self.m);
        }

        /// Writes one packet into the slot's next free cell, truncating
        /// `data` to the cell size. Returns `false` (without writing) if
        /// the chunk is already full.
        pub fn write_packet(
            &self,
            slot: &mut FreeSlot,
            ts_ns: u64,
            wire_len: u32,
            data: &[u8],
        ) -> bool {
            self.check(slot.arena, slot.chunk);
            if slot.filled as usize >= self.m {
                return false;
            }
            let cell = slot.chunk as usize * self.m + slot.filled as usize;
            let copied = data.len().min(self.cell_bytes);
            // Safety: `&mut FreeSlot` is the unique writer token for this
            // chunk, and the cell indices it covers are disjoint from
            // every other chunk's.
            unsafe {
                let start = cell * self.cell_bytes;
                let dst = std::slice::from_raw_parts_mut(self.data[start].get(), copied);
                dst.copy_from_slice(&data[..copied]);
                *self.lens[cell].get() = copied as u32;
                *self.wire[cell].get() = wire_len;
                *self.ts[cell].get() = ts_ns;
            }
            slot.filled += 1;
            true
        }

        /// Seals a chunk for delivery: the token becomes read-only,
        /// carrying the packet count written so far. The seal timestamp
        /// is left at 0; the live engine uses [`ChunkArena::seal_at`].
        pub fn seal(&self, slot: FreeSlot) -> SealedSlot {
            self.seal_at(slot, 0)
        }

        /// Seals a chunk, stamping it with a monotonic timestamp for
        /// capture-to-delivery latency accounting (one clock read per
        /// chunk, taken by the caller).
        pub fn seal_at(&self, slot: FreeSlot, sealed_ns: u64) -> SealedSlot {
            self.check(slot.arena, slot.chunk);
            SealedSlot {
                arena: slot.arena,
                chunk: slot.chunk,
                len: slot.filled,
                sealed_ns,
            }
        }

        /// Recycles a sealed chunk: the token becomes writable again and
        /// previous contents are logically discarded. Consuming the
        /// `SealedSlot` ends every [`ChunkView`] borrowed from it.
        pub fn release(&self, slot: SealedSlot) -> FreeSlot {
            self.check(slot.arena, slot.chunk);
            FreeSlot {
                arena: slot.arena,
                chunk: slot.chunk,
                filled: 0,
            }
        }

        /// Borrows a read-only view of a sealed chunk's packets.
        pub fn view<'a>(&'a self, slot: &'a SealedSlot) -> ChunkView<'a> {
            self.check(slot.arena, slot.chunk);
            ChunkView {
                arena: self,
                chunk: slot.chunk,
                len: slot.len,
            }
        }
    }
}

pub use imp::{arena_allocations, ChunkArena, ChunkView, FreeSlot, PacketRef, SealedSlot};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_seal_view_release_roundtrip() {
        let (arena, mut slots) = ChunkArena::with_slots(2, 4, 64);
        let mut slot = slots.pop().unwrap();
        assert!(slot.is_empty());
        assert!(arena.write_packet(&mut slot, 10, 100, b"hello"));
        assert!(arena.write_packet(&mut slot, 20, 200, b"world!"));
        assert_eq!(slot.filled(), 2);
        let sealed = arena.seal_at(slot, 777);
        assert_eq!(sealed.len(), 2);
        assert_eq!(sealed.sealed_ns(), 777);
        let view = arena.view(&sealed);
        assert_eq!(view.len(), 2);
        assert_eq!(view.packet(0).data, b"hello");
        assert_eq!(view.packet(0).ts_ns, 10);
        assert_eq!(view.packet(1).data, b"world!");
        assert_eq!(view.packet(1).wire_len, 200);
        assert_eq!(view.iter().count(), 2);
        let slot = arena.release(sealed);
        assert!(slot.is_empty());
    }

    #[test]
    fn full_chunk_rejects_further_writes() {
        let (arena, mut slots) = ChunkArena::with_slots(1, 2, 64);
        let mut slot = slots.pop().unwrap();
        assert!(arena.write_packet(&mut slot, 0, 64, b"a"));
        assert!(arena.write_packet(&mut slot, 1, 64, b"b"));
        assert!(!arena.write_packet(&mut slot, 2, 64, b"c"));
        assert_eq!(slot.filled(), 2);
    }

    #[test]
    fn oversized_packets_truncate_to_the_cell() {
        let (arena, mut slots) = ChunkArena::with_slots(1, 1, 8);
        let mut slot = slots.pop().unwrap();
        assert!(arena.write_packet(&mut slot, 0, 16, &[7u8; 16]));
        let sealed = arena.seal(slot);
        let view = arena.view(&sealed);
        assert_eq!(view.packet(0).data, &[7u8; 8]);
        assert_eq!(view.packet(0).wire_len, 16);
    }

    #[test]
    fn chunks_do_not_alias() {
        let (arena, mut slots) = ChunkArena::with_slots(2, 1, 16);
        let mut b = slots.pop().unwrap();
        let mut a = slots.pop().unwrap();
        arena.write_packet(&mut a, 0, 16, b"aaaa");
        arena.write_packet(&mut b, 0, 16, b"bbbb");
        let (sa, sb) = (arena.seal(a), arena.seal(b));
        assert_eq!(arena.view(&sa).packet(0).data, b"aaaa");
        assert_eq!(arena.view(&sb).packet(0).data, b"bbbb");
    }

    #[test]
    #[should_panic(expected = "different arena")]
    fn cross_arena_tokens_are_rejected() {
        let (_a, mut sa) = ChunkArena::with_slots(1, 1, 16);
        let (b, _sb) = ChunkArena::with_slots(1, 1, 16);
        let mut slot = sa.pop().unwrap();
        b.write_packet(&mut slot, 0, 16, b"x");
    }

    #[test]
    fn allocation_hook_moves_only_at_construction() {
        let before = arena_allocations();
        let (arena, mut slots) = ChunkArena::with_slots(4, 8, 128);
        let after_open = arena_allocations();
        assert!(after_open > before);
        let mut slot = slots.pop().unwrap();
        for i in 0..8 {
            arena.write_packet(&mut slot, i, 100, &[i as u8; 100]);
        }
        let sealed = arena.seal(slot);
        let view = arena.view(&sealed);
        let sum: u64 = view.iter().map(|p| u64::from(p.data[0])).sum();
        assert_eq!(sum, (0..8).sum::<u64>());
        arena.release(sealed);
        assert_eq!(arena_allocations(), after_open, "hot path allocated");
    }
}
