//! WireCAP configuration.

use engines::AppModel;
use sim::CpuModel;
use std::fmt;

/// Bytes per cell in the current implementation: "a cell is two Kbytes"
/// (§5a). One cell holds one packet.
pub const CELL_BYTES: usize = 2048;

/// Estimated hot bytes per pool chunk *beyond* its arena cells: the
/// SPSC ring slot the sealed chunk is published through (~64 B with
/// padding) plus its recycle-queue slot (~16 B). Concurrent claiming
/// adds a cache-padded ticket word per slot; in-order delivery adds a
/// reorder-buffer slot. Used by the [`TuningMode::CacheResident`]
/// sizing pass (DESIGN.md §4.16).
const CHUNK_RING_SLOT_BYTES: usize = 64;
const CHUNK_RECYCLE_SLOT_BYTES: usize = 16;
const CHUNK_CLAIM_SLOT_BYTES: usize = 128;
const CHUNK_REORDER_SLOT_BYTES: usize = 64;

/// How the engine sizes its per-queue pool and recycle cadence
/// (DESIGN.md §4.16).
///
/// The paper's design treats R purely as loss tolerance: more chunks
/// absorb longer consumer stalls (§3.2.2a). But per "From RDMA to
/// RDCA" (PAPERS.md), at high rates the capture hot path is a
/// *cache-working-set* problem — once the in-flight pool outgrows the
/// LLC, every seal, delivery and recycle round-trips to DRAM and tail
/// latency explodes. `CacheResident` trades loss tolerance for
/// residency: it shrinks R (and, when necessary, the chunk size M) so
/// the hot working set fits an LLC budget, and bounds the
/// sealed-but-unrecycled backlog per queue so cells return to the NIC
/// while still cache-warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningMode {
    /// Size for loss tolerance (the paper's default): keep M and R as
    /// configured and recycle lazily, at the consumer's own cadence.
    Throughput,
    /// Size the hot working set to fit a last-level-cache budget:
    /// derive R (and M) from `llc_bytes`, and recycle eagerly at the
    /// derived depth bound instead of lazily at refill.
    CacheResident {
        /// Target LLC budget in bytes for the whole engine (split
        /// evenly across queues by the sizing pass).
        llc_bytes: u64,
    },
}

/// The resolved output of the tuning sizing pass: the effective pool
/// geometry an engine actually runs with, plus the working-set
/// estimate it was derived from. Logged into the engine snapshot
/// (`tuning` block) so a capture's cache budget is auditable after the
/// fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningPlan {
    /// The mode the plan was derived for.
    pub mode: TuningMode,
    /// Queue count the budget was split across.
    pub queues: usize,
    /// Effective cells per chunk (≤ configured M; only
    /// `CacheResident` ever shrinks it, halving while the chunk alone
    /// would crowd out the per-queue budget).
    pub m: usize,
    /// Effective pool chunks per queue (≤ configured R, ≥ N/M + 1).
    pub r: usize,
    /// Max sealed-but-unrecycled chunks per queue before consumers
    /// prioritize recycling over claiming new work. 0 = unbounded
    /// (`Throughput` mode's lazy recycle).
    pub recycle_depth: usize,
    /// Estimated per-queue hot working set at (`m`, `r`): arena
    /// cells plus ring, recycle, claim-ticket and reorder slots where
    /// configured.
    pub working_set_bytes: u64,
}

impl TuningPlan {
    /// Hot bytes one chunk pins: its cells plus per-slot structures.
    fn chunk_bytes(m: usize, concurrent: bool, in_order: bool) -> u64 {
        let mut b = m * CELL_BYTES + CHUNK_RING_SLOT_BYTES + CHUNK_RECYCLE_SLOT_BYTES;
        if concurrent {
            b += CHUNK_CLAIM_SLOT_BYTES;
        }
        if in_order {
            b += CHUNK_REORDER_SLOT_BYTES;
        }
        b as u64
    }

    /// Applies the plan to a configuration: the effective geometry the
    /// engine should construct its pools with.
    pub fn apply(&self, mut cfg: WireCapConfig) -> WireCapConfig {
        cfg.m = self.m;
        cfg.r = self.r;
        cfg
    }

    /// True when the derived working set still exceeds the budget —
    /// the structural floor (one spare chunk past the descriptor
    /// segments) won: the LLC budget is smaller than the ring itself.
    pub fn over_budget(&self) -> bool {
        match self.mode {
            TuningMode::Throughput => false,
            TuningMode::CacheResident { llc_bytes } => {
                self.working_set_bytes * self.queues as u64 > llc_bytes
            }
        }
    }
}

/// Configuration of a WireCAP engine instance.
///
/// The paper's naming convention: `WireCAP-B-(M, R)` is the basic mode
/// with descriptor-segment size `M` and pool size `R` chunks;
/// `WireCAP-A-(M, R, T)` adds the buddy-group offloading threshold `T`.
#[derive(Debug, Clone, Copy)]
pub struct WireCapConfig {
    /// Descriptor-segment size M: cells per chunk (a divisor of the ring
    /// size; the paper evaluates 64–256).
    pub m: usize,
    /// Pool size R: chunks per receive queue (the paper evaluates
    /// 100–500). Must exceed `ring_size / m` so spare chunks exist.
    pub r: usize,
    /// Offloading threshold T as a fraction of the capture-queue
    /// capacity; `None` = basic mode (no offloading).
    pub threshold: Option<f64>,
    /// Receive-ring size N in descriptors.
    pub ring_size: usize,
    /// The capture operation's blocking timeout (§3.2.1): when it expires
    /// with a partially filled chunk, the filled cells are *copied* to a
    /// free chunk and delivered, so packets never linger in the ring.
    pub capture_timeout_ns: u64,
    /// CPU-efficiency factor applied to packets processed on a non-home
    /// core after offloading ("a degraded CPU efficiency caused by a loss
    /// of the core affinity", §5b). 1.0 = no penalty.
    pub offload_penalty: f64,
    /// Adaptive polling (live engine): idle rounds a capture or pool
    /// worker thread busy-spins before it starts yielding.
    pub spin_iters: u32,
    /// Adaptive polling: idle rounds spent yielding (after the spin
    /// stage) before the thread parks on a wakeup gate.
    pub yield_iters: u32,
    /// Adaptive polling: upper bound on one parked wait, in
    /// nanoseconds. Parks are always timeout-bounded so a missed
    /// wakeup costs at most this long.
    pub park_timeout_ns: u64,
    /// Pin live capture threads (core = queue index) and pool workers
    /// (cores after the capture threads) with `sched_setaffinity`.
    /// A no-op on platforms without it.
    pub pin_threads: bool,
    /// COREC-style concurrent single-queue consumption (DESIGN.md
    /// §4.12): sealed chunks are published to lock-free per-queue
    /// claim queues and any `ConsumerPool` worker may claim from any
    /// member queue, so one scorching queue is drained by many cores.
    /// Incompatible with per-queue [`LiveConsumer`] handles; delivery
    /// order within a queue is unspecified unless `in_order` is set.
    ///
    /// [`LiveConsumer`]: ../live/struct.LiveConsumer.html
    pub concurrent_queue: bool,
    /// In-order delivery for concurrent consumption: chunks are
    /// sequence-stamped at seal time and a fixed-capacity per-queue
    /// reorder buffer re-serializes delivery in strictly increasing
    /// sequence order. Requires `concurrent_queue`.
    pub in_order: bool,
    /// Span-tracing sample rate: 1-in-N chunks per queue get a full
    /// lifecycle span (seal → publish → claim → deliver → recycle,
    /// DESIGN.md §4.14). `0` disables span tracing entirely — no
    /// clock reads, no per-stage histograms, no worker time-state
    /// profiling. `1` traces every chunk.
    pub span_sample_n: u32,
    /// Pool/working-set tuning mode (DESIGN.md §4.16): `Throughput`
    /// keeps the configured geometry; `CacheResident` re-derives M, R
    /// and a recycle-depth bound at engine start so the hot working
    /// set fits an LLC budget.
    pub tuning: TuningMode,
    /// Tail-latency SLO in nanoseconds: when set, the telemetry
    /// sampler's anomaly detector fires (and freezes a flight record)
    /// on sustained engine-wide p99.9 capture-to-delivery latency
    /// above this bound. `None` disables the rule.
    pub latency_slo_ns: Option<u64>,
    /// The application model (one `pkt_handler` thread per queue).
    pub app: AppModel,
}

impl WireCapConfig {
    /// `WireCAP-B-(M, R)` with the paper's standard environment
    /// (2.4 GHz cores, ring size 1024).
    pub fn basic(m: usize, r: usize, x: u32) -> Self {
        WireCapConfig {
            m,
            r,
            threshold: None,
            ring_size: 1024,
            // 10 ms: long enough that queues receiving above M/timeout
            // ≈ 25 k p/s fill whole chunks (zero-copy path), short enough
            // that packets never linger in the ring at quiet queues.
            capture_timeout_ns: 10_000_000,
            offload_penalty: 0.97,
            // Adaptive-polling ladder: ~a short burst of spins for
            // lowest wakeup latency, a few yields to let co-scheduled
            // threads run, then 1 ms bounded parks.
            spin_iters: 256,
            yield_iters: 64,
            park_timeout_ns: 1_000_000,
            pin_threads: false,
            concurrent_queue: false,
            in_order: false,
            span_sample_n: 0,
            tuning: TuningMode::Throughput,
            latency_slo_ns: None,
            app: AppModel {
                cpu: CpuModel::default(),
                x,
                forward: false,
            },
        }
    }

    /// `WireCAP-A-(M, R, T)` — advanced mode.
    pub fn advanced(m: usize, r: usize, t: f64, x: u32) -> Self {
        WireCapConfig {
            threshold: Some(t),
            ..Self::basic(m, r, x)
        }
    }

    /// A validating builder starting from the paper's standard
    /// environment (see [`WireCapConfigBuilder`]).
    pub fn builder() -> WireCapConfigBuilder {
        WireCapConfigBuilder::new()
    }

    /// Enables packet forwarding in the application model.
    pub fn forwarding(mut self) -> Self {
        self.app.forward = true;
        self
    }

    /// Validates the structural constraints of §3.2.1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.m == 0 || self.ring_size == 0 || !self.ring_size.is_multiple_of(self.m) {
            return Err(ConfigError::InvalidSegmentSize {
                m: self.m,
                ring_size: self.ring_size,
            });
        }
        let segments = self.ring_size / self.m;
        if self.r <= segments {
            return Err(ConfigError::PoolTooSmall {
                r: self.r,
                segments,
            });
        }
        if let Some(t) = self.threshold {
            if !(0.0..=1.0).contains(&t) {
                return Err(ConfigError::InvalidThreshold(t));
            }
        }
        if !(0.0..=1.0).contains(&self.offload_penalty) || self.offload_penalty == 0.0 {
            return Err(ConfigError::InvalidPenalty(self.offload_penalty));
        }
        if self.in_order && !self.concurrent_queue {
            return Err(ConfigError::InOrderRequiresConcurrent);
        }
        if let TuningMode::CacheResident { llc_bytes } = self.tuning {
            if llc_bytes == 0 {
                return Err(ConfigError::InvalidLlcBudget);
            }
        }
        Ok(())
    }

    /// Runs the tuning sizing pass for `queues` receive queues
    /// (DESIGN.md §4.16), returning the effective pool geometry.
    ///
    /// `Throughput` is the identity: configured M and R, unbounded
    /// (lazy) recycle. `CacheResident { llc_bytes }` splits the budget
    /// evenly across queues and solves for the geometry whose hot
    /// working set — arena cells plus the per-chunk slot structures —
    /// fits it:
    ///
    /// 1. **M**: halved (it keeps dividing the ring size) while a
    ///    single chunk would crowd out more than a quarter of the
    ///    per-queue budget, so at least ~4 chunks can cycle inside the
    ///    budget; never below 16 cells or the configured M.
    /// 2. **R**: `budget / chunk_bytes`, clamped to the structural
    ///    floor `N/M + 1` at the derived M (the pool must outnumber
    ///    the descriptor segments) and capped at the configured R — a
    ///    cache budget only ever shrinks the pool's memory. (When M
    ///    was halved the chunk *count* floor can exceed the configured
    ///    R, but the floor's memory, `N + M` cells, never exceeds the
    ///    configured `R·M ≥ N + M`.)
    /// 3. **Recycle depth**: a quarter of the spare (non-segment)
    ///    chunks, at least 1 — consumers recycle eagerly at this bound
    ///    so cells return to the NIC while still cache-warm, instead
    ///    of lazily at the next refill.
    pub fn tuning_plan(&self, queues: usize) -> TuningPlan {
        let queues = queues.max(1);
        match self.tuning {
            TuningMode::Throughput => TuningPlan {
                mode: self.tuning,
                queues,
                m: self.m,
                r: self.r,
                recycle_depth: 0,
                working_set_bytes: TuningPlan::chunk_bytes(
                    self.m,
                    self.concurrent_queue,
                    self.in_order,
                ) * self.r as u64,
            },
            TuningMode::CacheResident { llc_bytes } => {
                let budget = (llc_bytes / queues as u64).max(1);
                let mut m = self.m;
                while m > 16
                    && m.is_multiple_of(2)
                    && TuningPlan::chunk_bytes(m, self.concurrent_queue, self.in_order) > budget / 4
                {
                    m /= 2;
                }
                let chunk = TuningPlan::chunk_bytes(m, self.concurrent_queue, self.in_order);
                let segments = self.ring_size / m;
                let floor = segments + 1;
                let r = usize::try_from(budget / chunk)
                    .unwrap_or(usize::MAX)
                    .clamp(floor, self.r.max(floor));
                let spare = r - segments;
                let recycle_depth = (spare / 4).max(1);
                TuningPlan {
                    mode: self.tuning,
                    queues,
                    m,
                    r,
                    recycle_depth,
                    working_set_bytes: chunk * r as u64,
                }
            }
        }
    }

    /// Number of descriptor segments (chunks attached at any instant).
    pub fn segments(&self) -> usize {
        self.ring_size / self.m
    }

    /// Capture-queue capacity in chunks: the pool minus the chunks pinned
    /// to descriptor segments — the most that can ever be outstanding in
    /// user space. The offloading threshold T is a fraction of this
    /// reachable capacity (a threshold above `R - N/M` chunks could never
    /// fire).
    pub fn capture_queue_capacity(&self) -> usize {
        self.r - self.segments()
    }

    /// Pool buffering capacity in packets: R × M (§3.2.2a).
    pub fn pool_packets(&self) -> u64 {
        (self.r * self.m) as u64
    }

    /// Kernel memory one pool consumes: R × M × 2 KiB (§5a).
    pub fn pool_bytes(&self) -> u64 {
        self.pool_packets() * CELL_BYTES as u64
    }

    /// The paper's basic-mode loss bound: the largest burst (at `pin`
    /// packets/s against processing rate `pp`) absorbed without loss,
    /// `Pin · (R·M) / (Pin − Pp)` (§3.2.2a).
    pub fn max_lossless_burst(&self, pin_pps: f64, pp_pps: f64) -> f64 {
        if pin_pps <= pp_pps {
            return f64::INFINITY;
        }
        pin_pps * self.pool_packets() as f64 / (pin_pps - pp_pps)
    }

    /// Display name in the paper's convention.
    pub fn name(&self) -> String {
        match self.threshold {
            Some(t) => format!("WireCAP-A-({}, {}, {:.0}%)", self.m, self.r, t * 100.0),
            None => format!("WireCAP-B-({}, {})", self.m, self.r),
        }
    }
}

/// Why a [`WireCapConfig`] is structurally invalid (§3.2.1
/// constraints). Returned by [`WireCapConfig::validate`] and
/// [`WireCapConfigBuilder::build`] so callers get an error value
/// instead of a panic on zero-sized pools and the like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// M must be a non-zero divisor of the non-zero ring size, so the
    /// ring partitions into whole descriptor segments.
    InvalidSegmentSize {
        /// The offending cells-per-chunk value.
        m: usize,
        /// The ring size it fails to divide.
        ring_size: usize,
    },
    /// R must exceed N/M: a pool with no spare chunks beyond the ones
    /// pinned to descriptor segments can never seal a chunk.
    PoolTooSmall {
        /// The offending pool size in chunks.
        r: usize,
        /// The number of descriptor segments N/M it must exceed.
        segments: usize,
    },
    /// The offloading threshold T is a fraction of the capture-queue
    /// capacity and must lie in [0, 1].
    InvalidThreshold(f64),
    /// The offload CPU-efficiency penalty must lie in (0, 1].
    InvalidPenalty(f64),
    /// In-order delivery re-serializes the concurrent claim stream, so
    /// it is meaningless without `concurrent_queue`.
    InOrderRequiresConcurrent,
    /// A `CacheResident` LLC budget of zero bytes can fit no pool.
    InvalidLlcBudget,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::InvalidSegmentSize { m, ring_size } => write!(
                f,
                "M = {m} must be a non-zero divisor of the ring size {ring_size}"
            ),
            ConfigError::PoolTooSmall { r, segments } => write!(
                f,
                "R = {r} must exceed N/M = {segments} so the pool has spare chunks"
            ),
            ConfigError::InvalidThreshold(t) => {
                write!(f, "offloading threshold {t} must be in [0, 1]")
            }
            ConfigError::InvalidPenalty(p) => {
                write!(f, "offload penalty {p} must be in (0, 1]")
            }
            ConfigError::InOrderRequiresConcurrent => {
                write!(f, "in_order delivery requires concurrent_queue")
            }
            ConfigError::InvalidLlcBudget => {
                write!(f, "CacheResident llc_bytes must be non-zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a validated [`WireCapConfig`].
///
/// Starts from the paper's standard environment (the same defaults as
/// [`WireCapConfig::basic`]: M = 256, R = 100, ring size 1024, 10 ms
/// capture timeout, x = 0) and validates on [`build`], returning a
/// [`ConfigError`] instead of panicking on zero-sized pools or other
/// structural violations:
///
/// ```
/// use wirecap::WireCapConfig;
///
/// let cfg = WireCapConfig::builder()
///     .chunks(200)
///     .cells(128)
///     .threshold(0.6)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.name(), "WireCAP-A-(128, 200, 60%)");
/// assert!(WireCapConfig::builder().chunks(0).build().is_err());
/// ```
///
/// [`build`]: WireCapConfigBuilder::build
#[derive(Debug, Clone, Copy)]
pub struct WireCapConfigBuilder {
    cfg: WireCapConfig,
}

impl WireCapConfigBuilder {
    /// Starts from the paper's standard basic-mode configuration.
    pub fn new() -> Self {
        WireCapConfigBuilder {
            cfg: WireCapConfig::basic(256, 100, 0),
        }
    }

    /// Cells per chunk M (a divisor of the ring size).
    pub fn cells(mut self, m: usize) -> Self {
        self.cfg.m = m;
        self
    }

    /// Pool size R in chunks.
    pub fn chunks(mut self, r: usize) -> Self {
        self.cfg.r = r;
        self
    }

    /// Offloading threshold T in [0, 1] — selects advanced mode.
    pub fn threshold(mut self, t: f64) -> Self {
        self.cfg.threshold = Some(t);
        self
    }

    /// Receive-ring size N in descriptors.
    pub fn ring_size(mut self, n: usize) -> Self {
        self.cfg.ring_size = n;
        self
    }

    /// The capture operation's blocking timeout in nanoseconds.
    pub fn capture_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.capture_timeout_ns = ns;
        self
    }

    /// CPU-efficiency factor for offloaded processing, in (0, 1].
    pub fn offload_penalty(mut self, p: f64) -> Self {
        self.cfg.offload_penalty = p;
        self
    }

    /// Idle rounds of busy-spinning before the adaptive poller starts
    /// yielding (live capture + pool worker threads).
    pub fn spin_iters(mut self, iters: u32) -> Self {
        self.cfg.spin_iters = iters;
        self
    }

    /// Idle rounds of yielding before the adaptive poller parks.
    pub fn yield_iters(mut self, iters: u32) -> Self {
        self.cfg.yield_iters = iters;
        self
    }

    /// Upper bound on one parked wait, in nanoseconds.
    pub fn park_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.park_timeout_ns = ns;
        self
    }

    /// Pin capture threads and pool workers to cores
    /// (`sched_setaffinity`; no-op where unavailable).
    pub fn pin_threads(mut self, pin: bool) -> Self {
        self.cfg.pin_threads = pin;
        self
    }

    /// COREC-style concurrent single-queue consumption: pool workers
    /// claim sealed chunks from lock-free per-queue claim queues
    /// instead of each queue having one drainer (DESIGN.md §4.12).
    pub fn concurrent_queue(mut self, on: bool) -> Self {
        self.cfg.concurrent_queue = on;
        self
    }

    /// In-order delivery for concurrent consumption (requires
    /// [`concurrent_queue`](Self::concurrent_queue); validated at
    /// [`build`](Self::build)).
    pub fn in_order(mut self, on: bool) -> Self {
        self.cfg.in_order = on;
        self
    }

    /// Span-tracing sample rate: trace the full lifecycle of 1-in-`n`
    /// chunks per queue (0 = off, the default; 1 = every chunk). Sampled
    /// spans feed the per-stage latency histograms, the worker
    /// time-state profiler and the `/trace.json` Chrome-trace export.
    pub fn span_sample_n(mut self, n: u32) -> Self {
        self.cfg.span_sample_n = n;
        self
    }

    /// Pool/working-set tuning mode: [`TuningMode::CacheResident`]
    /// re-derives M, R and the recycle-depth bound at engine start so
    /// the hot working set fits the given LLC budget (DESIGN.md
    /// §4.16). Defaults to [`TuningMode::Throughput`].
    pub fn tuning(mut self, mode: TuningMode) -> Self {
        self.cfg.tuning = mode;
        self
    }

    /// Tail-latency SLO: the sampler's anomaly detector fires (and
    /// freezes a flight record) on sustained engine-wide p99.9
    /// capture-to-delivery latency above `ns`.
    pub fn latency_slo_ns(mut self, ns: u64) -> Self {
        self.cfg.latency_slo_ns = Some(ns);
        self
    }

    /// BPF repetitions x per packet in the application model.
    pub fn bpf_repetitions(mut self, x: u32) -> Self {
        self.cfg.app.x = x;
        self
    }

    /// Enables packet forwarding in the application model.
    pub fn forwarding(mut self) -> Self {
        self.cfg.app.forward = true;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<WireCapConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for WireCapConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for (m, r) in [
            (64, 100),
            (128, 100),
            (256, 100),
            (256, 500),
            (64, 400),
            (128, 200),
        ] {
            WireCapConfig::basic(m, r, 300).validate().unwrap();
        }
        WireCapConfig::advanced(256, 100, 0.6, 300)
            .validate()
            .unwrap();
    }

    #[test]
    fn m_must_divide_ring() {
        assert!(WireCapConfig::basic(100, 200, 0).validate().is_err());
        assert!(WireCapConfig::basic(0, 200, 0).validate().is_err());
    }

    #[test]
    fn r_must_exceed_segments() {
        // N/M = 1024/256 = 4; R = 4 leaves no spare chunks.
        assert!(WireCapConfig::basic(256, 4, 0).validate().is_err());
        assert!(WireCapConfig::basic(256, 5, 0).validate().is_ok());
    }

    #[test]
    fn capacity_arithmetic() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        assert_eq!(cfg.segments(), 4);
        assert_eq!(cfg.pool_packets(), 25_600);
        assert_eq!(cfg.pool_bytes(), 25_600 * 2048);
    }

    #[test]
    fn loss_bound_formula() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        // Pin = 14.88 Mp/s, Pp = 38 844 p/s: bound ≈ R·M (Pp negligible).
        let b = cfg.max_lossless_burst(14_880_952.0, 38_844.0);
        assert!((b - 25_667.0).abs() < 10.0, "bound = {b}");
        // Pin ≤ Pp: never drops.
        assert!(cfg.max_lossless_burst(10_000.0, 38_844.0).is_infinite());
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        let cfg = WireCapConfig::builder()
            .cells(128)
            .chunks(200)
            .threshold(0.6)
            .bpf_repetitions(300)
            .build()
            .unwrap();
        assert_eq!(cfg.m, 128);
        assert_eq!(cfg.r, 200);
        assert_eq!(cfg.threshold, Some(0.6));
        assert_eq!(cfg.app.x, 300);

        assert_eq!(
            WireCapConfig::builder().chunks(0).build().unwrap_err(),
            ConfigError::PoolTooSmall { r: 0, segments: 4 }
        );
        assert_eq!(
            WireCapConfig::builder().cells(0).build().unwrap_err(),
            ConfigError::InvalidSegmentSize {
                m: 0,
                ring_size: 1024
            }
        );
        assert_eq!(
            WireCapConfig::builder().threshold(1.5).build().unwrap_err(),
            ConfigError::InvalidThreshold(1.5)
        );
        assert_eq!(
            WireCapConfig::builder()
                .offload_penalty(0.0)
                .build()
                .unwrap_err(),
            ConfigError::InvalidPenalty(0.0)
        );
        // advanced() with an out-of-range T no longer panics; it fails
        // validation instead.
        assert!(WireCapConfig::advanced(256, 100, 2.0, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_matches_basic_defaults() {
        let b = WireCapConfig::builder().build().unwrap();
        let basic = WireCapConfig::basic(256, 100, 0);
        assert_eq!(b.m, basic.m);
        assert_eq!(b.r, basic.r);
        assert_eq!(b.ring_size, basic.ring_size);
        assert_eq!(b.capture_timeout_ns, basic.capture_timeout_ns);
        assert_eq!(b.spin_iters, basic.spin_iters);
        assert_eq!(b.yield_iters, basic.yield_iters);
        assert_eq!(b.park_timeout_ns, basic.park_timeout_ns);
        assert_eq!(b.pin_threads, basic.pin_threads);
        assert_eq!(b.name(), basic.name());
    }

    #[test]
    fn builder_sets_polling_and_pinning() {
        let cfg = WireCapConfig::builder()
            .spin_iters(10)
            .yield_iters(5)
            .park_timeout_ns(500_000)
            .pin_threads(true)
            .build()
            .unwrap();
        assert_eq!(cfg.spin_iters, 10);
        assert_eq!(cfg.yield_iters, 5);
        assert_eq!(cfg.park_timeout_ns, 500_000);
        assert!(cfg.pin_threads);
        assert!(!WireCapConfig::basic(64, 32, 0).pin_threads);
    }

    #[test]
    fn concurrent_queue_knobs() {
        let cfg = WireCapConfig::builder()
            .concurrent_queue(true)
            .in_order(true)
            .build()
            .unwrap();
        assert!(cfg.concurrent_queue);
        assert!(cfg.in_order);
        assert_eq!(cfg.span_sample_n, 0, "span tracing defaults off");
        assert_eq!(
            WireCapConfig::builder()
                .span_sample_n(64)
                .build()
                .unwrap()
                .span_sample_n,
            64
        );
        assert!(!WireCapConfig::basic(64, 32, 0).concurrent_queue);
        assert!(!WireCapConfig::basic(64, 32, 0).in_order);
        // In-order without concurrent claiming is meaningless.
        assert_eq!(
            WireCapConfig::builder().in_order(true).build().unwrap_err(),
            ConfigError::InOrderRequiresConcurrent
        );
    }

    #[test]
    fn throughput_plan_is_identity() {
        let cfg = WireCapConfig::basic(256, 100, 0);
        let plan = cfg.tuning_plan(4);
        assert_eq!(plan.m, 256);
        assert_eq!(plan.r, 100);
        assert_eq!(plan.recycle_depth, 0, "lazy recycle: unbounded");
        assert_eq!(plan.queues, 4);
        assert!(!plan.over_budget());
        let applied = plan.apply(cfg);
        assert_eq!(applied.m, cfg.m);
        assert_eq!(applied.r, cfg.r);
        // Working set: R chunks of M cells + ring/recycle slots each.
        assert_eq!(plan.working_set_bytes, 100 * (256 * 2048 + 64 + 16));
    }

    #[test]
    fn cache_resident_plan_fits_budget() {
        // 8 MiB across 2 queues = 4 MiB/queue. At M = 64 a chunk pins
        // 64·2048 + 80 = 131 152 B → R = 31; segments = 16, floor 17.
        let mut cfg = WireCapConfig::basic(64, 400, 0);
        cfg.tuning = TuningMode::CacheResident { llc_bytes: 8 << 20 };
        cfg.validate().unwrap();
        let plan = cfg.tuning_plan(2);
        assert_eq!(plan.m, 64, "M untouched when chunks are small");
        assert_eq!(plan.r, 31);
        assert!(plan.r > cfg.segments(), "stays structurally valid");
        assert!(plan.working_set_bytes <= 4 << 20, "fits per-queue budget");
        assert!(!plan.over_budget());
        // Recycle depth: a quarter of the spare chunks, ≥ 1.
        assert_eq!(plan.recycle_depth, (31 - 16) / 4);
        let applied = plan.apply(cfg);
        assert_eq!(applied.r, 31);
        applied.validate().unwrap();
    }

    #[test]
    fn cache_resident_never_grows_the_pool() {
        let mut cfg = WireCapConfig::basic(64, 40, 0);
        cfg.tuning = TuningMode::CacheResident {
            llc_bytes: 1 << 30, // 1 GiB: budget dwarfs the pool
        };
        let plan = cfg.tuning_plan(1);
        assert_eq!(plan.r, 40, "budget surplus never grows R");
        assert_eq!(plan.m, 64);
    }

    #[test]
    fn cache_resident_halves_m_for_tiny_budgets() {
        // 512 KiB/queue: a 256-cell chunk (512 KiB) is itself the whole
        // budget, so M halves until a chunk takes ≤ a quarter of it —
        // 256 → 128 → 64 → 32 (32·2048 + 80 ≈ 64 KiB ≤ 128 KiB).
        let mut cfg = WireCapConfig::basic(256, 100, 0);
        cfg.tuning = TuningMode::CacheResident {
            llc_bytes: 512 << 10,
        };
        let plan = cfg.tuning_plan(1);
        assert_eq!(plan.m, 32, "M shrinks when one chunk crowds the budget");
        assert!(cfg.ring_size.is_multiple_of(plan.m), "M keeps dividing N");
        // The floor (segments + 1 at the derived M) won: working set is
        // ring-bound and the plan reports the budget overshoot.
        assert_eq!(plan.r, 1024 / 32 + 1);
        assert!(plan.over_budget());
        plan.apply(cfg).validate().unwrap();
    }

    #[test]
    fn cache_resident_r_is_monotone_in_budget() {
        let mut prev = 0usize;
        for mib in [1u64, 2, 4, 8, 16, 32, 64] {
            let mut cfg = WireCapConfig::basic(64, 4096, 0);
            cfg.tuning = TuningMode::CacheResident {
                llc_bytes: mib << 20,
            };
            let plan = cfg.tuning_plan(1);
            assert!(plan.r >= prev, "R shrank as the budget grew");
            assert!(plan.recycle_depth >= 1);
            assert!(plan.recycle_depth <= plan.r - cfg.ring_size / plan.m);
            prev = plan.r;
        }
    }

    #[test]
    fn tuning_knobs_validate_and_build() {
        let cfg = WireCapConfig::builder()
            .tuning(TuningMode::CacheResident {
                llc_bytes: 16 << 20,
            })
            .latency_slo_ns(2_000_000)
            .build()
            .unwrap();
        assert_eq!(
            cfg.tuning,
            TuningMode::CacheResident {
                llc_bytes: 16 << 20
            }
        );
        assert_eq!(cfg.latency_slo_ns, Some(2_000_000));
        assert_eq!(
            WireCapConfig::builder()
                .tuning(TuningMode::CacheResident { llc_bytes: 0 })
                .build()
                .unwrap_err(),
            ConfigError::InvalidLlcBudget
        );
        let basic = WireCapConfig::basic(64, 32, 0);
        assert_eq!(basic.tuning, TuningMode::Throughput);
        assert_eq!(basic.latency_slo_ns, None);
    }

    #[test]
    fn naming_convention() {
        assert_eq!(
            WireCapConfig::basic(256, 100, 300).name(),
            "WireCAP-B-(256, 100)"
        );
        assert_eq!(
            WireCapConfig::advanced(256, 500, 0.6, 300).name(),
            "WireCAP-A-(256, 500, 60%)"
        );
    }
}
