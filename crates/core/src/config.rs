//! WireCAP configuration.

use engines::AppModel;
use sim::CpuModel;
use std::fmt;

/// Bytes per cell in the current implementation: "a cell is two Kbytes"
/// (§5a). One cell holds one packet.
pub const CELL_BYTES: usize = 2048;

/// Configuration of a WireCAP engine instance.
///
/// The paper's naming convention: `WireCAP-B-(M, R)` is the basic mode
/// with descriptor-segment size `M` and pool size `R` chunks;
/// `WireCAP-A-(M, R, T)` adds the buddy-group offloading threshold `T`.
#[derive(Debug, Clone, Copy)]
pub struct WireCapConfig {
    /// Descriptor-segment size M: cells per chunk (a divisor of the ring
    /// size; the paper evaluates 64–256).
    pub m: usize,
    /// Pool size R: chunks per receive queue (the paper evaluates
    /// 100–500). Must exceed `ring_size / m` so spare chunks exist.
    pub r: usize,
    /// Offloading threshold T as a fraction of the capture-queue
    /// capacity; `None` = basic mode (no offloading).
    pub threshold: Option<f64>,
    /// Receive-ring size N in descriptors.
    pub ring_size: usize,
    /// The capture operation's blocking timeout (§3.2.1): when it expires
    /// with a partially filled chunk, the filled cells are *copied* to a
    /// free chunk and delivered, so packets never linger in the ring.
    pub capture_timeout_ns: u64,
    /// CPU-efficiency factor applied to packets processed on a non-home
    /// core after offloading ("a degraded CPU efficiency caused by a loss
    /// of the core affinity", §5b). 1.0 = no penalty.
    pub offload_penalty: f64,
    /// Adaptive polling (live engine): idle rounds a capture or pool
    /// worker thread busy-spins before it starts yielding.
    pub spin_iters: u32,
    /// Adaptive polling: idle rounds spent yielding (after the spin
    /// stage) before the thread parks on a wakeup gate.
    pub yield_iters: u32,
    /// Adaptive polling: upper bound on one parked wait, in
    /// nanoseconds. Parks are always timeout-bounded so a missed
    /// wakeup costs at most this long.
    pub park_timeout_ns: u64,
    /// Pin live capture threads (core = queue index) and pool workers
    /// (cores after the capture threads) with `sched_setaffinity`.
    /// A no-op on platforms without it.
    pub pin_threads: bool,
    /// COREC-style concurrent single-queue consumption (DESIGN.md
    /// §4.12): sealed chunks are published to lock-free per-queue
    /// claim queues and any `ConsumerPool` worker may claim from any
    /// member queue, so one scorching queue is drained by many cores.
    /// Incompatible with per-queue [`LiveConsumer`] handles; delivery
    /// order within a queue is unspecified unless `in_order` is set.
    ///
    /// [`LiveConsumer`]: ../live/struct.LiveConsumer.html
    pub concurrent_queue: bool,
    /// In-order delivery for concurrent consumption: chunks are
    /// sequence-stamped at seal time and a fixed-capacity per-queue
    /// reorder buffer re-serializes delivery in strictly increasing
    /// sequence order. Requires `concurrent_queue`.
    pub in_order: bool,
    /// Span-tracing sample rate: 1-in-N chunks per queue get a full
    /// lifecycle span (seal → publish → claim → deliver → recycle,
    /// DESIGN.md §4.14). `0` disables span tracing entirely — no
    /// clock reads, no per-stage histograms, no worker time-state
    /// profiling. `1` traces every chunk.
    pub span_sample_n: u32,
    /// The application model (one `pkt_handler` thread per queue).
    pub app: AppModel,
}

impl WireCapConfig {
    /// `WireCAP-B-(M, R)` with the paper's standard environment
    /// (2.4 GHz cores, ring size 1024).
    pub fn basic(m: usize, r: usize, x: u32) -> Self {
        WireCapConfig {
            m,
            r,
            threshold: None,
            ring_size: 1024,
            // 10 ms: long enough that queues receiving above M/timeout
            // ≈ 25 k p/s fill whole chunks (zero-copy path), short enough
            // that packets never linger in the ring at quiet queues.
            capture_timeout_ns: 10_000_000,
            offload_penalty: 0.97,
            // Adaptive-polling ladder: ~a short burst of spins for
            // lowest wakeup latency, a few yields to let co-scheduled
            // threads run, then 1 ms bounded parks.
            spin_iters: 256,
            yield_iters: 64,
            park_timeout_ns: 1_000_000,
            pin_threads: false,
            concurrent_queue: false,
            in_order: false,
            span_sample_n: 0,
            app: AppModel {
                cpu: CpuModel::default(),
                x,
                forward: false,
            },
        }
    }

    /// `WireCAP-A-(M, R, T)` — advanced mode.
    pub fn advanced(m: usize, r: usize, t: f64, x: u32) -> Self {
        WireCapConfig {
            threshold: Some(t),
            ..Self::basic(m, r, x)
        }
    }

    /// A validating builder starting from the paper's standard
    /// environment (see [`WireCapConfigBuilder`]).
    pub fn builder() -> WireCapConfigBuilder {
        WireCapConfigBuilder::new()
    }

    /// Enables packet forwarding in the application model.
    pub fn forwarding(mut self) -> Self {
        self.app.forward = true;
        self
    }

    /// Validates the structural constraints of §3.2.1.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.m == 0 || self.ring_size == 0 || !self.ring_size.is_multiple_of(self.m) {
            return Err(ConfigError::InvalidSegmentSize {
                m: self.m,
                ring_size: self.ring_size,
            });
        }
        let segments = self.ring_size / self.m;
        if self.r <= segments {
            return Err(ConfigError::PoolTooSmall {
                r: self.r,
                segments,
            });
        }
        if let Some(t) = self.threshold {
            if !(0.0..=1.0).contains(&t) {
                return Err(ConfigError::InvalidThreshold(t));
            }
        }
        if !(0.0..=1.0).contains(&self.offload_penalty) || self.offload_penalty == 0.0 {
            return Err(ConfigError::InvalidPenalty(self.offload_penalty));
        }
        if self.in_order && !self.concurrent_queue {
            return Err(ConfigError::InOrderRequiresConcurrent);
        }
        Ok(())
    }

    /// Number of descriptor segments (chunks attached at any instant).
    pub fn segments(&self) -> usize {
        self.ring_size / self.m
    }

    /// Capture-queue capacity in chunks: the pool minus the chunks pinned
    /// to descriptor segments — the most that can ever be outstanding in
    /// user space. The offloading threshold T is a fraction of this
    /// reachable capacity (a threshold above `R - N/M` chunks could never
    /// fire).
    pub fn capture_queue_capacity(&self) -> usize {
        self.r - self.segments()
    }

    /// Pool buffering capacity in packets: R × M (§3.2.2a).
    pub fn pool_packets(&self) -> u64 {
        (self.r * self.m) as u64
    }

    /// Kernel memory one pool consumes: R × M × 2 KiB (§5a).
    pub fn pool_bytes(&self) -> u64 {
        self.pool_packets() * CELL_BYTES as u64
    }

    /// The paper's basic-mode loss bound: the largest burst (at `pin`
    /// packets/s against processing rate `pp`) absorbed without loss,
    /// `Pin · (R·M) / (Pin − Pp)` (§3.2.2a).
    pub fn max_lossless_burst(&self, pin_pps: f64, pp_pps: f64) -> f64 {
        if pin_pps <= pp_pps {
            return f64::INFINITY;
        }
        pin_pps * self.pool_packets() as f64 / (pin_pps - pp_pps)
    }

    /// Display name in the paper's convention.
    pub fn name(&self) -> String {
        match self.threshold {
            Some(t) => format!("WireCAP-A-({}, {}, {:.0}%)", self.m, self.r, t * 100.0),
            None => format!("WireCAP-B-({}, {})", self.m, self.r),
        }
    }
}

/// Why a [`WireCapConfig`] is structurally invalid (§3.2.1
/// constraints). Returned by [`WireCapConfig::validate`] and
/// [`WireCapConfigBuilder::build`] so callers get an error value
/// instead of a panic on zero-sized pools and the like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// M must be a non-zero divisor of the non-zero ring size, so the
    /// ring partitions into whole descriptor segments.
    InvalidSegmentSize {
        /// The offending cells-per-chunk value.
        m: usize,
        /// The ring size it fails to divide.
        ring_size: usize,
    },
    /// R must exceed N/M: a pool with no spare chunks beyond the ones
    /// pinned to descriptor segments can never seal a chunk.
    PoolTooSmall {
        /// The offending pool size in chunks.
        r: usize,
        /// The number of descriptor segments N/M it must exceed.
        segments: usize,
    },
    /// The offloading threshold T is a fraction of the capture-queue
    /// capacity and must lie in [0, 1].
    InvalidThreshold(f64),
    /// The offload CPU-efficiency penalty must lie in (0, 1].
    InvalidPenalty(f64),
    /// In-order delivery re-serializes the concurrent claim stream, so
    /// it is meaningless without `concurrent_queue`.
    InOrderRequiresConcurrent,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::InvalidSegmentSize { m, ring_size } => write!(
                f,
                "M = {m} must be a non-zero divisor of the ring size {ring_size}"
            ),
            ConfigError::PoolTooSmall { r, segments } => write!(
                f,
                "R = {r} must exceed N/M = {segments} so the pool has spare chunks"
            ),
            ConfigError::InvalidThreshold(t) => {
                write!(f, "offloading threshold {t} must be in [0, 1]")
            }
            ConfigError::InvalidPenalty(p) => {
                write!(f, "offload penalty {p} must be in (0, 1]")
            }
            ConfigError::InOrderRequiresConcurrent => {
                write!(f, "in_order delivery requires concurrent_queue")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a validated [`WireCapConfig`].
///
/// Starts from the paper's standard environment (the same defaults as
/// [`WireCapConfig::basic`]: M = 256, R = 100, ring size 1024, 10 ms
/// capture timeout, x = 0) and validates on [`build`], returning a
/// [`ConfigError`] instead of panicking on zero-sized pools or other
/// structural violations:
///
/// ```
/// use wirecap::WireCapConfig;
///
/// let cfg = WireCapConfig::builder()
///     .chunks(200)
///     .cells(128)
///     .threshold(0.6)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.name(), "WireCAP-A-(128, 200, 60%)");
/// assert!(WireCapConfig::builder().chunks(0).build().is_err());
/// ```
///
/// [`build`]: WireCapConfigBuilder::build
#[derive(Debug, Clone, Copy)]
pub struct WireCapConfigBuilder {
    cfg: WireCapConfig,
}

impl WireCapConfigBuilder {
    /// Starts from the paper's standard basic-mode configuration.
    pub fn new() -> Self {
        WireCapConfigBuilder {
            cfg: WireCapConfig::basic(256, 100, 0),
        }
    }

    /// Cells per chunk M (a divisor of the ring size).
    pub fn cells(mut self, m: usize) -> Self {
        self.cfg.m = m;
        self
    }

    /// Pool size R in chunks.
    pub fn chunks(mut self, r: usize) -> Self {
        self.cfg.r = r;
        self
    }

    /// Offloading threshold T in [0, 1] — selects advanced mode.
    pub fn threshold(mut self, t: f64) -> Self {
        self.cfg.threshold = Some(t);
        self
    }

    /// Receive-ring size N in descriptors.
    pub fn ring_size(mut self, n: usize) -> Self {
        self.cfg.ring_size = n;
        self
    }

    /// The capture operation's blocking timeout in nanoseconds.
    pub fn capture_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.capture_timeout_ns = ns;
        self
    }

    /// CPU-efficiency factor for offloaded processing, in (0, 1].
    pub fn offload_penalty(mut self, p: f64) -> Self {
        self.cfg.offload_penalty = p;
        self
    }

    /// Idle rounds of busy-spinning before the adaptive poller starts
    /// yielding (live capture + pool worker threads).
    pub fn spin_iters(mut self, iters: u32) -> Self {
        self.cfg.spin_iters = iters;
        self
    }

    /// Idle rounds of yielding before the adaptive poller parks.
    pub fn yield_iters(mut self, iters: u32) -> Self {
        self.cfg.yield_iters = iters;
        self
    }

    /// Upper bound on one parked wait, in nanoseconds.
    pub fn park_timeout_ns(mut self, ns: u64) -> Self {
        self.cfg.park_timeout_ns = ns;
        self
    }

    /// Pin capture threads and pool workers to cores
    /// (`sched_setaffinity`; no-op where unavailable).
    pub fn pin_threads(mut self, pin: bool) -> Self {
        self.cfg.pin_threads = pin;
        self
    }

    /// COREC-style concurrent single-queue consumption: pool workers
    /// claim sealed chunks from lock-free per-queue claim queues
    /// instead of each queue having one drainer (DESIGN.md §4.12).
    pub fn concurrent_queue(mut self, on: bool) -> Self {
        self.cfg.concurrent_queue = on;
        self
    }

    /// In-order delivery for concurrent consumption (requires
    /// [`concurrent_queue`](Self::concurrent_queue); validated at
    /// [`build`](Self::build)).
    pub fn in_order(mut self, on: bool) -> Self {
        self.cfg.in_order = on;
        self
    }

    /// Span-tracing sample rate: trace the full lifecycle of 1-in-`n`
    /// chunks per queue (0 = off, the default; 1 = every chunk). Sampled
    /// spans feed the per-stage latency histograms, the worker
    /// time-state profiler and the `/trace.json` Chrome-trace export.
    pub fn span_sample_n(mut self, n: u32) -> Self {
        self.cfg.span_sample_n = n;
        self
    }

    /// BPF repetitions x per packet in the application model.
    pub fn bpf_repetitions(mut self, x: u32) -> Self {
        self.cfg.app.x = x;
        self
    }

    /// Enables packet forwarding in the application model.
    pub fn forwarding(mut self) -> Self {
        self.cfg.app.forward = true;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<WireCapConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for WireCapConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for (m, r) in [
            (64, 100),
            (128, 100),
            (256, 100),
            (256, 500),
            (64, 400),
            (128, 200),
        ] {
            WireCapConfig::basic(m, r, 300).validate().unwrap();
        }
        WireCapConfig::advanced(256, 100, 0.6, 300)
            .validate()
            .unwrap();
    }

    #[test]
    fn m_must_divide_ring() {
        assert!(WireCapConfig::basic(100, 200, 0).validate().is_err());
        assert!(WireCapConfig::basic(0, 200, 0).validate().is_err());
    }

    #[test]
    fn r_must_exceed_segments() {
        // N/M = 1024/256 = 4; R = 4 leaves no spare chunks.
        assert!(WireCapConfig::basic(256, 4, 0).validate().is_err());
        assert!(WireCapConfig::basic(256, 5, 0).validate().is_ok());
    }

    #[test]
    fn capacity_arithmetic() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        assert_eq!(cfg.segments(), 4);
        assert_eq!(cfg.pool_packets(), 25_600);
        assert_eq!(cfg.pool_bytes(), 25_600 * 2048);
    }

    #[test]
    fn loss_bound_formula() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        // Pin = 14.88 Mp/s, Pp = 38 844 p/s: bound ≈ R·M (Pp negligible).
        let b = cfg.max_lossless_burst(14_880_952.0, 38_844.0);
        assert!((b - 25_667.0).abs() < 10.0, "bound = {b}");
        // Pin ≤ Pp: never drops.
        assert!(cfg.max_lossless_burst(10_000.0, 38_844.0).is_infinite());
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        let cfg = WireCapConfig::builder()
            .cells(128)
            .chunks(200)
            .threshold(0.6)
            .bpf_repetitions(300)
            .build()
            .unwrap();
        assert_eq!(cfg.m, 128);
        assert_eq!(cfg.r, 200);
        assert_eq!(cfg.threshold, Some(0.6));
        assert_eq!(cfg.app.x, 300);

        assert_eq!(
            WireCapConfig::builder().chunks(0).build().unwrap_err(),
            ConfigError::PoolTooSmall { r: 0, segments: 4 }
        );
        assert_eq!(
            WireCapConfig::builder().cells(0).build().unwrap_err(),
            ConfigError::InvalidSegmentSize {
                m: 0,
                ring_size: 1024
            }
        );
        assert_eq!(
            WireCapConfig::builder().threshold(1.5).build().unwrap_err(),
            ConfigError::InvalidThreshold(1.5)
        );
        assert_eq!(
            WireCapConfig::builder()
                .offload_penalty(0.0)
                .build()
                .unwrap_err(),
            ConfigError::InvalidPenalty(0.0)
        );
        // advanced() with an out-of-range T no longer panics; it fails
        // validation instead.
        assert!(WireCapConfig::advanced(256, 100, 2.0, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn builder_matches_basic_defaults() {
        let b = WireCapConfig::builder().build().unwrap();
        let basic = WireCapConfig::basic(256, 100, 0);
        assert_eq!(b.m, basic.m);
        assert_eq!(b.r, basic.r);
        assert_eq!(b.ring_size, basic.ring_size);
        assert_eq!(b.capture_timeout_ns, basic.capture_timeout_ns);
        assert_eq!(b.spin_iters, basic.spin_iters);
        assert_eq!(b.yield_iters, basic.yield_iters);
        assert_eq!(b.park_timeout_ns, basic.park_timeout_ns);
        assert_eq!(b.pin_threads, basic.pin_threads);
        assert_eq!(b.name(), basic.name());
    }

    #[test]
    fn builder_sets_polling_and_pinning() {
        let cfg = WireCapConfig::builder()
            .spin_iters(10)
            .yield_iters(5)
            .park_timeout_ns(500_000)
            .pin_threads(true)
            .build()
            .unwrap();
        assert_eq!(cfg.spin_iters, 10);
        assert_eq!(cfg.yield_iters, 5);
        assert_eq!(cfg.park_timeout_ns, 500_000);
        assert!(cfg.pin_threads);
        assert!(!WireCapConfig::basic(64, 32, 0).pin_threads);
    }

    #[test]
    fn concurrent_queue_knobs() {
        let cfg = WireCapConfig::builder()
            .concurrent_queue(true)
            .in_order(true)
            .build()
            .unwrap();
        assert!(cfg.concurrent_queue);
        assert!(cfg.in_order);
        assert_eq!(cfg.span_sample_n, 0, "span tracing defaults off");
        assert_eq!(
            WireCapConfig::builder()
                .span_sample_n(64)
                .build()
                .unwrap()
                .span_sample_n,
            64
        );
        assert!(!WireCapConfig::basic(64, 32, 0).concurrent_queue);
        assert!(!WireCapConfig::basic(64, 32, 0).in_order);
        // In-order without concurrent claiming is meaningless.
        assert_eq!(
            WireCapConfig::builder().in_order(true).build().unwrap_err(),
            ConfigError::InOrderRequiresConcurrent
        );
    }

    #[test]
    fn naming_convention() {
        assert_eq!(
            WireCapConfig::basic(256, 100, 300).name(),
            "WireCAP-B-(256, 100)"
        );
        assert_eq!(
            WireCapConfig::advanced(256, 500, 0.6, 300).name(),
            "WireCAP-A-(256, 500, 60%)"
        );
    }
}
