//! WireCAP configuration.

use engines::AppModel;
use sim::CpuModel;

/// Bytes per cell in the current implementation: "a cell is two Kbytes"
/// (§5a). One cell holds one packet.
pub const CELL_BYTES: usize = 2048;

/// Configuration of a WireCAP engine instance.
///
/// The paper's naming convention: `WireCAP-B-(M, R)` is the basic mode
/// with descriptor-segment size `M` and pool size `R` chunks;
/// `WireCAP-A-(M, R, T)` adds the buddy-group offloading threshold `T`.
#[derive(Debug, Clone, Copy)]
pub struct WireCapConfig {
    /// Descriptor-segment size M: cells per chunk (a divisor of the ring
    /// size; the paper evaluates 64–256).
    pub m: usize,
    /// Pool size R: chunks per receive queue (the paper evaluates
    /// 100–500). Must exceed `ring_size / m` so spare chunks exist.
    pub r: usize,
    /// Offloading threshold T as a fraction of the capture-queue
    /// capacity; `None` = basic mode (no offloading).
    pub threshold: Option<f64>,
    /// Receive-ring size N in descriptors.
    pub ring_size: usize,
    /// The capture operation's blocking timeout (§3.2.1): when it expires
    /// with a partially filled chunk, the filled cells are *copied* to a
    /// free chunk and delivered, so packets never linger in the ring.
    pub capture_timeout_ns: u64,
    /// CPU-efficiency factor applied to packets processed on a non-home
    /// core after offloading ("a degraded CPU efficiency caused by a loss
    /// of the core affinity", §5b). 1.0 = no penalty.
    pub offload_penalty: f64,
    /// The application model (one `pkt_handler` thread per queue).
    pub app: AppModel,
}

impl WireCapConfig {
    /// `WireCAP-B-(M, R)` with the paper's standard environment
    /// (2.4 GHz cores, ring size 1024).
    pub fn basic(m: usize, r: usize, x: u32) -> Self {
        WireCapConfig {
            m,
            r,
            threshold: None,
            ring_size: 1024,
            // 10 ms: long enough that queues receiving above M/timeout
            // ≈ 25 k p/s fill whole chunks (zero-copy path), short enough
            // that packets never linger in the ring at quiet queues.
            capture_timeout_ns: 10_000_000,
            offload_penalty: 0.97,
            app: AppModel {
                cpu: CpuModel::default(),
                x,
                forward: false,
            },
        }
    }

    /// `WireCAP-A-(M, R, T)` — advanced mode.
    pub fn advanced(m: usize, r: usize, t: f64, x: u32) -> Self {
        assert!((0.0..=1.0).contains(&t));
        WireCapConfig {
            threshold: Some(t),
            ..Self::basic(m, r, x)
        }
    }

    /// Enables packet forwarding in the application model.
    pub fn forwarding(mut self) -> Self {
        self.app.forward = true;
        self
    }

    /// Validates the structural constraints of §3.2.1.
    pub fn validate(&self) -> Result<(), String> {
        if self.m == 0 || !self.ring_size.is_multiple_of(self.m) {
            return Err(format!(
                "M = {} must be a non-zero divisor of the ring size {}",
                self.m, self.ring_size
            ));
        }
        let segments = self.ring_size / self.m;
        if self.r <= segments {
            return Err(format!(
                "R = {} must exceed N/M = {} so the pool has spare chunks",
                self.r, segments
            ));
        }
        if !(0.0..=1.0).contains(&self.offload_penalty) || self.offload_penalty == 0.0 {
            return Err("offload penalty must be in (0, 1]".into());
        }
        Ok(())
    }

    /// Number of descriptor segments (chunks attached at any instant).
    pub fn segments(&self) -> usize {
        self.ring_size / self.m
    }

    /// Capture-queue capacity in chunks: the pool minus the chunks pinned
    /// to descriptor segments — the most that can ever be outstanding in
    /// user space. The offloading threshold T is a fraction of this
    /// reachable capacity (a threshold above `R - N/M` chunks could never
    /// fire).
    pub fn capture_queue_capacity(&self) -> usize {
        self.r - self.segments()
    }

    /// Pool buffering capacity in packets: R × M (§3.2.2a).
    pub fn pool_packets(&self) -> u64 {
        (self.r * self.m) as u64
    }

    /// Kernel memory one pool consumes: R × M × 2 KiB (§5a).
    pub fn pool_bytes(&self) -> u64 {
        self.pool_packets() * CELL_BYTES as u64
    }

    /// The paper's basic-mode loss bound: the largest burst (at `pin`
    /// packets/s against processing rate `pp`) absorbed without loss,
    /// `Pin · (R·M) / (Pin − Pp)` (§3.2.2a).
    pub fn max_lossless_burst(&self, pin_pps: f64, pp_pps: f64) -> f64 {
        if pin_pps <= pp_pps {
            return f64::INFINITY;
        }
        pin_pps * self.pool_packets() as f64 / (pin_pps - pp_pps)
    }

    /// Display name in the paper's convention.
    pub fn name(&self) -> String {
        match self.threshold {
            Some(t) => format!("WireCAP-A-({}, {}, {:.0}%)", self.m, self.r, t * 100.0),
            None => format!("WireCAP-B-({}, {})", self.m, self.r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for (m, r) in [
            (64, 100),
            (128, 100),
            (256, 100),
            (256, 500),
            (64, 400),
            (128, 200),
        ] {
            WireCapConfig::basic(m, r, 300).validate().unwrap();
        }
        WireCapConfig::advanced(256, 100, 0.6, 300)
            .validate()
            .unwrap();
    }

    #[test]
    fn m_must_divide_ring() {
        assert!(WireCapConfig::basic(100, 200, 0).validate().is_err());
        assert!(WireCapConfig::basic(0, 200, 0).validate().is_err());
    }

    #[test]
    fn r_must_exceed_segments() {
        // N/M = 1024/256 = 4; R = 4 leaves no spare chunks.
        assert!(WireCapConfig::basic(256, 4, 0).validate().is_err());
        assert!(WireCapConfig::basic(256, 5, 0).validate().is_ok());
    }

    #[test]
    fn capacity_arithmetic() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        assert_eq!(cfg.segments(), 4);
        assert_eq!(cfg.pool_packets(), 25_600);
        assert_eq!(cfg.pool_bytes(), 25_600 * 2048);
    }

    #[test]
    fn loss_bound_formula() {
        let cfg = WireCapConfig::basic(256, 100, 300);
        // Pin = 14.88 Mp/s, Pp = 38 844 p/s: bound ≈ R·M (Pp negligible).
        let b = cfg.max_lossless_burst(14_880_952.0, 38_844.0);
        assert!((b - 25_667.0).abs() < 10.0, "bound = {b}");
        // Pin ≤ Pp: never drops.
        assert!(cfg.max_lossless_burst(10_000.0, 38_844.0).is_infinite());
    }

    #[test]
    fn naming_convention() {
        assert_eq!(
            WireCapConfig::basic(256, 100, 300).name(),
            "WireCAP-B-(256, 100)"
        );
        assert_eq!(
            WireCapConfig::advanced(256, 500, 0.6, 300).name(),
            "WireCAP-A-(256, 500, 60%)"
        );
    }
}
