//! The shared-memory segment behind a descriptor ring: one mapped
//! region holding the ring header, the descriptor array, and the
//! DMA-slice-shaped buffer slots, laid out exactly as a user-space
//! driver would map them (ixy-style).
//!
//! All `unsafe` in the crate lives here, behind typed accessors. On
//! Linux the region comes from `mmap(MAP_SHARED | MAP_ANONYMOUS)` — the
//! same call a real driver uses for its DMA-able hugepage pool, and
//! shareable with forked producers; elsewhere it falls back to a
//! page-aligned heap allocation with identical semantics.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU32, AtomicU64};

use crate::SLOT_BYTES;

/// Descriptor-done: the producer's write-back bit. Set (release) after
/// the payload and descriptor fields are written; cleared (release) by
/// the consumer's recycle before the tail advances. The consumer polls
/// this bit instead of re-reading the head — the ixy observation that
/// touching RDH costs a device register read while DD is just memory.
pub(crate) const DD: u32 = 1;

/// The ring's control block, at offset 0 of the segment. Head and tail
/// are free-running u64 counts (never wrapped), so `head - tail` is the
/// occupancy and indexing is `count % n`.
#[repr(C)]
pub(crate) struct RingHeader {
    /// Frames the producer has published (RDH analog).
    pub head: AtomicU64,
    /// Frames the consumer has recycled back to the producer (RDT
    /// analog): slots below this are reusable.
    pub tail: AtomicU64,
    /// Frames the consumer has polled (lent to the engine); always
    /// `tail <= next_read <= head`.
    pub next_read: AtomicU64,
    /// Frames ever accepted into the ring.
    pub received: AtomicU64,
    /// Frames dropped because the ring was full — "no receive
    /// descriptor in the ready state".
    pub dropped: AtomicU64,
}

/// One advanced receive descriptor (write-back layout): timestamp,
/// lengths, and the status word carrying [`DD`].
#[repr(C)]
pub(crate) struct RxDescriptor {
    /// Arrival timestamp, nanoseconds.
    pub ts_ns: AtomicU64,
    /// Original length on the wire.
    pub wire_len: AtomicU32,
    /// Valid bytes in the buffer slot (≤ [`SLOT_BYTES`]).
    pub buf_len: AtomicU32,
    /// Status word; bit 0 is [`DD`].
    pub status: AtomicU32,
    _pad: AtomicU32,
}

/// Header region size; descriptors start here (their own cache lines).
const HDR_BYTES: usize = 128;
/// Bytes per descriptor (kept power-of-two for cheap indexing).
const DESC_BYTES: usize = 32;

/// The mapped segment plus its geometry: typed views over raw memory.
pub(crate) struct RingMem {
    base: *mut u8,
    len: usize,
    n: usize,
}

// SAFETY: the raw base pointer refers to a region owned by this value
// for its whole lifetime; all mutation goes through atomics or through
// the buffer-slot protocol (a slot is written only while the producer
// owns it and read only between DD-publish and recycle), which the
// ShmQueue protocol enforces.
unsafe impl Send for RingMem {}
unsafe impl Sync for RingMem {}

impl RingMem {
    /// Maps a zeroed segment for an `n`-descriptor ring.
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "ring needs at least one descriptor");
        let len = HDR_BYTES + n * DESC_BYTES + n * SLOT_BYTES;
        let base = alloc::map_zeroed(len);
        // A zeroed region is a valid initial state: head = tail =
        // next_read = 0, every descriptor's status has DD clear.
        RingMem { base, len, n }
    }

    pub(crate) fn header(&self) -> &RingHeader {
        // SAFETY: offset 0 is in-bounds, page-aligned, zero-initialized;
        // RingHeader is all atomics (valid for any bit pattern).
        unsafe { &*(self.base as *const RingHeader) }
    }

    pub(crate) fn desc(&self, i: usize) -> &RxDescriptor {
        debug_assert!(i < self.n);
        // SAFETY: in-bounds (i < n), 32-byte aligned from an aligned
        // base, zero-initialized, all-atomic field types.
        unsafe { &*(self.base.add(HDR_BYTES + i * DESC_BYTES) as *const RxDescriptor) }
    }

    fn buf_ptr(&self, i: usize) -> *mut u8 {
        debug_assert!(i < self.n);
        // SAFETY: in-bounds: buffers live after the descriptor array.
        unsafe {
            self.base
                .add(HDR_BYTES + self.n * DESC_BYTES + i * SLOT_BYTES)
        }
    }

    /// Copies `data` into buffer slot `i`. Caller must own the slot
    /// (producer side, between recycle and DD-publish).
    pub(crate) fn write_buf(&self, i: usize, data: &[u8]) {
        assert!(data.len() <= SLOT_BYTES);
        // SAFETY: destination is in-bounds and exclusively owned by the
        // producer for this slot under the ring protocol; source and
        // destination cannot overlap (segment vs caller memory).
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), self.buf_ptr(i), data.len()) };
    }

    /// Borrows `len` bytes of buffer slot `i`. Caller must hold the
    /// slot readable (consumer side, between DD observation and
    /// recycle); the protocol guarantees no writer touches it while the
    /// borrow is lent to the poll sink.
    pub(crate) fn read_buf(&self, i: usize, len: usize) -> &[u8] {
        assert!(len <= SLOT_BYTES);
        // SAFETY: in-bounds, initialized by the producer's write (DD
        // was observed with acquire ordering), not mutated until the
        // consumer recycles the slot.
        unsafe { std::slice::from_raw_parts(self.buf_ptr(i), len) }
    }
}

impl Drop for RingMem {
    fn drop(&mut self) {
        alloc::unmap(self.base, self.len);
    }
}

impl std::fmt::Debug for RingMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingMem")
            .field("descriptors", &self.n)
            .field("bytes", &self.len)
            .finish()
    }
}

#[cfg(target_os = "linux")]
mod alloc {
    // Declared directly so the workspace needs no `libc` crate: std
    // already links the platform C library, which exports these.
    extern "C" {
        fn mmap(
            addr: *mut u8,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        fn munmap(addr: *mut u8, length: usize) -> i32;
    }

    const PROT_READ: i32 = 0x1;
    const PROT_WRITE: i32 = 0x2;
    const MAP_SHARED: i32 = 0x01;
    const MAP_ANONYMOUS: i32 = 0x20;
    const MAP_FAILED: isize = -1;

    pub(super) fn map_zeroed(len: usize) -> *mut u8 {
        // SAFETY: a fresh anonymous shared mapping; the kernel zeroes
        // it and chooses the (page-aligned) address.
        let p = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        assert!(
            !p.is_null() && p as isize != MAP_FAILED,
            "mmap of {len}-byte ring segment failed"
        );
        p
    }

    pub(super) fn unmap(base: *mut u8, len: usize) {
        // SAFETY: base/len are exactly what map_zeroed returned.
        unsafe { munmap(base, len) };
    }
}

#[cfg(not(target_os = "linux"))]
mod alloc {
    use std::alloc::Layout;

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len, 4096).expect("ring segment layout")
    }

    pub(super) fn map_zeroed(len: usize) -> *mut u8 {
        // SAFETY: non-zero size, valid alignment.
        let p = unsafe { std::alloc::alloc_zeroed(layout(len)) };
        assert!(!p.is_null(), "allocating {len}-byte ring segment failed");
        p
    }

    pub(super) fn unmap(base: *mut u8, len: usize) {
        // SAFETY: base/len/alignment are exactly what map_zeroed used.
        unsafe { std::alloc::dealloc(base, layout(len)) };
    }
}
