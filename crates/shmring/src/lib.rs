//! A shared-memory descriptor-ring capture backend.
//!
//! Where `nicsim::LiveNic` models a NIC as a lock-free queue of owned
//! packets, `shmring` models one the way user-space drivers actually
//! see one: a memory-mapped segment holding a descriptor ring and a
//! pool of DMA-slice-shaped buffers, driven by the RDH/RDT head-tail
//! protocol (ixy-style). The producer writes a payload into the buffer
//! slot, fills the descriptor, and publishes it by setting the
//! descriptor-done (DD) status bit; the consumer polls DD, lends the
//! buffer bytes zero-copy to the engine's sink, and returns slots by
//! clearing DD and advancing the tail. `recycle` is therefore
//! load-bearing here — forgetting it stalls the ring exactly as
//! forgetting to write RDT stalls real hardware.
//!
//! [`ShmRingNic`] implements [`wirecap::CaptureBackend`] plus
//! [`wirecap::LoopbackBackend`] (a loopback producer with the same RSS
//! steering as `LiveNic`), so the whole engine — and the conformance
//! suite — runs against it everywhere hardware doesn't exist.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod seg;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use netproto::{parse_frame, Packet};
use nicsim::rss::Rss;
use wirecap::backend::{
    BackendError, BackendQueue, CaptureBackend, LoopbackBackend, QueueAccounting, RxFrame,
};

use seg::{RingMem, DD};

/// Bytes per buffer slot. Matches the engine's cell size so a lent
/// frame always fits a chunk cell without re-fragmentation.
pub const SLOT_BYTES: usize = wirecap::config::CELL_BYTES;

/// One receive queue: a descriptor ring over a shared-memory segment.
///
/// The producer side ([`produce`](ShmQueue::produce)) is serialized by
/// a mutex — many injectors, one writer at a time, like frames
/// arriving serially on a wire. The consumer side (`poll_batch` /
/// `recycle`) is single-consumer by the engine's contract (one capture
/// thread per queue) and entirely lock-free.
#[derive(Debug)]
pub struct ShmQueue {
    mem: RingMem,
    n: u64,
    producer: Mutex<()>,
    /// Corruption latch: once a malformed descriptor is seen, every
    /// later poll fails with the same error instead of re-reading
    /// garbage. Mid-batch corruption still returns `Ok` for the frames
    /// already lent, keeping the "error ⇒ nothing lent this call"
    /// contract of [`BackendQueue::poll_batch`].
    poison: OnceLock<&'static str>,
}

impl ShmQueue {
    fn new(depth: usize) -> Self {
        ShmQueue {
            mem: RingMem::new(depth),
            n: depth as u64,
            producer: Mutex::new(()),
            poison: OnceLock::new(),
        }
    }

    /// Writes one frame into the ring: copies the payload into the
    /// next free buffer slot, fills its descriptor, publishes it with
    /// a DD release-store. Returns `Ok(false)` (and counts a drop) when
    /// no descriptor is in the ready state — the ring is full because
    /// the consumer hasn't recycled.
    pub fn produce(&self, ts_ns: u64, wire_len: u32, data: &[u8]) -> Result<bool, BackendError> {
        let _serial = self
            .producer
            .lock()
            .map_err(|_| BackendError::Io("ring producer lock poisoned".to_string()))?;
        let hdr = self.mem.header();
        let head = hdr.head.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's tail release in `recycle`:
        // once we see the new tail, the consumer is done reading the
        // slots below it and we may overwrite them.
        let tail = hdr.tail.load(Ordering::Acquire);
        if head - tail >= self.n {
            hdr.dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        let idx = (head % self.n) as usize;
        let take = data.len().min(SLOT_BYTES);
        self.mem.write_buf(idx, &data[..take]);
        let d = self.mem.desc(idx);
        d.ts_ns.store(ts_ns, Ordering::Relaxed);
        d.wire_len.store(wire_len, Ordering::Relaxed);
        d.buf_len.store(take as u32, Ordering::Relaxed);
        // The publication point: DD release makes the payload and the
        // descriptor fields visible to the consumer's acquire poll.
        d.status.store(DD, Ordering::Release);
        hdr.head.store(head + 1, Ordering::Relaxed);
        hdr.received.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    fn poll(&self, max: usize, sink: &mut dyn FnMut(RxFrame<'_>)) -> Result<usize, BackendError> {
        if let Some(reason) = self.poison.get() {
            return Err(BackendError::Corrupt(reason));
        }
        let hdr = self.mem.header();
        let mut cursor = hdr.next_read.load(Ordering::Relaxed);
        // Upper bound only: DD stays set on polled-but-unrecycled slots,
        // so the cursor must stop at the head rather than lap into them.
        // A stale head under-polls by a frame at worst; DD (acquire)
        // remains the actual publication check for payload visibility.
        let head = hdr.head.load(Ordering::Relaxed);
        let mut polled = 0usize;
        while polled < max && cursor < head {
            let idx = (cursor % self.n) as usize;
            let d = self.mem.desc(idx);
            // DD acquire pairs with the producer's release publication;
            // the ixy move of watching the done bit in memory instead
            // of re-reading the head on every iteration.
            if d.status.load(Ordering::Acquire) & DD == 0 {
                break;
            }
            let len = d.buf_len.load(Ordering::Relaxed) as usize;
            if len > SLOT_BYTES {
                let reason = "descriptor buf_len exceeds slot size";
                let _ = self.poison.set(reason);
                if polled == 0 {
                    return Err(BackendError::Corrupt(reason));
                }
                // Frames already lent this call are intact; report them
                // and fail on the next poll via the latch.
                break;
            }
            sink(RxFrame {
                ts_ns: d.ts_ns.load(Ordering::Relaxed),
                wire_len: d.wire_len.load(Ordering::Relaxed),
                data: self.mem.read_buf(idx, len),
            });
            cursor += 1;
            polled += 1;
        }
        if polled > 0 {
            hdr.next_read.store(cursor, Ordering::Release);
        }
        Ok(polled)
    }

    fn recycle_delivered(&self, frames: usize) -> Result<(), BackendError> {
        if frames == 0 {
            return Ok(());
        }
        let hdr = self.mem.header();
        let tail = hdr.tail.load(Ordering::Relaxed);
        let delivered = hdr.next_read.load(Ordering::Relaxed);
        if tail + frames as u64 > delivered {
            return Err(BackendError::Corrupt(
                "recycled more frames than were polled",
            ));
        }
        for i in 0..frames as u64 {
            // Clear DD first so a producer that reuses the slot starts
            // from a not-ready descriptor...
            self.mem
                .desc(((tail + i) % self.n) as usize)
                .status
                .store(0, Ordering::Relaxed);
        }
        // ...then hand the slots back in one tail release, which the
        // producer's acquire load observes (the RDT write).
        hdr.tail.store(tail + frames as u64, Ordering::Release);
        Ok(())
    }
}

impl BackendQueue for ShmQueue {
    fn poll_batch(
        &self,
        max: usize,
        sink: &mut dyn FnMut(RxFrame<'_>),
    ) -> Result<usize, BackendError> {
        self.poll(max, sink)
    }

    fn recycle(&self, frames: usize) -> Result<(), BackendError> {
        self.recycle_delivered(frames)
    }

    fn depth(&self) -> usize {
        let hdr = self.mem.header();
        let head = hdr.head.load(Ordering::Acquire);
        let read = hdr.next_read.load(Ordering::Relaxed);
        head.saturating_sub(read) as usize
    }

    fn accounting(&self) -> QueueAccounting {
        let hdr = self.mem.header();
        QueueAccounting {
            received: hdr.received.load(Ordering::Relaxed),
            dropped: hdr.dropped.load(Ordering::Relaxed),
            // Descriptors not yet handed back to the producer — polled
            // but unrecycled slots still count as used, as on hardware.
            ring_used: hdr
                .head
                .load(Ordering::Relaxed)
                .saturating_sub(hdr.tail.load(Ordering::Relaxed)),
            ring_capacity: self.n,
        }
    }
}

/// A multi-queue capture backend over shared-memory descriptor rings,
/// with a loopback producer steering frames by the same Toeplitz RSS
/// as [`nicsim::livenic::LiveNic`].
#[derive(Debug)]
pub struct ShmRingNic {
    queues: Vec<Arc<ShmQueue>>,
    rss: Rss,
    stopped: AtomicBool,
}

impl ShmRingNic {
    /// Maps `queues` descriptor rings of `depth` descriptors each.
    pub fn new(queues: usize, depth: usize) -> Arc<Self> {
        assert!(queues >= 1 && depth >= 1);
        Arc::new(ShmRingNic {
            queues: (0..queues)
                .map(|_| Arc::new(ShmQueue::new(depth)))
                .collect(),
            rss: Rss::new(queues),
            stopped: AtomicBool::new(false),
        })
    }

    /// Direct handle to ring `q`, for producers that bypass RSS (tests,
    /// benches, single-queue pipelines).
    pub fn ring(&self, q: usize) -> Arc<ShmQueue> {
        Arc::clone(&self.queues[q])
    }
}

impl CaptureBackend for ShmRingNic {
    fn name(&self) -> &'static str {
        "shmring"
    }

    fn queue_count(&self) -> usize {
        self.queues.len()
    }

    fn queue(&self, q: usize) -> Arc<dyn BackendQueue> {
        Arc::clone(&self.queues[q]) as Arc<dyn BackendQueue>
    }

    fn stop(&self) -> Result<(), BackendError> {
        self.stopped.store(true, Ordering::SeqCst);
        Ok(())
    }

    fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }
}

impl LoopbackBackend for ShmRingNic {
    fn inject(&self, pkt: Packet) -> Option<usize> {
        let q = match parse_frame(&pkt.data).ok().and_then(|p| p.flow) {
            Some(flow) => self.rss.steer(&flow),
            // Non-IP traffic lands on queue 0, as hardware RSS does.
            None => 0,
        };
        match self.queues[q].produce(pkt.ts_ns, pkt.wire_len, &pkt.data) {
            Ok(true) => Some(q),
            Ok(false) | Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};
    use std::net::Ipv4Addr;

    fn packet(i: u16) -> Packet {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
            1000 + i,
            Ipv4Addr::new(131, 225, 2, 1),
            443,
        );
        PacketBuilder::new()
            .build_packet(u64::from(i), &flow, 100)
            .unwrap()
    }

    fn drain(q: &ShmQueue, max: usize) -> Vec<(u64, u32, Vec<u8>)> {
        let mut out = Vec::new();
        let polled = q
            .poll(max, &mut |f: RxFrame<'_>| {
                out.push((f.ts_ns, f.wire_len, f.data.to_vec()));
            })
            .unwrap();
        assert_eq!(polled, out.len());
        out
    }

    #[test]
    fn produce_poll_recycle_roundtrip_with_wraparound() {
        let q = ShmQueue::new(4);
        // Three full laps around a 4-slot ring.
        for lap in 0u64..3 {
            for i in 0..4u64 {
                let seq = lap * 4 + i;
                let payload = vec![seq as u8; 60 + seq as usize];
                assert!(q.produce(seq, 60 + seq as u32, &payload).unwrap());
            }
            // Ring is now full: the next produce must drop.
            assert!(!q.produce(999, 60, &[0u8; 60]).unwrap());
            let got = drain(&q, 16);
            assert_eq!(got.len(), 4);
            for (i, (ts, wire, data)) in got.iter().enumerate() {
                let seq = lap * 4 + i as u64;
                assert_eq!(*ts, seq);
                assert_eq!(*wire, 60 + seq as u32);
                assert_eq!(data, &vec![seq as u8; 60 + seq as usize]);
            }
            q.recycle_delivered(4).unwrap();
        }
        let a = q.accounting();
        assert_eq!(a.received, 12);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.ring_used, 0);
        assert_eq!(a.ring_capacity, 4);
    }

    #[test]
    fn unrecycled_slots_stall_the_producer() {
        let q = ShmQueue::new(2);
        assert!(q.produce(1, 60, &[1u8; 60]).unwrap());
        assert!(q.produce(2, 60, &[2u8; 60]).unwrap());
        assert_eq!(drain(&q, 16).len(), 2);
        // Polled but not recycled: descriptors still belong to the
        // consumer, so the producer is stalled exactly as real hardware
        // stalls when RDT never advances.
        assert!(!q.produce(3, 60, &[3u8; 60]).unwrap());
        q.recycle_delivered(1).unwrap();
        assert!(q.produce(3, 60, &[3u8; 60]).unwrap());
    }

    #[test]
    fn over_recycle_is_corrupt() {
        let q = ShmQueue::new(4);
        assert!(q.produce(1, 60, &[1u8; 60]).unwrap());
        assert_eq!(drain(&q, 16).len(), 1);
        match q.recycle_delivered(2) {
            Err(BackendError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The valid recycle still works afterwards.
        q.recycle_delivered(1).unwrap();
    }

    #[test]
    fn corrupt_descriptor_poisons_the_queue_after_the_batch() {
        let q = ShmQueue::new(4);
        assert!(q.produce(1, 60, &[1u8; 60]).unwrap());
        assert!(q.produce(2, 60, &[2u8; 60]).unwrap());
        // Sabotage the second descriptor the way a misbehaving producer
        // would: an impossible buffer length under a set DD bit.
        q.mem
            .desc(1)
            .buf_len
            .store(SLOT_BYTES as u32 + 1, Ordering::Relaxed);
        // The frames before the corruption are still delivered...
        assert_eq!(drain(&q, 16).len(), 1);
        // ...and every poll after it fails with the latched error, so
        // the engine closes the queue instead of reading garbage.
        for _ in 0..2 {
            match q.poll(16, &mut |_| panic!("must lend nothing")) {
                Err(BackendError::Corrupt(_)) => {}
                other => panic!("expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversize_payload_is_snapped_to_slot() {
        let q = ShmQueue::new(2);
        let big = vec![7u8; SLOT_BYTES + 100];
        assert!(q.produce(1, big.len() as u32, &big).unwrap());
        let got = drain(&q, 1);
        assert_eq!(got[0].1, big.len() as u32); // wire length preserved
        assert_eq!(got[0].2.len(), SLOT_BYTES); // payload snapped
    }

    #[test]
    fn rss_steering_is_flow_stable_and_non_ip_lands_on_queue_zero() {
        let nic = ShmRingNic::new(4, 64);
        let q1 = nic.inject(packet(5)).unwrap();
        let q2 = nic.inject(packet(5)).unwrap();
        assert_eq!(q1, q2);
        let raw = Packet::new(0, vec![0u8; 60]); // ethertype 0x0000
        assert_eq!(nic.inject(raw), Some(0));
        let polled: usize = (0..4).map(|q| drain(&nic.ring(q), 16).len()).sum();
        assert_eq!(polled, 3);
    }

    #[test]
    fn backend_queue_accounting_folds_into_telemetry_once() {
        let nic = ShmRingNic::new(1, 8);
        for i in 0..10 {
            nic.inject(packet(i));
        }
        let queue = CaptureBackend::queue(&*nic, 0);
        assert_eq!(queue.depth(), 8);
        let a = queue.accounting();
        assert_eq!(a.received, 8);
        assert_eq!(a.dropped, 2);
        assert_eq!(a.ring_used, 8);
        assert_eq!(a.ring_capacity, 8);
        let mut t = telemetry::QueueTelemetry::default();
        queue.fill_telemetry(&mut t);
        assert_eq!(t.offered_packets, 10);
        assert_eq!(t.nic_drop_packets, 2);
        assert_eq!(t.ring_used, 8);
        assert_eq!(t.ring_ready, 0);
    }

    #[test]
    fn concurrent_producers_and_one_consumer_conserve_frames() {
        let nic = ShmRingNic::new(1, 32);
        let total_per_thread = 300u64;
        let producers: Vec<_> = (0..3)
            .map(|t| {
                let ring = nic.ring(0);
                std::thread::spawn(move || {
                    let mut landed = 0u64;
                    for i in 0..total_per_thread {
                        let seq = t * total_per_thread + i;
                        if ring.produce(seq, 60, &[seq as u8; 60]).unwrap() {
                            landed += 1;
                        }
                    }
                    landed
                })
            })
            .collect();
        let consumer = {
            let ring = nic.ring(0);
            let nic = Arc::clone(&nic);
            std::thread::spawn(move || {
                let mut consumed = 0u64;
                loop {
                    let polled = ring.poll(16, &mut |_| {}).unwrap();
                    ring.recycle_delivered(polled).unwrap();
                    consumed += polled as u64;
                    if polled == 0 {
                        if nic.is_stopped() && BackendQueue::depth(&*ring) == 0 {
                            return consumed;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        };
        let landed: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        CaptureBackend::stop(&*nic).unwrap();
        let consumed = consumer.join().unwrap();
        assert_eq!(consumed, landed);
        let a = nic.ring(0).accounting();
        assert_eq!(a.received, landed);
        assert_eq!(a.received + a.dropped, 3 * total_per_thread);
    }
}
