//! # pcap — Libpcap-compatible savefiles and capture API
//!
//! WireCAP's user-mode library exposes "a Libpcap-compatible interface for
//! low-level network access … allowing existing network monitoring
//! applications to use WireCAP without changes" (paper §1, §3.2.2e). This
//! crate is that interface for the reproduction:
//!
//! * [`savefile`] reads and writes the classic pcap file format (both
//!   endiannesses, microsecond and nanosecond timestamp precision,
//!   snap-length truncation) with no external dependencies;
//! * [`capture`] provides the `pcap_dispatch`/`pcap_loop` programming
//!   model over any [`capture::PacketSource`] — offline savefiles, the
//!   simulated NIC, or WireCAP work queues — plus BPF filtering via the
//!   [`bpf`] crate and `pcap_stats`-style counters.
//!
//! ```
//! use pcap::capture::{Capture, VecSource};
//! use netproto::Packet;
//!
//! let pkts = vec![Packet::new(0, vec![0u8; 60]), Packet::new(1000, vec![1u8; 60])];
//! let mut cap = Capture::new(VecSource::new(pkts));
//! let mut n = 0;
//! cap.loop_(|_pkt| n += 1);
//! assert_eq!(n, 2);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod savefile;

pub use capture::{Capture, CaptureStats, PacketSource, VecSource};
pub use savefile::{read_file, write_file, Linktype, Precision, SavefileError};
