//! The `pcap_dispatch` / `pcap_loop` programming model.
//!
//! [`Capture`] wraps any [`PacketSource`] and adds the libpcap surface a
//! monitoring application expects: BPF filtering (`pcap_setfilter`),
//! bounded dispatch (`pcap_dispatch`), drain-to-completion (`pcap_loop`)
//! and `pcap_stats`-style counters. WireCAP's user-mode work queues, the
//! simulated NIC, and offline savefiles all implement [`PacketSource`], so
//! an application written against this module runs unchanged on any of
//! them — the paper's compatibility claim.

use bpf::Filter;
use netproto::Packet;

/// Anything packets can be read from, one at a time.
///
/// `None` means "no packet available right now"; sources distinguish a
/// temporarily-empty live queue from end-of-stream via [`PacketSource::is_done`].
pub trait PacketSource {
    /// Takes the next available packet, if any.
    fn next_packet(&mut self) -> Option<Packet>;

    /// True when the source will never produce another packet.
    fn is_done(&self) -> bool;
}

/// A finite, in-memory packet source (savefiles, test fixtures).
#[derive(Debug, Clone)]
pub struct VecSource {
    packets: std::collections::VecDeque<Packet>,
}

impl VecSource {
    /// Creates a source over the given packets, delivered in order.
    pub fn new(packets: impl IntoIterator<Item = Packet>) -> Self {
        VecSource {
            packets: packets.into_iter().collect(),
        }
    }

    /// Loads a source from pcap savefile bytes.
    pub fn from_savefile(data: &[u8]) -> Result<Self, crate::SavefileError> {
        Ok(VecSource::new(crate::savefile::read_file(data)?.packets))
    }
}

impl PacketSource for VecSource {
    fn next_packet(&mut self) -> Option<Packet> {
        self.packets.pop_front()
    }

    fn is_done(&self) -> bool {
        self.packets.is_empty()
    }
}

/// `pcap_stats` counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CaptureStats {
    /// Packets seen by the capture (pre-filter).
    pub received: u64,
    /// Packets rejected by the installed filter.
    pub filtered_out: u64,
    /// Packets handed to the application callback.
    pub delivered: u64,
}

/// A libpcap-style capture handle over a packet source.
#[derive(Debug)]
pub struct Capture<S: PacketSource> {
    source: S,
    filter: Option<Filter>,
    snaplen: usize,
    stats: CaptureStats,
}

impl<S: PacketSource> Capture<S> {
    /// Opens a capture over `source` with no filter and full snap length.
    pub fn new(source: S) -> Self {
        Capture {
            source,
            filter: None,
            snaplen: 65_535,
            stats: CaptureStats::default(),
        }
    }

    /// Installs a compiled BPF filter (`pcap_setfilter`).
    pub fn set_filter(&mut self, filter: Filter) {
        self.filter = Some(filter);
    }

    /// Compiles and installs a filter expression in one step.
    pub fn set_filter_expr(&mut self, expr: &str) -> Result<(), bpf::Error> {
        self.filter = Some(Filter::compile(expr)?);
        Ok(())
    }

    /// Removes the filter.
    pub fn clear_filter(&mut self) {
        self.filter = None;
    }

    /// Sets the snap length applied to delivered packets.
    pub fn set_snaplen(&mut self, snaplen: usize) {
        self.snaplen = snaplen.max(1);
    }

    /// Processes up to `count` packets (`pcap_dispatch`). Returns the
    /// number of packets handed to the callback. Returns early when the
    /// source has nothing available.
    pub fn dispatch<F: FnMut(&Packet)>(&mut self, count: usize, mut handler: F) -> usize {
        let mut delivered = 0;
        while delivered < count {
            let Some(pkt) = self.source.next_packet() else {
                break;
            };
            self.stats.received += 1;
            if let Some(f) = &self.filter {
                if !f.matches(&pkt.data) {
                    self.stats.filtered_out += 1;
                    continue;
                }
            }
            let pkt = if pkt.data.len() > self.snaplen {
                Packet {
                    ts_ns: pkt.ts_ns,
                    wire_len: pkt.wire_len,
                    data: pkt.data.slice(..self.snaplen),
                }
            } else {
                pkt
            };
            self.stats.delivered += 1;
            delivered += 1;
            handler(&pkt);
        }
        delivered
    }

    /// Processes packets until the source is exhausted (`pcap_loop` with
    /// `cnt = -1` on a finite source). Returns the number delivered.
    pub fn loop_<F: FnMut(&Packet)>(&mut self, mut handler: F) -> usize {
        let mut total = 0;
        loop {
            let n = self.dispatch(usize::MAX, &mut handler);
            total += n;
            if self.source.is_done() {
                return total;
            }
            if n == 0 {
                // Live source with nothing pending; a real pcap_loop would
                // block. The simulation-facing sources never hit this arm
                // without being done.
                return total;
            }
        }
    }

    /// `pcap_stats`.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Releases the handle, returning the underlying source.
    pub fn into_source(self) -> S {
        self.source
    }

    /// Borrows the underlying source.
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};

    fn mixed_packets() -> Vec<Packet> {
        let mut b = PacketBuilder::new();
        let udp = FlowKey::udp(
            "131.225.2.1".parse().unwrap(),
            53,
            "8.8.8.8".parse().unwrap(),
            53,
        );
        let tcp = FlowKey::tcp(
            "10.0.0.1".parse().unwrap(),
            80,
            "10.0.0.2".parse().unwrap(),
            80,
        );
        (0..10)
            .map(|i| {
                let flow = if i % 2 == 0 { &udp } else { &tcp };
                b.build_packet(i * 1000, flow, 100).unwrap()
            })
            .collect()
    }

    #[test]
    fn loop_delivers_everything_without_filter() {
        let mut cap = Capture::new(VecSource::new(mixed_packets()));
        let mut seen = Vec::new();
        let n = cap.loop_(|p| seen.push(p.ts_ns));
        assert_eq!(n, 10);
        assert_eq!(seen.len(), 10);
        assert_eq!(cap.stats().received, 10);
        assert_eq!(cap.stats().delivered, 10);
        assert_eq!(cap.stats().filtered_out, 0);
    }

    #[test]
    fn dispatch_respects_count() {
        let mut cap = Capture::new(VecSource::new(mixed_packets()));
        assert_eq!(cap.dispatch(3, |_| {}), 3);
        assert_eq!(cap.dispatch(100, |_| {}), 7);
        assert_eq!(cap.dispatch(5, |_| {}), 0);
    }

    #[test]
    fn filter_screens_packets() {
        let mut cap = Capture::new(VecSource::new(mixed_packets()));
        cap.set_filter_expr("udp").unwrap();
        let n = cap.loop_(|p| {
            let parsed = netproto::parse_frame(&p.data).unwrap();
            assert_eq!(parsed.flow.unwrap().proto, netproto::Protocol::Udp);
        });
        assert_eq!(n, 5);
        assert_eq!(cap.stats().filtered_out, 5);
    }

    #[test]
    fn paper_filter_via_capture() {
        let mut cap = Capture::new(VecSource::new(mixed_packets()));
        cap.set_filter_expr("131.225.2 and udp").unwrap();
        assert_eq!(cap.loop_(|_| {}), 5);
    }

    #[test]
    fn snaplen_truncates_delivery() {
        let mut cap = Capture::new(VecSource::new(mixed_packets()));
        cap.set_snaplen(42);
        cap.loop_(|p| {
            assert_eq!(p.data.len(), 42);
            assert_eq!(p.wire_len, 100);
        });
    }

    #[test]
    fn clear_filter_restores_everything() {
        let mut cap = Capture::new(VecSource::new(mixed_packets()));
        cap.set_filter_expr("udp").unwrap();
        cap.clear_filter();
        assert_eq!(cap.loop_(|_| {}), 10);
    }

    #[test]
    fn savefile_source_roundtrip() {
        let pkts = mixed_packets();
        let mut buf = Vec::new();
        crate::savefile::write_file(&mut buf, &pkts, crate::Precision::Nanos, 65535).unwrap();
        let mut cap = Capture::new(VecSource::from_savefile(&buf).unwrap());
        assert_eq!(cap.loop_(|_| {}), 10);
    }
}
