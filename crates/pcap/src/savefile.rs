//! The classic pcap savefile format.
//!
//! Implements the tcpdump/libpcap format exactly: a 24-byte global header
//! (magic, version 2.4, snaplen, linktype) followed by per-packet records
//! (seconds, fractional part, captured length, original length). Readers
//! accept all four magic variants — little/big endian × micro/nanosecond
//! timestamps; writers emit little-endian and either precision.

use bytes::Bytes;
use netproto::Packet;
use std::io::{self, Read, Write};

/// Magic for microsecond-precision files (native byte order).
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// Magic for nanosecond-precision files (native byte order).
pub const MAGIC_NANOS: u32 = 0xa1b2_3c4d;

/// Timestamp precision of a savefile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Microsecond fractional timestamps (`0xa1b2c3d4`).
    Micros,
    /// Nanosecond fractional timestamps (`0xa1b23c4d`).
    Nanos,
}

/// Link-layer header type (we only capture Ethernet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linktype {
    /// LINKTYPE_ETHERNET (1).
    Ethernet,
    /// Any other value, preserved verbatim.
    Other(u32),
}

impl Linktype {
    fn value(self) -> u32 {
        match self {
            Linktype::Ethernet => 1,
            Linktype::Other(v) => v,
        }
    }

    fn from_value(v: u32) -> Self {
        if v == 1 {
            Linktype::Ethernet
        } else {
            Linktype::Other(v)
        }
    }
}

/// Errors from reading a savefile.
#[derive(Debug)]
pub enum SavefileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number is not a pcap magic.
    BadMagic(u32),
    /// A record header is inconsistent (e.g. captured length > snaplen
    /// sanity bound).
    Corrupt(String),
}

impl From<io::Error> for SavefileError {
    fn from(e: io::Error) -> Self {
        SavefileError::Io(e)
    }
}

impl core::fmt::Display for SavefileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SavefileError::Io(e) => write!(f, "i/o error: {e}"),
            SavefileError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            SavefileError::Corrupt(m) => write!(f, "corrupt savefile: {m}"),
        }
    }
}

impl std::error::Error for SavefileError {}

/// Contents of a parsed savefile.
#[derive(Debug)]
pub struct Savefile {
    /// Timestamp precision the file was written with.
    pub precision: Precision,
    /// Snap length declared in the header.
    pub snaplen: u32,
    /// Link-layer type.
    pub linktype: Linktype,
    /// The packets, timestamps normalized to nanoseconds.
    pub packets: Vec<Packet>,
}

/// Hard upper bound on record lengths, used to reject corrupt files
/// before attempting a huge allocation.
const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// Writes packets as a pcap savefile.
pub fn write_file<W: Write>(
    mut w: W,
    packets: &[Packet],
    precision: Precision,
    snaplen: u32,
) -> io::Result<()> {
    let magic = match precision {
        Precision::Micros => MAGIC_MICROS,
        Precision::Nanos => MAGIC_NANOS,
    };
    w.write_all(&magic.to_le_bytes())?;
    w.write_all(&2u16.to_le_bytes())?; // version major
    w.write_all(&4u16.to_le_bytes())?; // version minor
    w.write_all(&0i32.to_le_bytes())?; // thiszone
    w.write_all(&0u32.to_le_bytes())?; // sigfigs
    w.write_all(&snaplen.to_le_bytes())?;
    w.write_all(&Linktype::Ethernet.value().to_le_bytes())?;
    for p in packets {
        let secs = (p.ts_ns / 1_000_000_000) as u32;
        let frac_ns = p.ts_ns % 1_000_000_000;
        let frac = match precision {
            Precision::Micros => (frac_ns / 1_000) as u32,
            Precision::Nanos => frac_ns as u32,
        };
        let incl = (p.data.len() as u32).min(snaplen);
        w.write_all(&secs.to_le_bytes())?;
        w.write_all(&frac.to_le_bytes())?;
        w.write_all(&incl.to_le_bytes())?;
        w.write_all(&p.wire_len.to_le_bytes())?;
        w.write_all(&p.data[..incl as usize])?;
    }
    w.flush()
}

/// Reads a pcap savefile, accepting any of the four magic variants.
pub fn read_file<R: Read>(mut r: R) -> Result<Savefile, SavefileError> {
    let mut hdr = [0u8; 24];
    r.read_exact(&mut hdr)?;
    let raw_magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let (swapped, precision) = match raw_magic {
        MAGIC_MICROS => (false, Precision::Micros),
        MAGIC_NANOS => (false, Precision::Nanos),
        m if m == MAGIC_MICROS.swap_bytes() => (true, Precision::Micros),
        m if m == MAGIC_NANOS.swap_bytes() => (true, Precision::Nanos),
        m => return Err(SavefileError::BadMagic(m)),
    };
    let u32_at = |b: &[u8], off: usize| -> u32 {
        let v = u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]]);
        if swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    let snaplen = u32_at(&hdr, 16);
    let linktype = Linktype::from_value(u32_at(&hdr, 20));

    let mut packets = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match r.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let secs = u32_at(&rec, 0);
        let frac = u32_at(&rec, 4);
        let incl = u32_at(&rec, 8);
        let orig = u32_at(&rec, 12);
        if incl > MAX_RECORD_LEN || incl > orig.max(incl) || orig > MAX_RECORD_LEN {
            return Err(SavefileError::Corrupt(format!(
                "record {}: incl {incl} orig {orig}",
                packets.len()
            )));
        }
        let frac_ns = match precision {
            Precision::Micros => {
                if frac >= 1_000_000 {
                    return Err(SavefileError::Corrupt(format!(
                        "record {}: microsecond field {frac}",
                        packets.len()
                    )));
                }
                u64::from(frac) * 1_000
            }
            Precision::Nanos => {
                if frac >= 1_000_000_000 {
                    return Err(SavefileError::Corrupt(format!(
                        "record {}: nanosecond field {frac}",
                        packets.len()
                    )));
                }
                u64::from(frac)
            }
        };
        let mut data = vec![0u8; incl as usize];
        r.read_exact(&mut data)?;
        packets.push(Packet {
            ts_ns: u64::from(secs) * 1_000_000_000 + frac_ns,
            wire_len: orig,
            data: Bytes::from(data),
        });
    }
    Ok(Savefile {
        precision,
        snaplen,
        linktype,
        packets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        vec![
            Packet::new(0, vec![0xaa; 60]),
            Packet::new(1_500_000_123, vec![0xbb; 1500]),
            Packet::new(32_000_000_007, vec![0xcc; 64]),
        ]
    }

    #[test]
    fn roundtrip_nanos() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts, Precision::Nanos, 65535).unwrap();
        let sf = read_file(&buf[..]).unwrap();
        assert_eq!(sf.precision, Precision::Nanos);
        assert_eq!(sf.linktype, Linktype::Ethernet);
        assert_eq!(sf.snaplen, 65535);
        assert_eq!(sf.packets, pkts);
    }

    #[test]
    fn roundtrip_micros_loses_sub_microsecond() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts, Precision::Micros, 65535).unwrap();
        let sf = read_file(&buf[..]).unwrap();
        assert_eq!(sf.packets[0].ts_ns, 0);
        assert_eq!(sf.packets[1].ts_ns, 1_500_000_000); // 123 ns dropped
        assert_eq!(sf.packets[2].ts_ns, 32_000_000_000);
        assert_eq!(sf.packets[1].data, pkts[1].data);
    }

    #[test]
    fn snaplen_truncates_but_keeps_wire_len() {
        let pkts = vec![Packet::new(7, vec![1u8; 1000])];
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts, Precision::Nanos, 96).unwrap();
        let sf = read_file(&buf[..]).unwrap();
        assert_eq!(sf.packets[0].data.len(), 96);
        assert_eq!(sf.packets[0].wire_len, 1000);
        assert!(sf.packets[0].is_truncated());
    }

    #[test]
    fn reads_big_endian_files() {
        // Hand-build a big-endian microsecond file with one 4-byte packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0i32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&3u32.to_be_bytes()); // secs
        buf.extend_from_slice(&250u32.to_be_bytes()); // usecs
        buf.extend_from_slice(&4u32.to_be_bytes()); // incl
        buf.extend_from_slice(&4u32.to_be_bytes()); // orig
        buf.extend_from_slice(&[9, 8, 7, 6]);
        let sf = read_file(&buf[..]).unwrap();
        assert_eq!(sf.packets.len(), 1);
        assert_eq!(sf.packets[0].ts_ns, 3_000_250_000);
        assert_eq!(&sf.packets[0].data[..], &[9, 8, 7, 6]);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = [0u8; 24];
        assert!(matches!(
            read_file(&buf[..]),
            Err(SavefileError::BadMagic(0))
        ));
    }

    #[test]
    fn rejects_corrupt_record() {
        let mut buf = Vec::new();
        write_file(&mut buf, &[], Precision::Nanos, 65535).unwrap();
        // Append a record claiming a 1 GiB packet.
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        buf.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(
            read_file(&buf[..]),
            Err(SavefileError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_invalid_fraction() {
        let mut buf = Vec::new();
        write_file(&mut buf, &[], Precision::Micros, 65535).unwrap();
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&2_000_000u32.to_le_bytes()); // 2e6 "microseconds"
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_file(&buf[..]),
            Err(SavefileError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let pkts = vec![Packet::new(7, vec![1u8; 100])];
        let mut buf = Vec::new();
        write_file(&mut buf, &pkts, Precision::Nanos, 65535).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(read_file(&buf[..]), Err(SavefileError::Io(_))));
    }

    #[test]
    fn empty_file_roundtrip() {
        let mut buf = Vec::new();
        write_file(&mut buf, &[], Precision::Nanos, 65535).unwrap();
        let sf = read_file(&buf[..]).unwrap();
        assert!(sf.packets.is_empty());
    }
}

/// A streaming savefile writer: header up front, one record per call —
/// what a long-running capture tool needs (the batch [`write_file`]
/// requires the full packet list in memory).
#[derive(Debug)]
pub struct SavefileWriter<W: Write> {
    sink: W,
    precision: Precision,
    snaplen: u32,
    written: u64,
}

impl<W: Write> SavefileWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut sink: W, precision: Precision, snaplen: u32) -> io::Result<Self> {
        let magic = match precision {
            Precision::Micros => MAGIC_MICROS,
            Precision::Nanos => MAGIC_NANOS,
        };
        sink.write_all(&magic.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?;
        sink.write_all(&4u16.to_le_bytes())?;
        sink.write_all(&0i32.to_le_bytes())?;
        sink.write_all(&0u32.to_le_bytes())?;
        sink.write_all(&snaplen.to_le_bytes())?;
        sink.write_all(&Linktype::Ethernet.value().to_le_bytes())?;
        Ok(SavefileWriter {
            sink,
            precision,
            snaplen,
            written: 0,
        })
    }

    /// Appends one packet record.
    pub fn write_packet(&mut self, p: &Packet) -> io::Result<()> {
        let secs = (p.ts_ns / 1_000_000_000) as u32;
        let frac_ns = p.ts_ns % 1_000_000_000;
        let frac = match self.precision {
            Precision::Micros => (frac_ns / 1_000) as u32,
            Precision::Nanos => frac_ns as u32,
        };
        let incl = (p.data.len() as u32).min(self.snaplen);
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&frac.to_le_bytes())?;
        self.sink.write_all(&incl.to_le_bytes())?;
        self.sink.write_all(&p.wire_len.to_le_bytes())?;
        self.sink.write_all(&p.data[..incl as usize])?;
        self.written += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;

    #[test]
    fn streaming_writer_matches_batch_writer() {
        let pkts = vec![
            Packet::new(5, vec![1u8; 60]),
            Packet::new(1_000_000_777, vec![2u8; 1500]),
        ];
        let mut batch = Vec::new();
        write_file(&mut batch, &pkts, Precision::Nanos, 65_535).unwrap();

        let mut w = SavefileWriter::new(Vec::new(), Precision::Nanos, 65_535).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        assert_eq!(w.written(), 2);
        let streamed = w.finish().unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn streaming_snaplen_truncates() {
        let mut w = SavefileWriter::new(Vec::new(), Precision::Micros, 96).unwrap();
        w.write_packet(&Packet::new(0, vec![9u8; 500])).unwrap();
        let out = w.finish().unwrap();
        let sf = read_file(&out[..]).unwrap();
        assert_eq!(sf.packets[0].data.len(), 96);
        assert_eq!(sf.packets[0].wire_len, 500);
    }

    #[test]
    fn empty_stream_is_a_valid_savefile() {
        let out = SavefileWriter::new(Vec::new(), Precision::Nanos, 65_535)
            .unwrap()
            .finish()
            .unwrap();
        assert!(read_file(&out[..]).unwrap().packets.is_empty());
    }
}
