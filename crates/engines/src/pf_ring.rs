//! PF_RING: the Type-I engine.
//!
//! "PF_RING … allocates an intermediate data buffer, termed pf_ring,
//! within the kernel … the packet capture engine copies packets from the
//! ring buffers to pf_ring (for example, using NAPI polling) … a Type-I
//! packet capture engine requires at least one copy to move a packet from
//! the NIC ring into the user space. At high packet rates, excessive data
//! copying results in poor performance. In addition, it may suffer the
//! receive livelock problem." (§2.1)
//!
//! The model has two coupled stages per queue:
//!
//! 1. **NAPI copy** (softirq context): drains the NIC ring into the
//!    bounded `pf_ring` buffer at a copy rate set by [`COPY_CYCLES`].
//!    Softirq work pre-empts the application sharing the core but yields
//!    at the NAPI budget, so it can use at most [`SOFTIRQ_MAX_SHARE`] of
//!    the CPU. Ring overflow while the copy lags = *capture* drops.
//! 2. **Application**: consumes `pf_ring` at the `pkt_handler` rate scaled
//!    by the CPU share the softirq left over — this coupling is the
//!    receive-livelock mechanism. `pf_ring` overflow = *delivery* drops.

use crate::engine::{CaptureEngine, EngineConfig};
use nicsim::ring::RxRing;
use sim::stats::CopyMeter;
use sim::SimTime;
use telemetry::QueueTelemetry;

/// CPU cycles to copy one packet from a ring buffer into `pf_ring`
/// (memcpy + descriptor bookkeeping in NAPI context). At 2.4 GHz this
/// caps the copy stage at ≈ 5.3 Mp/s, well below 64-byte wire rate —
/// which is why PF_RING drops at wire speed in Fig. 8 while the zero-copy
/// engines do not.
pub const COPY_CYCLES: f64 = 450.0;

/// Maximum CPU fraction the softirq may consume before the NAPI budget
/// forces it to yield to user context.
pub const SOFTIRQ_MAX_SHARE: f64 = 0.85;

/// The paper's `pf_ring` buffer size: "the size of pf_ring buffer is set
/// to 10,240".
pub const DEFAULT_PF_RING_SLOTS: u64 = 10_240;

#[derive(Debug)]
struct PfQueue {
    ring: RxRing,
    /// Packets waiting in the pf_ring buffer (fluid).
    pf_backlog: f64,
    copy_carry: f64,
    app_carry: f64,
    last: SimTime,
    offered: u64,
    delivered: u64,
    delivery_drops: u64,
    copied_packets: u64,
    copied_bytes_est: u64,
    bytes_seen: u64,
}

/// The PF_RING capture engine model.
#[derive(Debug)]
pub struct PfRingEngine {
    cfg: EngineConfig,
    pf_slots: u64,
    copy_rate_pps: f64,
    queues: Vec<PfQueue>,
}

impl PfRingEngine {
    /// Creates an engine with `queues` receive queues and the paper's
    /// pf_ring size.
    pub fn new(queues: usize, cfg: EngineConfig) -> Self {
        Self::with_pf_slots(queues, cfg, DEFAULT_PF_RING_SLOTS)
    }

    /// Creates an engine with an explicit pf_ring slot count.
    pub fn with_pf_slots(queues: usize, cfg: EngineConfig, pf_slots: u64) -> Self {
        PfRingEngine {
            copy_rate_pps: cfg.app.cpu.freq_ghz * 1e9 / COPY_CYCLES,
            cfg,
            pf_slots,
            queues: (0..queues)
                .map(|_| PfQueue {
                    ring: RxRing::new(cfg.ring_size),
                    pf_backlog: 0.0,
                    copy_carry: 0.0,
                    app_carry: 0.0,
                    last: SimTime::ZERO,
                    offered: 0,
                    delivered: 0,
                    delivery_drops: 0,
                    copied_packets: 0,
                    copied_bytes_est: 0,
                    bytes_seen: 0,
                })
                .collect(),
        }
    }

    fn advance_queue(&mut self, q: usize, now: SimTime) {
        let qs = &mut self.queues[q];
        let dt = now.since(qs.last) as f64 / 1e9;
        qs.last = SimTime(qs.last.0.max(now.0));
        if dt <= 0.0 {
            return;
        }

        // Stage 1: NAPI copy, softirq priority, bounded by its budget.
        let copy_budget = self.copy_rate_pps * dt * SOFTIRQ_MAX_SHARE + qs.copy_carry;
        let want = qs.ring.used() as f64;
        let copied_f = copy_budget.min(want);
        let copied = copied_f.floor() as u64;
        qs.copy_carry = (copy_budget - copied as f64).min(1.0);

        // CPU share actually burned by the softirq during this interval.
        let softirq_share = if dt > 0.0 {
            (copied_f / (self.copy_rate_pps * dt)).min(SOFTIRQ_MAX_SHARE)
        } else {
            0.0
        };

        // Stage 2: the application runs in what's left of the core —
        // the receive-livelock coupling.
        let app_rate = self.cfg.app.rate_pps() * (1.0 - softirq_share);
        let app_budget = app_rate * dt + qs.app_carry;
        let consumed_f = app_budget.min(qs.pf_backlog);
        let consumed = consumed_f.floor() as u64;
        qs.app_carry = (app_budget - consumed as f64).min(1.0);
        qs.pf_backlog -= consumed as f64;
        qs.delivered += consumed;

        // Copied packets enter pf_ring; overflow is a delivery drop.
        let free = (self.pf_slots as f64 - qs.pf_backlog).max(0.0);
        let accepted = (copied as f64).min(free).floor() as u64;
        qs.pf_backlog += accepted as f64;
        qs.delivery_drops += copied - accepted;

        // Copy frees ring descriptors either way (PF_RING re-arms with
        // the same buffer after the copy).
        qs.ring.rearm(copied as usize);
        qs.copied_packets += copied;
        // Copy-meter estimate: mean captured frame size so far.
        if qs.ring.received() > 0 {
            let mean = qs.bytes_seen / qs.ring.received().max(1);
            qs.copied_bytes_est += copied * mean;
        }
    }
}

impl CaptureEngine for PfRingEngine {
    fn name(&self) -> String {
        "PF_RING".into()
    }

    fn queues(&self) -> usize {
        self.queues.len()
    }

    fn on_arrival(&mut self, now: SimTime, queue: usize, len: u16) {
        self.advance_queue(queue, now);
        let qs = &mut self.queues[queue];
        qs.offered += 1;
        if qs.ring.dma() {
            qs.bytes_seen += u64::from(len.saturating_sub(4));
        }
    }

    fn advance(&mut self, now: SimTime) {
        for q in 0..self.queues.len() {
            self.advance_queue(q, now);
        }
    }

    fn finish(&mut self, after: SimTime) -> SimTime {
        let mut t = after;
        for _ in 0..4096 {
            let busy = self
                .queues
                .iter()
                .any(|qs| qs.ring.used() > 0 || qs.pf_backlog >= 1.0);
            if !busy {
                return t;
            }
            t = SimTime(t.as_nanos() + 10_000_000); // 10 ms drain steps
            self.advance(t);
        }
        t
    }

    fn telemetry(&self, queue: usize) -> QueueTelemetry {
        let qs = &self.queues[queue];
        let mut t = QueueTelemetry::empty(queue);
        t.offered_packets = qs.offered;
        t.captured_packets = qs.ring.received();
        t.delivered_packets = qs.delivered;
        t.capture_drop_packets = qs.ring.drops();
        t.delivery_drop_packets = qs.delivery_drops;
        // The pf_ring buffer plays the capture-queue role in Type I.
        t.capture_queue_len = qs.pf_backlog as u64;
        t.free_chunks = (self.pf_slots as f64 - qs.pf_backlog).max(0.0) as u64;
        qs.ring.fill_telemetry(&mut t);
        t
    }

    fn copies(&self) -> CopyMeter {
        let mut m = CopyMeter::default();
        for qs in &self.queues {
            m.record(qs.copied_packets, qs.copied_bytes_est);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::time::SECOND;

    fn run_uniform(e: &mut PfRingEngine, n: u64, gap_ns: u64) {
        for i in 0..n {
            e.on_arrival(SimTime(i * gap_ns), 0, 64);
        }
        e.finish(SimTime(n * gap_ns + SECOND));
    }

    /// Fig. 8: at 64-byte wire rate with x = 0, PF_RING drops heavily —
    /// both capture drops (copy can't keep up) and delivery drops
    /// (livelock starves the application).
    #[test]
    fn wire_rate_drops_of_both_kinds() {
        let mut e = PfRingEngine::new(1, EngineConfig::paper(0));
        run_uniform(&mut e, 200_000, 67);
        let s = e.queue_stats(0);
        assert!(
            s.capture_drop_rate() > 0.4,
            "capture {}",
            s.capture_drop_rate()
        );
        assert!(s.delivery_drops > 0, "expected livelock delivery drops");
        assert!(s.is_consistent());
    }

    /// Table 1 queue 0: sustained 80 k/s against x = 300 → no capture
    /// drops but massive delivery drops (pf_ring overflow).
    #[test]
    fn sustained_overload_is_delivery_drops() {
        let mut e = PfRingEngine::new(1, EngineConfig::paper(300));
        run_uniform(&mut e, 400_000, 12_500); // 80 k/s for 5 s
        let s = e.queue_stats(0);
        assert_eq!(s.capture_drops, 0);
        let rate = s.delivery_drop_rate();
        assert!((0.40..0.60).contains(&rate), "delivery rate = {rate}");
    }

    /// Moderate load where the copy keeps up: lossless, but every packet
    /// is copied exactly once (the Type-I cost).
    #[test]
    fn moderate_load_lossless_but_copies() {
        let mut e = PfRingEngine::new(1, EngineConfig::paper(300));
        run_uniform(&mut e, 100_000, 50_000); // 20 k/s
        let s = e.queue_stats(0);
        assert_eq!(s.overall_drop_rate(), 0.0);
        assert_eq!(s.delivered, 100_000);
        let copies = e.copies();
        assert_eq!(copies.packets, 100_000);
        assert!(copies.bytes > 0);
    }

    /// The copy stage outperforms the app but not the wire: buffering in
    /// pf_ring (10 240) far outlasts the ring (1 024), the paper's reason
    /// PF_RING avoids *capture* drops at queue 0.
    #[test]
    fn pf_ring_buffers_beyond_the_ring() {
        let mut e = PfRingEngine::new(1, EngineConfig::paper(300));
        // One 5 000-packet burst at 1 Mp/s: ring alone would drop ~4 000.
        for i in 0..5_000u64 {
            e.on_arrival(SimTime(i * 1_000), 0, 64);
        }
        e.finish(SimTime(SECOND));
        let s = e.queue_stats(0);
        assert_eq!(s.capture_drops, 0);
        assert_eq!(s.delivery_drops, 0);
        assert_eq!(s.delivered, 5_000);
    }

    /// And a burst beyond pf_ring capacity overflows it (delivery drops),
    /// still without capture drops while the copy keeps up.
    #[test]
    fn pf_ring_overflow_is_delivery_drop() {
        let mut e = PfRingEngine::new(1, EngineConfig::paper(300));
        for i in 0..20_000u64 {
            e.on_arrival(SimTime(i * 1_000), 0, 64); // 1 Mp/s burst
        }
        e.finish(SimTime(SECOND));
        let s = e.queue_stats(0);
        assert_eq!(s.capture_drops, 0);
        assert!(
            s.delivery_drops > 5_000,
            "delivery drops {}",
            s.delivery_drops
        );
    }

    #[test]
    fn smaller_pf_ring_drops_sooner() {
        let mut small = PfRingEngine::with_pf_slots(1, EngineConfig::paper(300), 1_024);
        let mut big = PfRingEngine::with_pf_slots(1, EngineConfig::paper(300), 10_240);
        for e in [&mut small, &mut big] {
            for i in 0..8_000u64 {
                e.on_arrival(SimTime(i * 1_000), 0, 64);
            }
            e.finish(SimTime(SECOND));
        }
        assert!(small.queue_stats(0).delivery_drops > big.queue_stats(0).delivery_drops);
    }
}
