//! The common capture-engine interface and application model.

use sim::stats::CopyMeter;
use sim::{CpuModel, DropStats, SimTime};
use telemetry::{EngineSnapshot, QueueTelemetry};

/// Extra per-packet CPU cycles when the application forwards each
/// processed packet. Attaching is a metadata-only operation (descriptor
/// write + amortized doorbell), so the cost is small — calibrated so that
/// an x = 0 forwarding core sustains ~12 Mp/s, consistent with the
/// paper's Fig. 14 where one core forwards 100-byte wire rate
/// (10.4 Mp/s) without loss.
pub const FORWARD_CYCLES: f64 = 100.0;

/// The application consuming captured packets, reduced — as the paper
/// itself reduces it — to a deterministic per-packet service rate: a
/// `pkt_handler` applying its BPF filter `x` times, optionally forwarding
/// the processed packet.
#[derive(Debug, Clone, Copy)]
pub struct AppModel {
    /// CPU the application thread runs on.
    pub cpu: CpuModel,
    /// BPF repetitions per packet (the paper uses x = 0 and x = 300).
    pub x: u32,
    /// Whether processed packets are forwarded (Fig. 13/14).
    pub forward: bool,
}

impl AppModel {
    /// Packet-processing rate in packets/s.
    pub fn rate_pps(&self) -> f64 {
        let base_ns = self.cpu.pkt_handler_ns(self.x);
        let fwd_ns = if self.forward {
            FORWARD_CYCLES / self.cpu.freq_ghz
        } else {
            0.0
        };
        1e9 / (base_ns + fwd_ns)
    }
}

/// Configuration shared by every engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The application model (one thread per queue, as in Fig. 1).
    pub app: AppModel,
    /// Receive-ring size in descriptors (the paper evaluates with 1024).
    pub ring_size: usize,
}

impl EngineConfig {
    /// The paper's standard configuration: 2.4 GHz cores, ring size 1024.
    pub fn paper(x: u32) -> Self {
        EngineConfig {
            app: AppModel {
                cpu: CpuModel::default(),
                x,
                forward: false,
            },
            ring_size: 1024,
        }
    }

    /// Same, with forwarding enabled.
    pub fn paper_forwarding(x: u32) -> Self {
        let mut cfg = Self::paper(x);
        cfg.app.forward = true;
        cfg
    }
}

/// A packet capture engine under simulation.
///
/// The harness feeds time-ordered wire arrivals per queue; the engine
/// integrates its internal processes (DMA, kernel copy threads, capture
/// threads, application consumption) between events and accounts drops in
/// the paper's taxonomy (capture vs. delivery).
pub trait CaptureEngine {
    /// Engine display name (e.g. `WireCAP-A-(256,100,60%)`).
    fn name(&self) -> String;

    /// Number of receive queues this engine instance manages.
    fn queues(&self) -> usize;

    /// A packet of `len` bytes (FCS included) arrives for `queue` at `now`.
    fn on_arrival(&mut self, now: SimTime, queue: usize, len: u16);

    /// Integrates all internal processes up to `now` (no new arrivals).
    fn advance(&mut self, now: SimTime);

    /// Runs every internal process to quiescence after the last arrival;
    /// returns the simulated time at which the engine drained.
    fn finish(&mut self, after: SimTime) -> SimTime;

    /// Full telemetry snapshot for one queue: the unified schema every
    /// engine (simulated, baseline, and the live threaded path) reports
    /// through. See `telemetry::QueueTelemetry` for the naming scheme.
    fn telemetry(&self, queue: usize) -> QueueTelemetry;

    /// Accounting for one queue in the figure-code vocabulary, derived
    /// from [`telemetry`](Self::telemetry) via the `DropStats` bridge.
    fn queue_stats(&self, queue: usize) -> DropStats {
        DropStats::from(&self.telemetry(queue))
    }

    /// Full engine snapshot: per-queue telemetry plus the engine-wide
    /// copy and latency meters, serializable to JSON and Prometheus.
    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            engine: self.name(),
            tuning: self.tuning(),
            queues: (0..self.queues()).map(|q| self.telemetry(q)).collect(),
            workers: Vec::new(),
            copies: self.copies(),
            latency: self.latency(),
        }
    }

    /// The resolved pool-tuning plan, for engines whose buffer pool is
    /// sized by a `TuningMode` derivation. Engines without a tuned
    /// pool report `None`.
    fn tuning(&self) -> Option<telemetry::TuningTelemetry> {
        None
    }

    /// Packet-byte copies performed on the capture/delivery path.
    fn copies(&self) -> CopyMeter;

    /// Capture-to-delivery latency samples, when the engine meters them
    /// (the §5c batching side effect). Engines without latency metering
    /// return empty statistics.
    fn latency(&self) -> sim::stats::LatencyStats {
        sim::stats::LatencyStats::new()
    }

    /// Aggregate accounting across queues.
    fn total_stats(&self) -> DropStats {
        let mut total = DropStats::default();
        for q in 0..self.queues() {
            total.merge(&self.queue_stats(q));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_rate_matches_paper_without_forwarding() {
        let app = AppModel {
            cpu: CpuModel::default(),
            x: 300,
            forward: false,
        };
        assert!((app.rate_pps() - 38_844.0).abs() < 1.0);
    }

    #[test]
    fn forwarding_reduces_rate() {
        let plain = AppModel {
            cpu: CpuModel::default(),
            x: 300,
            forward: false,
        };
        let fwd = AppModel {
            forward: true,
            ..plain
        };
        assert!(fwd.rate_pps() < plain.rate_pps());
        // but only slightly: the attach is a metadata operation.
        assert!(fwd.rate_pps() > 0.99 * plain.rate_pps());
    }

    #[test]
    fn paper_config_defaults() {
        let cfg = EngineConfig::paper(300);
        assert_eq!(cfg.ring_size, 1024);
        assert!(!cfg.app.forward);
        assert!(EngineConfig::paper_forwarding(0).app.forward);
    }
}
