//! Qualitative engine comparison — the paper's Table 2.

use serde::{Deserialize, Serialize};

/// Qualitative capabilities of a capture engine (Table 2 of the paper,
/// plus the mechanical properties behind it).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Capabilities {
    /// Engine name.
    pub name: String,
    /// The engine's stated design goal (Table 2 wording).
    pub goal: String,
    /// Deficiency noted by the paper (Table 2 wording).
    pub deficiency: String,
    /// Packet-byte copies on the capture path, per packet.
    pub copies_per_packet: u32,
    /// Buffering available per queue, in packets (order of magnitude),
    /// for the paper's standard configuration.
    pub buffering_packets: u64,
    /// Whether the engine can offload traffic between queues.
    pub has_offloading: bool,
    /// Whether captured packets can be forwarded zero-copy.
    pub zero_copy_forwarding: bool,
    /// Whether it suffers receive livelock.
    pub receive_livelock: bool,
}

/// The full Table 2 plus the engines' mechanical properties, for
/// WireCAP-B-(M=256, R=100) as the WireCAP reference configuration.
pub fn table2() -> Vec<Capabilities> {
    vec![
        Capabilities {
            name: "WireCAP".into(),
            goal: "avoiding packet drops".into(),
            deficiency: "requiring additional resources".into(),
            copies_per_packet: 0,
            buffering_packets: 256 * 100,
            has_offloading: true,
            zero_copy_forwarding: true,
            receive_livelock: false,
        },
        Capabilities {
            name: "DNA".into(),
            goal: "minimizing packet capture costs".into(),
            deficiency: "limited buffering capability, no offloading mechanism".into(),
            copies_per_packet: 0,
            buffering_packets: 1024,
            has_offloading: false,
            zero_copy_forwarding: true,
            receive_livelock: false,
        },
        Capabilities {
            name: "NETMAP".into(),
            goal: "minimizing packet capture costs".into(),
            deficiency: "limited buffering capability, no offloading mechanism".into(),
            copies_per_packet: 0,
            buffering_packets: 1024,
            has_offloading: false,
            zero_copy_forwarding: true,
            receive_livelock: false,
        },
        Capabilities {
            name: "PSIOE".into(),
            goal: "maximizing system throughput".into(),
            deficiency: "limited buffering capability; copying in packet capture".into(),
            copies_per_packet: 1,
            buffering_packets: 1024 + crate::psioe::USER_BUFFER_SLOTS,
            has_offloading: false,
            zero_copy_forwarding: false,
            receive_livelock: false,
        },
        Capabilities {
            name: "PF_RING".into(),
            goal: "minimizing packet capture costs".into(),
            deficiency:
                "copying in packet capture; receive livelock problem; no offloading mechanism"
                    .into(),
            copies_per_packet: 1,
            buffering_packets: 1024 + crate::pf_ring::DEFAULT_PF_RING_SLOTS,
            has_offloading: false,
            zero_copy_forwarding: false,
            receive_livelock: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_engines() {
        let t = table2();
        let names: Vec<&str> = t.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["WireCAP", "DNA", "NETMAP", "PSIOE", "PF_RING"]);
    }

    #[test]
    fn only_wirecap_offloads() {
        for c in table2() {
            assert_eq!(c.has_offloading, c.name == "WireCAP", "{}", c.name);
        }
    }

    #[test]
    fn zero_copy_engines_have_no_copies() {
        for c in table2() {
            match c.name.as_str() {
                "WireCAP" | "DNA" | "NETMAP" => assert_eq!(c.copies_per_packet, 0),
                _ => assert!(c.copies_per_packet >= 1),
            }
        }
    }

    #[test]
    fn wirecap_buffering_dwarfs_type2() {
        let t = table2();
        let wirecap = t.iter().find(|c| c.name == "WireCAP").unwrap();
        let dna = t.iter().find(|c| c.name == "DNA").unwrap();
        assert!(wirecap.buffering_packets >= 25 * dna.buffering_packets);
    }

    #[test]
    fn only_pf_ring_livelocks() {
        for c in table2() {
            assert_eq!(c.receive_livelock, c.name == "PF_RING", "{}", c.name);
        }
    }
}
