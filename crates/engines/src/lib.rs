//! # engines — baseline packet-capture engine models
//!
//! The paper compares WireCAP against the contemporary engines (§2.1):
//!
//! * **Type-I** — [`pf_ring::PfRingEngine`]: the kernel (NAPI) copies each
//!   packet from the NIC ring into an intermediate `pf_ring` buffer that
//!   is memory-mapped into the application. Costs: one copy per packet,
//!   receive livelock (softirq work starves the application sharing the
//!   core), and a bounded intermediate buffer whose overflow is a
//!   *delivery* drop.
//! * **Type-II** — [`type2::Type2Engine`] (DNA and NETMAP): ring buffers
//!   double as the data-capture buffer; zero-copy, but a received packet
//!   pins its descriptor until consumed, so buffering is limited to the
//!   ring and bursts beyond it become *capture* drops. NETMAP additionally
//!   reclaims descriptors only at sync boundaries, shrinking its effective
//!   buffering under bursts.
//! * [`pf_packet::PfPacketEngine`]: the stock kernel raw-socket path,
//!   modeled for completeness (the paper excludes it as "too poor").
//! * [`psioe::PsioeEngine`]: the PacketShader I/O engine — user-space
//!   batched copy, small buffer (§6).
//!
//! All engines implement [`engine::CaptureEngine`]; the WireCAP engine in
//! the `wirecap` crate implements the same trait, so the experiment
//! harness treats every engine uniformly. [`capabilities`] carries the
//! qualitative comparison of the paper's Table 2.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod capabilities;
pub mod dpdk;
pub mod engine;
pub mod pf_packet;
pub mod pf_ring;
pub mod psioe;
pub mod type2;

pub use capabilities::Capabilities;
pub use dpdk::DpdkEngine;
pub use engine::{AppModel, CaptureEngine, EngineConfig};
pub use pf_packet::PfPacketEngine;
pub use pf_ring::PfRingEngine;
pub use psioe::PsioeEngine;
pub use type2::{Type2Engine, Type2Kind};
