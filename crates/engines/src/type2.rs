//! Type-II engines: DNA and NETMAP.
//!
//! "DNA and NETMAP expose shadow copies of receive rings to user-space
//! applications. The ring buffers … not only are used to receive packets
//! but are also employed as data capture buffer … a received packet is
//! kept in a NIC ring buffer until it is consumed. During this period,
//! the ring buffer and its associated receive descriptor cannot be
//! released and reinitialized." (§2.1)
//!
//! Both engines are zero-copy and suffer only *capture* drops; they
//! differ in when consumed descriptors return to the ready state:
//!
//! * **DNA** releases a descriptor as soon as the application consumes
//!   its packet (per-packet reclaim);
//! * **NETMAP** reclaims descriptors at `NIOCRXSYNC` boundaries: the
//!   application takes the ring's current contents as a batch, and those
//!   descriptors all stay pinned until the *next* sync — after the whole
//!   batch is processed. Under bursts this halves the usable buffering,
//!   which is why NETMAP drops 33.4 % where DNA drops 9.3 % at the
//!   paper's queue 3 (Table 1).

use crate::engine::{CaptureEngine, EngineConfig};
use nicsim::ring::RxRing;
use sim::stats::CopyMeter;
use sim::{FluidServer, SimTime};
use telemetry::{Log2Histogram, QueueTelemetry};

/// Which Type-II engine to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type2Kind {
    /// ntop's Direct NIC Access driver.
    Dna,
    /// Rizzo's netmap framework.
    Netmap,
}

#[derive(Debug)]
struct QueueState {
    ring: RxRing,
    app: FluidServer,
    offered: u64,
    delivered: u64,
    forwarded: u64,
    /// NETMAP: packets in the batch currently being processed.
    batch_remaining: u64,
    /// NETMAP: size of that batch (descriptors to reclaim at next sync).
    batch_size: u64,
    /// NETMAP: received packets not yet taken into a batch.
    unbatched: u64,
    /// NETMAP: sync batch sizes (Type-II batching telemetry).
    batch_hist: Log2Histogram,
    latency: sim::stats::LatencyStats,
}

/// A Type-II capture engine over `n` independent queues.
#[derive(Debug)]
pub struct Type2Engine {
    kind: Type2Kind,
    cfg: EngineConfig,
    queues: Vec<QueueState>,
}

impl Type2Engine {
    /// Creates an engine with `queues` receive queues.
    pub fn new(kind: Type2Kind, queues: usize, cfg: EngineConfig) -> Self {
        let rate = cfg.app.rate_pps();
        Type2Engine {
            kind,
            cfg,
            queues: (0..queues)
                .map(|_| QueueState {
                    ring: RxRing::new(cfg.ring_size),
                    app: FluidServer::new(rate),
                    offered: 0,
                    delivered: 0,
                    forwarded: 0,
                    batch_remaining: 0,
                    batch_size: 0,
                    unbatched: 0,
                    batch_hist: Log2Histogram::new(),
                    latency: sim::stats::LatencyStats::new(),
                })
                .collect(),
        }
    }

    fn advance_queue(&mut self, q: usize, now: SimTime) {
        let forward = self.cfg.app.forward;
        let kind = self.kind;
        let qs = &mut self.queues[q];
        let done = qs.app.advance(now);
        qs.delivered += done;
        if forward {
            qs.forwarded += done;
        }
        match kind {
            Type2Kind::Dna => {
                // Per-packet reclaim: every consumed packet re-arms its
                // descriptor immediately.
                qs.ring.rearm(done as usize);
            }
            Type2Kind::Netmap => {
                qs.batch_remaining -= done;
                netmap_sync(qs, now);
            }
        }
    }
}

/// The NIOCRXSYNC point: when the in-flight batch has fully completed,
/// reclaim its descriptors and take the accumulated packets as the next
/// batch. Must run on both the advance path and the arrival path —
/// otherwise an idle-queue arrival would orphan the previous batch's
/// descriptors.
fn netmap_sync(qs: &mut QueueState, now: SimTime) {
    if qs.batch_remaining != 0 {
        return;
    }
    if qs.batch_size > 0 {
        qs.ring.rearm(qs.batch_size as usize);
        qs.batch_size = 0;
    }
    if qs.unbatched > 0 {
        qs.batch_hist.record(qs.unbatched);
        qs.batch_size = qs.unbatched;
        qs.batch_remaining = qs.unbatched;
        qs.app.enqueue(now, qs.unbatched);
        qs.unbatched = 0;
    }
}

impl CaptureEngine for Type2Engine {
    fn name(&self) -> String {
        match self.kind {
            Type2Kind::Dna => "DNA".into(),
            Type2Kind::Netmap => "NETMAP".into(),
        }
    }

    fn queues(&self) -> usize {
        self.queues.len()
    }

    fn on_arrival(&mut self, now: SimTime, queue: usize, _len: u16) {
        self.advance_queue(queue, now);
        let qs = &mut self.queues[queue];
        qs.offered += 1;
        if qs.ring.dma() {
            // Expected wait for this packet: everything already buffered
            // (ring backlog and, for NETMAP, the unswept batch) drains
            // ahead of it at the application rate.
            let ahead = qs.ring.used() as f64;
            let wait_ns = (ahead / qs.app.rate().max(1.0)) * 1e9;
            qs.latency.record(wait_ns as u64);
            match self.kind {
                Type2Kind::Dna => {
                    qs.app.enqueue(now, 1);
                }
                Type2Kind::Netmap => {
                    qs.unbatched += 1;
                    // If the app is idle, the poll returns immediately:
                    // reclaim the finished batch and take the new one.
                    netmap_sync(qs, now);
                }
            }
        }
    }

    fn advance(&mut self, now: SimTime) {
        for q in 0..self.queues.len() {
            self.advance_queue(q, now);
        }
    }

    fn finish(&mut self, after: SimTime) -> SimTime {
        let mut t = after;
        // Iterate sync rounds until every queue is fully drained; each
        // round advances past the longest per-queue drain ETA.
        for _ in 0..1024 {
            let mut busy = false;
            for q in 0..self.queues.len() {
                let qs = &self.queues[q];
                if qs.app.backlog() > 0.0 || qs.unbatched > 0 || qs.ring.used() > 0 {
                    busy = true;
                }
            }
            if !busy {
                return t;
            }
            let step = self
                .queues
                .iter()
                .filter_map(|qs| qs.app.drain_eta())
                .map(SimTime::as_nanos)
                .max()
                .unwrap_or(t.as_nanos())
                .max(t.as_nanos() + 1_000_000);
            t = SimTime(step);
            self.advance(t);
        }
        t
    }

    fn telemetry(&self, queue: usize) -> QueueTelemetry {
        let qs = &self.queues[queue];
        let mut t = QueueTelemetry::empty(queue);
        t.offered_packets = qs.offered;
        t.captured_packets = qs.ring.received();
        t.delivered_packets = qs.delivered;
        t.capture_drop_packets = qs.ring.drops();
        t.forwarded_packets = qs.forwarded;
        t.transmitted_packets = qs.forwarded;
        t.capture_queue_len = qs.unbatched + qs.batch_remaining;
        t.batch_size = qs.batch_hist.snapshot();
        qs.ring.fill_telemetry(&mut t);
        t
    }

    fn copies(&self) -> CopyMeter {
        CopyMeter::default() // Type-II engines are zero-copy.
    }

    fn latency(&self) -> sim::stats::LatencyStats {
        let mut l = sim::stats::LatencyStats::new();
        for qs in &self.queues {
            l.merge(&qs.latency);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::time::SECOND;

    fn burst(engine: &mut Type2Engine, n: u64, start_ns: u64, gap_ns: u64) {
        for i in 0..n {
            engine.on_arrival(SimTime(start_ns + i * gap_ns), 0, 64);
        }
    }

    /// x = 0 (app faster than wire rate): no drops at wire rate — the
    /// paper's Fig. 8 result for DNA and NETMAP.
    #[test]
    fn wire_rate_without_load_is_lossless() {
        for kind in [Type2Kind::Dna, Type2Kind::Netmap] {
            let mut e = Type2Engine::new(kind, 1, EngineConfig::paper(0));
            burst(&mut e, 100_000, 0, 67); // ~14.9 Mp/s
            e.finish(SimTime(100_000 * 67));
            let s = e.queue_stats(0);
            assert_eq!(s.capture_drops, 0, "{kind:?}");
            assert_eq!(s.delivered, 100_000, "{kind:?}");
            assert!(s.is_consistent());
        }
    }

    /// x = 300: a burst beyond the ring size must drop the excess — the
    /// paper's "DNA suffers a 15 % packet drop at P = 6,000".
    #[test]
    fn dna_burst_beyond_ring_drops() {
        let mut e = Type2Engine::new(Type2Kind::Dna, 1, EngineConfig::paper(300));
        burst(&mut e, 6_000, 0, 67);
        e.finish(SimTime(SECOND));
        let s = e.queue_stats(0);
        // 6000 arrive in ~0.4 ms; the app consumes ~16 in that time; ring
        // holds 1024 → ≈ 6000 − 1024 − (consumed during burst) drops.
        let rate = s.capture_drop_rate();
        assert!((0.70..0.90).contains(&rate), "drop rate = {rate}");
        assert!(s.is_consistent());
        assert_eq!(s.delivery_drops, 0);
    }

    /// The paper's Table 1 contrast at queue 3: same offered bursts, NETMAP
    /// drops far more than DNA because descriptors pin until sync.
    #[test]
    fn netmap_drops_more_than_dna_under_bursts() {
        let cfg = EngineConfig::paper(300);
        let mut dna = Type2Engine::new(Type2Kind::Dna, 1, cfg);
        let mut netmap = Type2Engine::new(Type2Kind::Netmap, 1, cfg);
        // A 5000-packet burst at 2× the processing rate: the ring fills
        // gradually, so DNA's per-packet reclaim buys buffering that
        // NETMAP's sync-quantized reclaim cannot (descriptors stay pinned
        // until the whole in-flight batch completes).
        burst(&mut dna, 5_000, 0, 12_872); // ≈ 77.7 k/s
        burst(&mut netmap, 5_000, 0, 12_872);
        dna.finish(SimTime(3 * SECOND));
        netmap.finish(SimTime(3 * SECOND));
        let d = dna.queue_stats(0).capture_drop_rate();
        let n = netmap.queue_stats(0).capture_drop_rate();
        assert!(n > d + 0.02, "netmap {n} vs dna {d}");
        assert!(d > 0.1 && d < 0.5, "dna {d}");
    }

    #[test]
    fn sustained_overload_approaches_asymptote() {
        // λ = 80 k/s against Pp = 38.8 k/s: drop rate → 1 − Pp/λ ≈ 0.51
        // (the paper's queue-0 regime, Table 1).
        let mut e = Type2Engine::new(Type2Kind::Dna, 1, EngineConfig::paper(300));
        let n = 800_000u64; // 10 s at 80 k/s
        burst(&mut e, n, 0, 12_500);
        e.finish(SimTime(20 * SECOND));
        let s = e.queue_stats(0);
        let rate = s.overall_drop_rate();
        assert!((0.45..0.55).contains(&rate), "drop rate = {rate}");
    }

    #[test]
    fn queues_are_independent() {
        let mut e = Type2Engine::new(Type2Kind::Dna, 2, EngineConfig::paper(300));
        burst(&mut e, 5_000, 0, 67); // flood queue 0 only
        e.finish(SimTime(SECOND));
        assert!(e.queue_stats(0).capture_drops > 0);
        assert_eq!(e.queue_stats(1).offered, 0);
        assert_eq!(e.queue_stats(1).capture_drops, 0);
    }

    #[test]
    fn forwarding_counts_processed_packets() {
        let mut e = Type2Engine::new(Type2Kind::Dna, 1, EngineConfig::paper_forwarding(0));
        burst(&mut e, 1000, 0, 1000);
        e.finish(SimTime(SECOND));
        assert_eq!(e.telemetry(0).forwarded_packets, 1000);
        assert_eq!(e.queue_stats(0).delivered, 1000);
    }

    #[test]
    fn type2_is_zero_copy() {
        let mut e = Type2Engine::new(Type2Kind::Netmap, 1, EngineConfig::paper(300));
        burst(&mut e, 10_000, 0, 67);
        e.finish(SimTime(SECOND));
        assert!(e.copies().is_zero_copy());
    }
}
