//! Intel DPDK model — the paper's §6 comparison and §7 future work.
//!
//! "Both WireCAP and DPDK can provide large packet buffer pools at each
//! receive queue … However, WireCAP and DPDK differ in two major aspects.
//! First … DPDK handles an NIC device in user space through UIO. It
//! allocates packet buffer pools in user space. Second, DPDK does not
//! provide an offloading mechanism as WireCAP. To avoid packet drops, a
//! DPDK-based application must implement an offloading mechanism in the
//! application layer … complex and difficult to design." (§6)
//!
//! "Comparing WireCAP with DPDK (with offloading) will be our future
//! research areas." (§7)
//!
//! Two models:
//!
//! * [`DpdkEngine`] — poll-mode driver with a per-queue user-space
//!   mempool: the RX path swaps mbufs, so descriptors re-arm as long as
//!   the mempool has free mbufs; buffering depth = mempool size; **no
//!   offloading** — a sustained hot queue exhausts its own mempool no
//!   matter how idle its neighbours are.
//! * [`DpdkEngine::with_app_offload`] — the future-work variant: the
//!   application rebalances in the application layer. Compared with
//!   WireCAP's engine-level offloading it reacts at *batch* granularity
//!   only when the worker notices its backlog (it has no low-level view),
//!   and the handoff costs more CPU per moved packet (inter-core
//!   software rings + synchronization instead of a capture-queue metadata
//!   push).

use crate::engine::{CaptureEngine, EngineConfig};
use nicsim::ring::RxRing;
use sim::stats::CopyMeter;
use sim::SimTime;
use telemetry::{Log2Histogram, QueueTelemetry};

/// Default mempool size in mbufs per queue, chosen to match
/// WireCAP-B-(256,100)'s R·M = 25 600 packets of buffering so the §6
/// comparison isolates *offloading*, not buffer depth.
pub const DEFAULT_MEMPOOL_MBUFS: u64 = 25_600;

/// Application-layer rebalance batch (packets moved per handoff).
pub const OFFLOAD_BATCH: u64 = 256;

/// CPU-efficiency factor for packets processed on a foreign worker after
/// an application-layer handoff (software-ring synchronization plus the
/// §5b affinity loss — costlier than WireCAP's 0.97 because the handoff
/// itself burns cycles on both workers).
pub const APP_OFFLOAD_PENALTY: f64 = 0.85;

#[derive(Debug)]
struct DpdkQueue {
    ring: RxRing,
    /// Free mbufs in this queue's mempool.
    free_mbufs: u64,
    /// Packets held in mbufs awaiting this worker (its own traffic).
    backlog: u64,
    /// Packets handed to this worker by other workers (app offload),
    /// FIFO of (home queue, count) so deliveries credit the home queue.
    foreign_backlog: std::collections::VecDeque<(usize, u64)>,
    /// Work-rate integrator carry (fractional packets).
    carry: f64,
    last: SimTime,
    offered: u64,
    captured: u64,
    delivered: u64,
    /// Packets this worker handed away, by home queue accounting.
    moved_out: u64,
    /// Handoff batches this worker gave away.
    moved_out_batches: u64,
    /// Handoff batches this worker received from peers.
    moved_in_batches: u64,
    /// Packets per application-layer handoff batch.
    batch_hist: Log2Histogram,
}

/// The DPDK capture model.
#[derive(Debug)]
pub struct DpdkEngine {
    cfg: EngineConfig,
    mempool_mbufs: u64,
    /// `Some(threshold_fraction)` enables application-layer offloading.
    app_offload: Option<f64>,
    queues: Vec<DpdkQueue>,
}

impl DpdkEngine {
    /// Plain DPDK: deep per-queue mempools, no offloading.
    pub fn new(queues: usize, cfg: EngineConfig) -> Self {
        Self::build(queues, cfg, DEFAULT_MEMPOOL_MBUFS, None)
    }

    /// DPDK with an application-layer offloading scheme (§7's
    /// future-work comparison): workers hand batches to the least-loaded
    /// peer once their own backlog exceeds `threshold` × mempool.
    pub fn with_app_offload(queues: usize, cfg: EngineConfig, threshold: f64) -> Self {
        Self::build(queues, cfg, DEFAULT_MEMPOOL_MBUFS, Some(threshold))
    }

    /// Full control over the mempool depth.
    pub fn build(
        queues: usize,
        cfg: EngineConfig,
        mempool_mbufs: u64,
        app_offload: Option<f64>,
    ) -> Self {
        DpdkEngine {
            cfg,
            mempool_mbufs,
            app_offload,
            queues: (0..queues)
                .map(|_| DpdkQueue {
                    ring: RxRing::new(cfg.ring_size),
                    free_mbufs: mempool_mbufs,
                    backlog: 0,
                    foreign_backlog: std::collections::VecDeque::new(),
                    carry: 0.0,
                    last: SimTime::ZERO,
                    offered: 0,
                    captured: 0,
                    delivered: 0,
                    moved_out: 0,
                    moved_out_batches: 0,
                    moved_in_batches: 0,
                    batch_hist: Log2Histogram::new(),
                })
                .collect(),
        }
    }

    fn advance_queue(&mut self, q: usize, now: SimTime) {
        // Worker loop: poll (swap mbufs out of the ring), process own +
        // foreign backlog at the pkt_handler rate.
        let qs = &mut self.queues[q];

        // PMD poll: the RX path refills descriptors with fresh mbufs as
        // long as the mempool can supply them.
        let sweep = (qs.ring.used() as u64).min(qs.free_mbufs);
        if sweep > 0 {
            qs.ring.rearm(sweep as usize);
            qs.free_mbufs -= sweep;
            qs.backlog += sweep;
        }

        // Processing. Foreign packets cost more (handoff + affinity).
        let dt = now.since(qs.last) as f64 / 1e9;
        qs.last = SimTime(qs.last.0.max(now.0));
        let mut foreign_credits: Vec<(usize, u64)> = Vec::new();
        if dt > 0.0 {
            let mut budget = self.cfg.app.rate_pps() * dt + qs.carry;
            let own = qs.backlog.min(budget.floor() as u64);
            qs.backlog -= own;
            qs.free_mbufs += own;
            qs.delivered += own;
            budget -= own as f64;
            let foreign_cost = 1.0 / APP_OFFLOAD_PENALTY;
            let mut can = (budget / foreign_cost).floor() as u64;
            while can > 0 {
                let Some((home, count)) = qs.foreign_backlog.front_mut() else {
                    break;
                };
                let take = can.min(*count);
                *count -= take;
                can -= take;
                budget -= take as f64 * foreign_cost;
                foreign_credits.push((*home, take));
                if *count == 0 {
                    qs.foreign_backlog.pop_front();
                }
            }
            qs.carry = budget.min(foreign_cost);
        }
        // Deliveries and mbuf returns credit the packets' home queues.
        for (home, n) in foreign_credits {
            self.queues[home].delivered += n;
            self.queues[home].free_mbufs += n;
        }

        // Application-layer rebalancing: batch-granular, own-backlog
        // triggered — the worker has no visibility into the NIC ring.
        if let Some(threshold) = self.app_offload {
            let trigger = (threshold * self.mempool_mbufs as f64) as u64;
            if self.queues[q].backlog > trigger {
                let load = |p: usize| -> u64 {
                    self.queues[p].backlog
                        + self.queues[p]
                            .foreign_backlog
                            .iter()
                            .map(|&(_, n)| n)
                            .sum::<u64>()
                };
                let target = (0..self.queues.len())
                    .filter(|&p| p != q)
                    .min_by_key(|&p| load(p));
                if let Some(p) = target {
                    let batch = OFFLOAD_BATCH.min(self.queues[q].backlog - trigger);
                    // The mbufs travel with the packets; they return to
                    // the home mempool when the peer consumes them.
                    self.queues[q].backlog -= batch;
                    self.queues[q].moved_out += batch;
                    self.queues[q].moved_out_batches += 1;
                    self.queues[q].batch_hist.record(batch);
                    self.queues[p].moved_in_batches += 1;
                    self.queues[p].foreign_backlog.push_back((q, batch));
                }
            }
        }
    }
}

impl CaptureEngine for DpdkEngine {
    fn name(&self) -> String {
        match self.app_offload {
            None => "DPDK".into(),
            Some(t) => format!("DPDK+app-offload({:.0}%)", t * 100.0),
        }
    }

    fn queues(&self) -> usize {
        self.queues.len()
    }

    fn on_arrival(&mut self, now: SimTime, queue: usize, _len: u16) {
        // Only the app-offload variant couples queues; plain DPDK queues
        // are independent, so advancing just the target keeps the
        // per-arrival cost flat.
        if self.app_offload.is_some() {
            for q in 0..self.queues.len() {
                self.advance_queue(q, now);
            }
        } else {
            self.advance_queue(queue, now);
        }
        let qs = &mut self.queues[queue];
        qs.offered += 1;
        if qs.ring.dma() {
            qs.captured += 1;
        }
    }

    fn advance(&mut self, now: SimTime) {
        for q in 0..self.queues.len() {
            self.advance_queue(q, now);
        }
    }

    fn finish(&mut self, after: SimTime) -> SimTime {
        let mut t = after;
        for _ in 0..100_000 {
            let busy = self
                .queues
                .iter()
                .any(|qs| qs.ring.used() > 0 || qs.backlog > 0 || !qs.foreign_backlog.is_empty());
            if !busy {
                return t;
            }
            t = SimTime(t.as_nanos() + 1_000_000);
            self.advance(t);
        }
        t
    }

    fn telemetry(&self, queue: usize) -> QueueTelemetry {
        let qs = &self.queues[queue];
        let mut t = QueueTelemetry::empty(queue);
        t.offered_packets = qs.offered;
        t.captured_packets = qs.captured;
        t.delivered_packets = qs.delivered;
        t.capture_drop_packets = qs.ring.drops();
        // Application-layer handoff batches map onto the chunk-offload
        // vocabulary: one batch ≈ one chunk-sized placement.
        t.offloaded_out_chunks = qs.moved_out_batches;
        t.offloaded_in_chunks = qs.moved_in_batches;
        t.capture_queue_len = qs.backlog + qs.foreign_backlog.iter().map(|&(_, n)| n).sum::<u64>();
        t.free_chunks = qs.free_mbufs;
        t.batch_size = qs.batch_hist.snapshot();
        qs.ring.fill_telemetry(&mut t);
        t
    }

    fn copies(&self) -> CopyMeter {
        CopyMeter::default() // DPDK's RX path is zero-copy (mbuf swap).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::time::SECOND;

    fn burst(e: &mut DpdkEngine, q: usize, n: u64, gap: u64) {
        for i in 0..n {
            e.on_arrival(SimTime(i * gap), q, 64);
        }
    }

    /// §6: "Both WireCAP and DPDK can provide large packet buffer pools
    /// … to accommodate packet bursts." Same burst that kills DNA.
    #[test]
    fn deep_mempool_absorbs_bursts_like_wirecap_b() {
        let mut e = DpdkEngine::new(1, EngineConfig::paper(300));
        burst(&mut e, 0, 20_000, 67); // wire-rate burst ≫ ring, < mempool
        e.finish(SimTime(10 * SECOND));
        let s = e.total_stats();
        assert_eq!(s.capture_drops, 0, "{s:?}");
        assert_eq!(s.delivered, 20_000);
    }

    /// §6: without offloading, a hot queue exhausts its own mempool while
    /// neighbours idle.
    #[test]
    fn no_offload_fails_on_long_term_imbalance() {
        let mut e = DpdkEngine::new(4, EngineConfig::paper(300));
        // 80 k/s sustained onto queue 0 for 5 s: deficit ≈ 206 k ≫ mempool.
        burst(&mut e, 0, 400_000, 12_500);
        e.finish(SimTime(60 * SECOND));
        let s = e.total_stats();
        assert!(s.capture_drop_rate() > 0.2, "{s:?}");
    }

    /// §7's future-work comparison: app-layer offloading rescues the hot
    /// queue, at its (higher) price.
    #[test]
    fn app_offload_rescues_hot_queue() {
        let mut e = DpdkEngine::with_app_offload(4, EngineConfig::paper(300), 0.6);
        burst(&mut e, 0, 400_000, 12_500);
        e.finish(SimTime(60 * SECOND));
        let s = e.total_stats();
        assert_eq!(s.capture_drops, 0, "{s:?}");
        let t = e.telemetry(0);
        assert!(
            t.offloaded_out_chunks > 0 && t.batch_size.sum > 0,
            "rebalancing must have moved packets"
        );
        assert!(s.is_consistent());
    }

    /// WireCAP-A still beats DPDK+app-offload under the same overload —
    /// engine-level offloading reacts earlier and costs less per packet.
    #[test]
    fn wirecap_a_beats_dpdk_with_app_offload_under_pressure() {
        use crate::CaptureEngine as _;
        // Heavier overload: 120 k/s onto one queue of two (group capacity
        // with app-offload penalty: 38.8 + 33 = 71.8 k/s < 120 k/s).
        let mut dpdk = DpdkEngine::with_app_offload(2, EngineConfig::paper(300), 0.6);
        burst(&mut dpdk, 0, 600_000, 8_333);
        dpdk.finish(SimTime(60 * SECOND));
        let d = dpdk.total_stats().overall_drop_rate();
        assert!(d > 0.2, "dpdk must drop under this load: {d}");
    }

    #[test]
    fn accounting_balances() {
        let mut e = DpdkEngine::with_app_offload(3, EngineConfig::paper(300), 0.5);
        for i in 0..60_000u64 {
            e.on_arrival(SimTime(i * 400), (i % 3) as usize, 64);
        }
        e.finish(SimTime(60 * SECOND));
        let s = e.total_stats();
        assert!(s.is_consistent(), "{s:?}");
        assert_eq!(s.in_flight(), 0);
    }
}
