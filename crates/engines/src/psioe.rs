//! PSIOE: the PacketShader I/O engine.
//!
//! "PSIOE uses a user-space thread, instead of Linux NAPI polling, to
//! copy packets from receive ring buffers to a consecutive user-level
//! buffer … the copy operation makes little impact on performance …
//! because the user buffer likely resides in CPU cache. … It provides
//! only a limited buffering capability for the incoming packets. PSIOE is
//! not suitable for a heavy-load application." (§6)
//!
//! Model: the application thread itself performs a cheap (cache-resident)
//! per-packet copy before processing, i.e. copy and processing serialize
//! on one core. Buffering is the NIC ring plus one batch-sized user
//! buffer; descriptors re-arm as soon as the batch is copied out.

use crate::engine::{CaptureEngine, EngineConfig};
use nicsim::ring::RxRing;
use sim::stats::CopyMeter;
use sim::{FluidServer, SimTime};
use telemetry::{Log2Histogram, QueueTelemetry};

/// Cycles for the cache-resident copy of one packet into the user buffer.
pub const CACHED_COPY_CYCLES: f64 = 120.0;

/// User-buffer capacity in packets (one PacketShader I/O batch region).
pub const USER_BUFFER_SLOTS: u64 = 4096;

#[derive(Debug)]
struct PsQueue {
    ring: RxRing,
    /// Combined copy+process server (both run on the app core).
    app: FluidServer,
    /// Packets copied into the user buffer, not yet processed.
    user_buf: u64,
    offered: u64,
    delivered: u64,
    copied_packets: u64,
    copied_bytes: u64,
    /// Packets per ring→user-buffer copy batch.
    batch_hist: Log2Histogram,
}

/// The PacketShader I/O engine model.
#[derive(Debug)]
pub struct PsioeEngine {
    queues: Vec<PsQueue>,
}

impl PsioeEngine {
    /// Creates an engine with `queues` receive queues.
    pub fn new(queues: usize, cfg: EngineConfig) -> Self {
        // Serial per-packet cost: cached copy + pkt_handler processing.
        let copy_ns = CACHED_COPY_CYCLES / cfg.app.cpu.freq_ghz;
        let proc_ns = 1e9 / cfg.app.rate_pps();
        let rate = 1e9 / (copy_ns + proc_ns);
        PsioeEngine {
            queues: (0..queues)
                .map(|_| PsQueue {
                    ring: RxRing::new(cfg.ring_size),
                    app: FluidServer::new(rate),
                    user_buf: 0,
                    offered: 0,
                    delivered: 0,
                    copied_packets: 0,
                    copied_bytes: 0,
                    batch_hist: Log2Histogram::new(),
                })
                .collect(),
        }
    }

    fn advance_queue(&mut self, q: usize, now: SimTime) {
        let qs = &mut self.queues[q];
        let done = qs.app.advance(now);
        qs.delivered += done;
        qs.user_buf -= done;
        // Copy the next batch out of the ring whenever the user buffer
        // has room; the copied descriptors re-arm immediately.
        let room = USER_BUFFER_SLOTS - qs.user_buf;
        let batch = (qs.ring.used() as u64).min(room);
        if batch > 0 {
            qs.batch_hist.record(batch);
            qs.ring.rearm(batch as usize);
            qs.user_buf += batch;
            qs.app.enqueue(now, batch);
            qs.copied_packets += batch;
            qs.copied_bytes += batch * 60; // 64-byte wire frames sans FCS
        }
    }
}

impl CaptureEngine for PsioeEngine {
    fn name(&self) -> String {
        "PSIOE".into()
    }

    fn queues(&self) -> usize {
        self.queues.len()
    }

    fn on_arrival(&mut self, now: SimTime, queue: usize, _len: u16) {
        self.advance_queue(queue, now);
        let qs = &mut self.queues[queue];
        qs.offered += 1;
        qs.ring.dma();
        self.advance_queue(queue, now);
    }

    fn advance(&mut self, now: SimTime) {
        for q in 0..self.queues.len() {
            self.advance_queue(q, now);
        }
    }

    fn finish(&mut self, after: SimTime) -> SimTime {
        let mut t = after;
        for _ in 0..4096 {
            let busy = self
                .queues
                .iter()
                .any(|qs| qs.ring.used() > 0 || qs.user_buf > 0);
            if !busy {
                return t;
            }
            t = SimTime(t.as_nanos() + 10_000_000);
            self.advance(t);
        }
        t
    }

    fn telemetry(&self, queue: usize) -> QueueTelemetry {
        let qs = &self.queues[queue];
        let mut t = QueueTelemetry::empty(queue);
        t.offered_packets = qs.offered;
        t.captured_packets = qs.ring.received();
        t.delivered_packets = qs.delivered;
        t.capture_drop_packets = qs.ring.drops();
        // The one-batch user buffer plays the capture-queue role.
        t.capture_queue_len = qs.user_buf;
        t.free_chunks = USER_BUFFER_SLOTS - qs.user_buf;
        t.batch_size = qs.batch_hist.snapshot();
        qs.ring.fill_telemetry(&mut t);
        t
    }

    fn copies(&self) -> CopyMeter {
        let mut m = CopyMeter::default();
        for qs in &self.queues {
            m.record(qs.copied_packets, qs.copied_bytes);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::time::SECOND;

    fn drive(e: &mut PsioeEngine, n: u64, gap_ns: u64) {
        for i in 0..n {
            e.on_arrival(SimTime(i * gap_ns), 0, 64);
        }
        e.finish(SimTime(n * gap_ns + SECOND));
    }

    #[test]
    fn high_throughput_with_light_app() {
        // x = 0: the cached copy barely dents throughput (the paper's
        // PacketShader observation).
        let mut e = PsioeEngine::new(1, EngineConfig::paper(0));
        drive(&mut e, 200_000, 100); // 10 Mp/s
        let s = e.total_stats();
        assert_eq!(s.overall_drop_rate(), 0.0);
    }

    #[test]
    fn limited_buffering_under_heavy_load() {
        // x = 300: buffering is ring + user buffer ≈ 5k packets, far less
        // than WireCAP pools — "not suitable for a heavy-load application".
        let mut e = PsioeEngine::new(1, EngineConfig::paper(300));
        drive(&mut e, 50_000, 67); // wire-rate burst of 50k
        let s = e.total_stats();
        assert!(
            s.capture_drop_rate() > 0.5,
            "rate {}",
            s.capture_drop_rate()
        );
    }

    #[test]
    fn copies_are_metered() {
        let mut e = PsioeEngine::new(1, EngineConfig::paper(300));
        drive(&mut e, 1_000, 1_000_000);
        assert_eq!(e.copies().packets, 1_000);
        assert_eq!(e.total_stats().delivered, 1_000);
    }
}
