//! PF_PACKET: the stock kernel raw-socket capture path.
//!
//! "The protocol stack of a general purpose OS can provide standard
//! packet capture services through raw sockets (e.g., PF_PACKET). …
//! research \[9\] shows that the performance is inadequate for packet
//! capture in high-speed networks. … because PF_PACKET's performance is
//! too poor compared with these packet capture engines, we do not include
//! PF_PACKET in our experiments." (§2.1, §6)
//!
//! Modeled for completeness (and to let the examples show *why* the paper
//! excludes it): same two-stage shape as PF_RING but with the full
//! sk_buff allocation + protocol-stack traversal + copy-to-user cost per
//! packet, and a small socket receive buffer.

use crate::engine::{CaptureEngine, EngineConfig};
use crate::pf_ring::PfRingEngine;
use sim::stats::CopyMeter;
use sim::SimTime;
use telemetry::QueueTelemetry;

/// Effective socket receive-buffer capacity in packets (212992-byte
/// default rmem over ~750-byte truesize for small frames).
pub const SOCKET_BUFFER_SLOTS: u64 = 284;

/// A PF_PACKET (raw socket) capture model.
///
/// Internally reuses the Type-I two-stage machinery with the stack's much
/// higher per-packet kernel cost — expressed by scaling the modeled CPU
/// down for the copy stage — and the small socket buffer.
#[derive(Debug)]
pub struct PfPacketEngine {
    inner: PfRingEngine,
}

/// Ratio of the raw-socket kernel path cost to PF_RING's NAPI copy cost
/// (sk_buff alloc, stack traversal, syscall wakeups ≈ 1800 vs 450 cycles).
const STACK_COST_RATIO: f64 = 4.0;

impl PfPacketEngine {
    /// Creates a PF_PACKET model with `queues` receive queues.
    pub fn new(queues: usize, cfg: EngineConfig) -> Self {
        // Scale the modeled CPU down by the stack-cost ratio. This slows
        // both stages, which is faithful: the kernel stage pays the full
        // stack traversal, and the application reads through recvfrom()
        // syscalls instead of a memory-mapped ring.
        let mut slow = cfg;
        slow.app.cpu = sim::CpuModel::new(cfg.app.cpu.freq_ghz / STACK_COST_RATIO);
        PfPacketEngine {
            inner: PfRingEngine::with_pf_slots(queues, slow, SOCKET_BUFFER_SLOTS),
        }
    }
}

impl CaptureEngine for PfPacketEngine {
    fn name(&self) -> String {
        "PF_PACKET".into()
    }

    fn queues(&self) -> usize {
        self.inner.queues()
    }

    fn on_arrival(&mut self, now: SimTime, queue: usize, len: u16) {
        self.inner.on_arrival(now, queue, len);
    }

    fn advance(&mut self, now: SimTime) {
        self.inner.advance(now);
    }

    fn finish(&mut self, after: SimTime) -> SimTime {
        self.inner.finish(after)
    }

    fn telemetry(&self, queue: usize) -> QueueTelemetry {
        self.inner.telemetry(queue)
    }

    fn copies(&self) -> CopyMeter {
        self.inner.copies()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf_ring::PfRingEngine;
    use sim::time::SECOND;

    fn drive(e: &mut dyn CaptureEngine, n: u64, gap_ns: u64) {
        for i in 0..n {
            e.on_arrival(SimTime(i * gap_ns), 0, 64);
        }
        e.finish(SimTime(n * gap_ns + SECOND));
    }

    #[test]
    fn much_worse_than_pf_ring_at_high_rate() {
        let mut pfp = PfPacketEngine::new(1, EngineConfig::paper(0));
        let mut pfr = PfRingEngine::new(1, EngineConfig::paper(0));
        drive(&mut pfp, 100_000, 200); // 5 Mp/s
        drive(&mut pfr, 100_000, 200);
        let p = pfp.total_stats().overall_drop_rate();
        let r = pfr.total_stats().overall_drop_rate();
        assert!(p > r + 0.2, "pf_packet {p} vs pf_ring {r}");
    }

    #[test]
    fn keeps_up_at_low_rate() {
        // The stack-slowed pkt_handler sustains ~9.7 k/s at x = 300; at
        // 5 k/s PF_PACKET is lossless.
        let mut pfp = PfPacketEngine::new(1, EngineConfig::paper(300));
        drive(&mut pfp, 25_000, 200_000); // 5 k/s
        let s = pfp.total_stats();
        assert_eq!(s.overall_drop_rate(), 0.0);
        assert_eq!(s.delivered, 25_000);
    }

    #[test]
    fn copies_every_delivered_packet() {
        let mut pfp = PfPacketEngine::new(1, EngineConfig::paper(300));
        drive(&mut pfp, 10_000, 100_000);
        assert!(pfp.copies().packets >= 10_000);
    }
}
