//! End-to-end compiler tests: expression string → program → VM verdict.

use bpf::Filter;
use netproto::{FlowKey, PacketBuilder, Protocol};
use std::net::Ipv4Addr;

fn pkt(flow: &FlowKey, len: usize) -> Vec<u8> {
    PacketBuilder::new().build(flow, len).unwrap()
}

fn udp(src: &str, sport: u16, dst: &str, dport: u16) -> FlowKey {
    FlowKey::udp(src.parse().unwrap(), sport, dst.parse().unwrap(), dport)
}

fn tcp(src: &str, sport: u16, dst: &str, dport: u16) -> FlowKey {
    FlowKey::tcp(src.parse().unwrap(), sport, dst.parse().unwrap(), dport)
}

#[test]
fn paper_filter_matches_fermilab_udp() {
    // The filter used by the paper's pkt_handler: "131.225.2 and UDP".
    let f = Filter::compile("131.225.2 and UDP").unwrap();
    assert!(f.matches(&pkt(&udp("131.225.2.45", 9000, "8.8.8.8", 53), 64)));
    assert!(f.matches(&pkt(&udp("8.8.8.8", 53, "131.225.2.45", 9000), 64)));
    assert!(!f.matches(&pkt(&tcp("131.225.2.45", 9000, "8.8.8.8", 53), 64)));
    assert!(!f.matches(&pkt(&udp("131.225.3.45", 9000, "8.8.8.8", 53), 64)));
}

#[test]
fn host_filter() {
    let f = Filter::compile("host 10.0.0.1").unwrap();
    assert!(f.matches(&pkt(&udp("10.0.0.1", 1, "10.0.0.2", 2), 64)));
    assert!(f.matches(&pkt(&udp("10.0.0.3", 1, "10.0.0.1", 2), 64)));
    assert!(!f.matches(&pkt(&udp("10.0.0.3", 1, "10.0.0.2", 2), 64)));
}

#[test]
fn src_dst_port_filters() {
    let f = Filter::compile("src port 53").unwrap();
    assert!(f.matches(&pkt(&udp("1.1.1.1", 53, "2.2.2.2", 9999), 64)));
    assert!(!f.matches(&pkt(&udp("1.1.1.1", 9999, "2.2.2.2", 53), 64)));

    let f = Filter::compile("dst port 53").unwrap();
    assert!(!f.matches(&pkt(&udp("1.1.1.1", 53, "2.2.2.2", 9999), 64)));
    assert!(f.matches(&pkt(&udp("1.1.1.1", 9999, "2.2.2.2", 53), 64)));
}

#[test]
fn port_matches_tcp_and_udp() {
    let f = Filter::compile("port 80").unwrap();
    assert!(f.matches(&pkt(&tcp("1.1.1.1", 80, "2.2.2.2", 9), 64)));
    assert!(f.matches(&pkt(&udp("1.1.1.1", 9, "2.2.2.2", 80), 64)));
}

#[test]
fn proto_primitives() {
    let t = pkt(&tcp("1.1.1.1", 1, "2.2.2.2", 2), 64);
    let u = pkt(&udp("1.1.1.1", 1, "2.2.2.2", 2), 64);
    assert!(Filter::compile("tcp").unwrap().matches(&t));
    assert!(!Filter::compile("tcp").unwrap().matches(&u));
    assert!(Filter::compile("udp").unwrap().matches(&u));
    assert!(Filter::compile("ip").unwrap().matches(&t));
    assert!(!Filter::compile("arp").unwrap().matches(&t));
    assert!(!Filter::compile("ip6").unwrap().matches(&t));
}

#[test]
fn boolean_combinations() {
    let u = pkt(&udp("131.225.2.1", 53, "9.9.9.9", 53), 64);
    let t = pkt(&tcp("131.225.2.1", 80, "9.9.9.9", 80), 64);
    assert!(Filter::compile("udp or tcp").unwrap().matches(&u));
    assert!(Filter::compile("udp or tcp").unwrap().matches(&t));
    assert!(!Filter::compile("udp and tcp").unwrap().matches(&t));
    assert!(Filter::compile("not udp").unwrap().matches(&t));
    assert!(!Filter::compile("not udp").unwrap().matches(&u));
    assert!(Filter::compile("(udp or tcp) and 131.225.2")
        .unwrap()
        .matches(&u));
    assert!(!Filter::compile("(udp or tcp) and 131.225.3")
        .unwrap()
        .matches(&u));
}

#[test]
fn length_filters() {
    let small = pkt(&udp("1.1.1.1", 1, "2.2.2.2", 2), 64);
    let big = pkt(&udp("1.1.1.1", 1, "2.2.2.2", 2), 1500);
    let less = Filter::compile("less 100").unwrap();
    let greater = Filter::compile("greater 100").unwrap();
    assert!(less.matches(&small));
    assert!(!less.matches(&big));
    assert!(greater.matches(&big));
    assert!(!greater.matches(&small));
}

#[test]
fn icmp_and_proto_number() {
    let other = FlowKey {
        src_ip: Ipv4Addr::new(1, 2, 3, 4),
        dst_ip: Ipv4Addr::new(5, 6, 7, 8),
        src_port: 0,
        dst_port: 0,
        proto: Protocol::Other(1),
    };
    let p = pkt(&other, 64);
    assert!(Filter::compile("icmp").unwrap().matches(&p));
    assert!(Filter::compile("proto 1").unwrap().matches(&p));
    assert!(!Filter::compile("proto 47").unwrap().matches(&p));
}

#[test]
fn compiled_program_is_verifier_clean_and_compact() {
    let f = Filter::compile("(src net 131.225.0.0/16 and udp) or (dst port 443 and tcp)").unwrap();
    // Round-trips through the raw encoding too.
    let raw = bpf::insn::encode_program(f.program());
    let back = bpf::insn::decode_program(&raw).unwrap();
    assert_eq!(&back, f.program());
    assert!(f.program().len() < 64, "program unexpectedly large");
}

#[test]
fn accept_len_is_tcpdump_compatible() {
    let f = Filter::compile("ip").unwrap();
    let p = pkt(&udp("1.1.1.1", 1, "2.2.2.2", 2), 64);
    assert_eq!(f.run(&p), 262_144);
}

#[test]
fn truncated_packets_reject_under_not() {
    // Classic-BPF semantics: a load past the end rejects even under `not`.
    let f = Filter::compile("not host 10.0.0.1").unwrap();
    let mut tiny = vec![0u8; 14];
    tiny[12] = 0x08; // IPv4 ethertype, but no IP header present
    assert!(!f.matches(&tiny));
}
