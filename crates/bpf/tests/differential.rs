//! Differential property tests: for random expressions and random packets,
//! the compiled program run on the VM must agree with the reference AST
//! evaluator — including the out-of-bounds-rejects semantics.

use bpf::ast::{Dir, Expr, Prim};
use bpf::{compiler, verifier, Vm};
use netproto::{FlowKey, PacketBuilder, Protocol};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_dir() -> impl Strategy<Value = Dir> {
    prop_oneof![Just(Dir::Src), Just(Dir::Dst), Just(Dir::Either)]
}

fn arb_prim() -> impl Strategy<Value = Prim> {
    prop_oneof![
        (arb_dir(), any::<u32>()).prop_map(|(d, ip)| Prim::Host(d, Ipv4Addr::from(ip))),
        (arb_dir(), any::<u32>(), 0u32..=32).prop_map(|(d, ip, len)| {
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            Prim::Net(d, ip & mask, mask)
        }),
        (arb_dir(), any::<u16>()).prop_map(|(d, p)| Prim::Port(d, p)),
        prop_oneof![Just(0x0800u16), Just(0x0806), Just(0x86dd), Just(0x1234)]
            .prop_map(Prim::EtherProto),
        any::<u8>().prop_map(Prim::IpProto),
        (0u32..2000).prop_map(Prim::LenLess),
        (0u32..2000).prop_map(Prim::LenGreater),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = arb_prim().prop_map(Expr::Prim);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.prop_map(Expr::not),
        ]
    })
}

/// Packets biased toward the interesting subspace: addresses drawn from a
/// few prefixes (including the paper's 131.225/16), common ports, both
/// protocols, plus occasional raw-garbage and truncated buffers.
fn arb_packet() -> impl Strategy<Value = Vec<u8>> {
    let structured = (
        prop_oneof![
            Just([131u8, 225, 2]),
            Just([131, 225, 9]),
            Just([10, 0, 0]),
            Just([192, 168, 1])
        ],
        any::<u8>(),
        prop_oneof![Just([131u8, 225, 2]), Just([8, 8, 8]), Just([10, 0, 0])],
        any::<u8>(),
        prop_oneof![Just(53u16), Just(80), Just(443), any::<u16>()],
        prop_oneof![Just(53u16), Just(80), Just(443), any::<u16>()],
        prop_oneof![
            Just(Protocol::Udp),
            Just(Protocol::Tcp),
            Just(Protocol::Other(1))
        ],
        64usize..600,
    )
        .prop_map(|(sp, s4, dp, d4, sport, dport, proto, len)| {
            let flow = FlowKey {
                src_ip: Ipv4Addr::new(sp[0], sp[1], sp[2], s4),
                dst_ip: Ipv4Addr::new(dp[0], dp[1], dp[2], d4),
                src_port: sport,
                dst_port: dport,
                proto,
            };
            PacketBuilder::new().build(&flow, len).unwrap()
        });
    let garbage = proptest::collection::vec(any::<u8>(), 0..128);
    let truncated = structured
        .clone()
        .prop_flat_map(|p| (0..=p.len(), Just(p)).prop_map(|(n, p)| p[..n].to_vec()));
    prop_oneof![
        4 => structured,
        1 => garbage,
        1 => truncated,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compiled_vm_agrees_with_reference(expr in arb_expr(), pkt in arb_packet()) {
        let prog = compiler::compile(&expr);
        prop_assert!(verifier::verify(&prog).is_ok(), "verifier rejected: {prog:?}");
        let vm_accepts = Vm::new(&prog).run(&pkt) > 0;
        let ref_accepts = expr.matches(&pkt);
        prop_assert_eq!(vm_accepts, ref_accepts,
            "disagreement on expr {:?} (program {:?})", expr, prog);
    }

    #[test]
    fn encode_decode_roundtrip(expr in arb_expr()) {
        let prog = compiler::compile(&expr);
        let raw = bpf::insn::encode_program(&prog);
        prop_assert_eq!(bpf::insn::decode_program(&raw), Some(prog));
    }

    #[test]
    fn optimizer_preserves_semantics(expr in arb_expr(), pkt in arb_packet()) {
        let prog = compiler::compile(&expr);
        let opt = bpf::opt::optimize(&prog);
        prop_assert!(verifier::verify(&opt).is_ok(), "verifier rejected optimized: {opt:?}");
        prop_assert!(opt.len() <= prog.len());
        prop_assert_eq!(
            Vm::new(&prog).run(&pkt),
            Vm::new(&opt).run(&pkt),
            "optimizer changed behaviour for {:?}", expr
        );
    }

    #[test]
    fn double_negation_is_identity(expr in arb_expr(), pkt in arb_packet()) {
        let once = compiler::compile(&expr);
        let twice = compiler::compile(&Expr::not(Expr::not(expr)));
        let a = Vm::new(&once).run(&pkt) > 0;
        let b = Vm::new(&twice).run(&pkt) > 0;
        prop_assert_eq!(a, b);
    }
}
