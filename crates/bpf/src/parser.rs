//! Recursive-descent parser for the tcpdump-subset grammar.
//!
//! ```text
//! expr      := term (("or" | "||") term)*
//! term      := factor (("and" | "&&") factor)*
//! factor    := ("not" | "!") factor | "(" expr ")" | primitive
//! primitive := [dir] "host" dotted
//!            | [dir] "net" dotted ["/" num]
//!            | [dir] "port" num
//!            | [dir] dotted            -- bare address: host or net
//!            | "ip" | "ip6" | "arp" | "icmp"
//!            | ("tcp" | "udp") [[dir] "port" num]
//!            | "proto" num
//!            | "less" num | "greater" num
//! dir       := "src" | "dst"
//! ```
//!
//! A bare dotted value follows tcpdump's convention: four octets mean
//! `host`, fewer mean a `net` prefix (one octet /8, two /16, three /24) —
//! this is what makes the paper's own filter string `131.225.2 and UDP`
//! parse as "net 131.225.2.0/24 and udp".

use crate::ast::{Dir, Expr, Prim, ETH_ARP, ETH_IP, ETH_IP6};
use crate::lexer::{lex, Token};
use crate::Error;
use std::net::Ipv4Addr;

/// Parses an expression string into an AST.
pub fn parse(input: &str) -> Result<Expr, Error> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(Error::Parse(format!(
            "trailing tokens starting at {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if matches!(self.peek(), Some(Token::Word(s)) if s == w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.term()?;
        loop {
            let is_or = match self.peek() {
                Some(Token::Word(w)) if w == "or" => true,
                Some(Token::OrOp) => true,
                _ => false,
            };
            if !is_or {
                return Ok(lhs);
            }
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::or(lhs, rhs);
        }
    }

    fn term(&mut self) -> Result<Expr, Error> {
        let mut lhs = self.factor()?;
        loop {
            let is_and = match self.peek() {
                Some(Token::Word(w)) if w == "and" => true,
                Some(Token::AndOp) => true,
                _ => false,
            };
            if !is_and {
                return Ok(lhs);
            }
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::and(lhs, rhs);
        }
    }

    fn factor(&mut self) -> Result<Expr, Error> {
        match self.peek() {
            Some(Token::NotOp) => {
                self.pos += 1;
                Ok(Expr::not(self.factor()?))
            }
            Some(Token::Word(w)) if w == "not" => {
                self.pos += 1;
                Ok(Expr::not(self.factor()?))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                match self.next() {
                    Some(Token::RParen) => Ok(e),
                    other => Err(Error::Parse(format!("expected ')', found {other:?}"))),
                }
            }
            _ => self.primitive(),
        }
    }

    fn primitive(&mut self) -> Result<Expr, Error> {
        let dir = if self.eat_word("src") {
            Dir::Src
        } else if self.eat_word("dst") {
            Dir::Dst
        } else {
            Dir::Either
        };
        let explicit_dir = dir != Dir::Either;

        match self.next() {
            Some(Token::Word(w)) => match w.as_str() {
                "host" => {
                    let octets = self.dotted()?;
                    self.host_or_net(dir, octets, false)
                }
                "net" => {
                    let octets = self.dotted()?;
                    self.host_or_net(dir, octets, true)
                }
                "port" => match self.next() {
                    Some(Token::Num(n)) if n <= 65535 => Ok(Expr::Prim(Prim::Port(dir, n as u16))),
                    other => Err(Error::Parse(format!(
                        "expected port number, found {other:?}"
                    ))),
                },
                "ip" if !explicit_dir => Ok(Expr::Prim(Prim::EtherProto(ETH_IP))),
                "ip6" if !explicit_dir => Ok(Expr::Prim(Prim::EtherProto(ETH_IP6))),
                "arp" if !explicit_dir => Ok(Expr::Prim(Prim::EtherProto(ETH_ARP))),
                // `tcp`/`udp` optionally qualify a following port
                // primitive: `tcp port 80` ≡ `tcp and port 80`, as in
                // tcpdump.
                "tcp" if !explicit_dir => Ok(self.proto_qualified(6)?),
                "udp" if !explicit_dir => Ok(self.proto_qualified(17)?),
                "icmp" if !explicit_dir => Ok(Expr::Prim(Prim::IpProto(1))),
                "proto" if !explicit_dir => match self.next() {
                    Some(Token::Num(n)) if n <= 255 => Ok(Expr::Prim(Prim::IpProto(n as u8))),
                    other => Err(Error::Parse(format!(
                        "expected protocol number, found {other:?}"
                    ))),
                },
                "less" if !explicit_dir => match self.next() {
                    Some(Token::Num(n)) => Ok(Expr::Prim(Prim::LenLess(n))),
                    other => Err(Error::Parse(format!("expected length, found {other:?}"))),
                },
                "greater" if !explicit_dir => match self.next() {
                    Some(Token::Num(n)) => Ok(Expr::Prim(Prim::LenGreater(n))),
                    other => Err(Error::Parse(format!("expected length, found {other:?}"))),
                },
                other => Err(Error::Parse(format!("unknown primitive {other:?}"))),
            },
            // Bare dotted value: host (4 octets) or net prefix (1–3).
            Some(Token::Dotted(octets)) => {
                let as_net = octets_net(&octets);
                self.host_or_net(dir, octets, as_net)
            }
            other => Err(Error::Parse(format!("expected primitive, found {other:?}"))),
        }
    }

    /// Parses the optional `[src|dst] port N` suffix after a protocol
    /// keyword, desugaring `tcp port 80` to `tcp and port 80`.
    fn proto_qualified(&mut self, proto: u8) -> Result<Expr, Error> {
        let base = Expr::Prim(Prim::IpProto(proto));
        let dir = if matches!(self.peek(), Some(Token::Word(w)) if w == "src")
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Word(w)) if w == "port")
        {
            self.pos += 1;
            Some(Dir::Src)
        } else if matches!(self.peek(), Some(Token::Word(w)) if w == "dst")
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Word(w)) if w == "port")
        {
            self.pos += 1;
            Some(Dir::Dst)
        } else if matches!(self.peek(), Some(Token::Word(w)) if w == "port") {
            Some(Dir::Either)
        } else {
            None
        };
        let Some(dir) = dir else {
            return Ok(base);
        };
        self.pos += 1; // consume "port"
        match self.next() {
            Some(Token::Num(n)) if n <= 65535 => {
                Ok(Expr::and(base, Expr::Prim(Prim::Port(dir, n as u16))))
            }
            other => Err(Error::Parse(format!(
                "expected port number, found {other:?}"
            ))),
        }
    }

    fn dotted(&mut self) -> Result<Vec<u8>, Error> {
        match self.next() {
            Some(Token::Dotted(o)) => Ok(o),
            other => Err(Error::Parse(format!("expected address, found {other:?}"))),
        }
    }

    /// Builds a Host or Net primitive from octets, honoring an optional
    /// `/len` suffix.
    fn host_or_net(&mut self, dir: Dir, octets: Vec<u8>, as_net: bool) -> Result<Expr, Error> {
        let mut full = [0u8; 4];
        full[..octets.len()].copy_from_slice(&octets);
        let addr = u32::from_be_bytes(full);

        // Optional /len
        let prefix_len = if matches!(self.peek(), Some(Token::Slash)) {
            self.pos += 1;
            match self.next() {
                Some(Token::Num(n)) if n <= 32 => Some(n),
                other => {
                    return Err(Error::Parse(format!(
                        "expected prefix length 0..=32, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        match prefix_len {
            Some(len) => {
                let mask = prefix_mask(len);
                Ok(Expr::Prim(Prim::Net(dir, addr & mask, mask)))
            }
            None if as_net || octets.len() < 4 => {
                let mask = prefix_mask(8 * octets.len() as u32);
                Ok(Expr::Prim(Prim::Net(dir, addr & mask, mask)))
            }
            None => Ok(Expr::Prim(Prim::Host(dir, Ipv4Addr::from(addr)))),
        }
    }
}

fn octets_net(octets: &[u8]) -> bool {
    octets.len() < 4
}

fn prefix_mask(len: u32) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_filter() {
        // `131.225.2 and UDP` => net 131.225.2.0/24 and ip proto udp
        let e = parse("131.225.2 and UDP").unwrap();
        assert_eq!(
            e,
            Expr::and(
                Expr::Prim(Prim::Net(Dir::Either, 0x83e1_0200, 0xffff_ff00)),
                Expr::Prim(Prim::IpProto(17)),
            )
        );
    }

    #[test]
    fn bare_full_ip_is_host() {
        let e = parse("10.1.2.3").unwrap();
        assert_eq!(
            e,
            Expr::Prim(Prim::Host(Dir::Either, "10.1.2.3".parse().unwrap()))
        );
    }

    #[test]
    fn cidr_net() {
        let e = parse("net 192.168.0.0/16").unwrap();
        assert_eq!(
            e,
            Expr::Prim(Prim::Net(Dir::Either, 0xc0a8_0000, 0xffff_0000))
        );
    }

    #[test]
    fn net_addr_is_pre_masked() {
        let e = parse("net 192.168.55.55/16").unwrap();
        assert_eq!(
            e,
            Expr::Prim(Prim::Net(Dir::Either, 0xc0a8_0000, 0xffff_0000))
        );
    }

    #[test]
    fn direction_qualifiers() {
        assert_eq!(
            parse("src host 1.2.3.4").unwrap(),
            Expr::Prim(Prim::Host(Dir::Src, "1.2.3.4".parse().unwrap()))
        );
        assert_eq!(
            parse("dst port 80").unwrap(),
            Expr::Prim(Prim::Port(Dir::Dst, 80))
        );
        // bare address with direction
        assert_eq!(
            parse("src 1.2.3.4").unwrap(),
            Expr::Prim(Prim::Host(Dir::Src, "1.2.3.4".parse().unwrap()))
        );
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = parse("tcp or udp and port 53").unwrap();
        assert_eq!(
            e,
            Expr::or(
                Expr::Prim(Prim::IpProto(6)),
                Expr::and(
                    Expr::Prim(Prim::IpProto(17)),
                    Expr::Prim(Prim::Port(Dir::Either, 53))
                ),
            )
        );
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse("(tcp or udp) and port 53").unwrap();
        assert_eq!(
            e,
            Expr::and(
                Expr::or(Expr::Prim(Prim::IpProto(6)), Expr::Prim(Prim::IpProto(17))),
                Expr::Prim(Prim::Port(Dir::Either, 53)),
            )
        );
    }

    #[test]
    fn not_and_symbolic_operators() {
        let e = parse("!(tcp) && udp || arp").unwrap();
        assert_eq!(
            e,
            Expr::or(
                Expr::and(
                    Expr::not(Expr::Prim(Prim::IpProto(6))),
                    Expr::Prim(Prim::IpProto(17))
                ),
                Expr::Prim(Prim::EtherProto(ETH_ARP)),
            )
        );
    }

    #[test]
    fn length_primitives() {
        assert_eq!(parse("less 128").unwrap(), Expr::Prim(Prim::LenLess(128)));
        assert_eq!(
            parse("greater 1000").unwrap(),
            Expr::Prim(Prim::LenGreater(1000))
        );
    }

    #[test]
    fn proto_number() {
        assert_eq!(parse("proto 47").unwrap(), Expr::Prim(Prim::IpProto(47)));
    }

    #[test]
    fn proto_qualified_ports() {
        assert_eq!(
            parse("tcp port 80").unwrap(),
            Expr::and(
                Expr::Prim(Prim::IpProto(6)),
                Expr::Prim(Prim::Port(Dir::Either, 80))
            )
        );
        assert_eq!(
            parse("udp dst port 53").unwrap(),
            Expr::and(
                Expr::Prim(Prim::IpProto(17)),
                Expr::Prim(Prim::Port(Dir::Dst, 53))
            )
        );
        assert_eq!(
            parse("tcp src port 22 and 131.225.2").unwrap(),
            Expr::and(
                Expr::and(
                    Expr::Prim(Prim::IpProto(6)),
                    Expr::Prim(Prim::Port(Dir::Src, 22))
                ),
                Expr::Prim(Prim::Net(Dir::Either, 0x83e1_0200, 0xffff_ff00)),
            )
        );
        // Bare `tcp` still parses, including before `and`.
        assert_eq!(
            parse("tcp and port 80").unwrap(),
            parse("tcp port 80").unwrap()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("host").is_err());
        assert!(parse("port 99999").is_err());
        assert!(parse("tcp udp").is_err());
        assert!(parse("(tcp").is_err());
        assert!(parse("net 1.2.3.4/33").is_err());
        assert!(parse("src tcp").is_err());
        assert!(parse("frobnicate 5").is_err());
    }
}
