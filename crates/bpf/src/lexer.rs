//! Tokenizer for the filter expression grammar.

use crate::Error;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A keyword or identifier (`host`, `udp`, …) — lowercased, because
    /// the paper itself writes `"131.225.2 and UDP"`.
    Word(String),
    /// A decimal number.
    Num(u32),
    /// A dotted value like `131.225.2` or `10.0.0.1`; octet values with
    /// their count (1–4 octets).
    Dotted(Vec<u8>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `/` (CIDR length separator)
    Slash,
    /// `&&`
    AndOp,
    /// `||`
    OrOp,
    /// `!`
    NotOp,
}

/// Tokenizes an expression.
pub fn lex(input: &str) -> Result<Vec<Token>, Error> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '!' => {
                out.push(Token::NotOp);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push(Token::AndOp);
                    i += 2;
                } else {
                    return Err(Error::Lex {
                        at: i,
                        msg: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::OrOp);
                    i += 2;
                } else {
                    return Err(Error::Lex {
                        at: i,
                        msg: "expected '||'".into(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &input[start..i];
                out.push(parse_numeric(text, start)?);
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                out.push(Token::Word(input[start..i].to_ascii_lowercase()));
            }
            _ => {
                return Err(Error::Lex {
                    at: i,
                    msg: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn parse_numeric(text: &str, at: usize) -> Result<Token, Error> {
    if text.contains('.') {
        if text.ends_with('.') || text.contains("..") {
            return Err(Error::Lex {
                at,
                msg: format!("malformed dotted value {text:?}"),
            });
        }
        let octets: Result<Vec<u8>, _> = text.split('.').map(str::parse::<u8>).collect();
        match octets {
            Ok(o) if (1..=4).contains(&o.len()) => Ok(Token::Dotted(o)),
            _ => Err(Error::Lex {
                at,
                msg: format!("malformed dotted value {text:?}"),
            }),
        }
    } else {
        text.parse::<u32>().map(Token::Num).map_err(|_| Error::Lex {
            at,
            msg: format!("number out of range {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_paper_filter() {
        // The exact filter from §2.2 of the paper.
        let toks = lex("131.225.2 and UDP").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Dotted(vec![131, 225, 2]),
                Token::Word("and".into()),
                Token::Word("udp".into()),
            ]
        );
    }

    #[test]
    fn lexes_full_ip_and_ports() {
        let toks = lex("src host 10.0.0.1 && dst port 53").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("src".into()),
                Token::Word("host".into()),
                Token::Dotted(vec![10, 0, 0, 1]),
                Token::AndOp,
                Token::Word("dst".into()),
                Token::Word("port".into()),
                Token::Num(53),
            ]
        );
    }

    #[test]
    fn lexes_cidr() {
        let toks = lex("net 192.168.0.0/16").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("net".into()),
                Token::Dotted(vec![192, 168, 0, 0]),
                Token::Slash,
                Token::Num(16),
            ]
        );
    }

    #[test]
    fn lexes_parens_and_not() {
        let toks = lex("!(tcp or udp)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::NotOp,
                Token::LParen,
                Token::Word("tcp".into()),
                Token::Word("or".into()),
                Token::Word("udp".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn rejects_bad_characters() {
        assert!(matches!(lex("tcp @ udp"), Err(Error::Lex { .. })));
        assert!(matches!(lex("tcp & udp"), Err(Error::Lex { .. })));
        assert!(matches!(lex("1.2.3.4.5"), Err(Error::Lex { .. })));
        assert!(matches!(lex("1..2"), Err(Error::Lex { .. })));
        assert!(matches!(lex("300.1.1.1"), Err(Error::Lex { .. })));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("TCP Or UdP").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("tcp".into()),
                Token::Word("or".into()),
                Token::Word("udp".into()),
            ]
        );
    }
}
