//! AST → classic-BPF code generation.
//!
//! Generation follows the textbook scheme: each sub-expression is compiled
//! against a pair of symbolic labels (true-exit, false-exit); conjunction
//! chains the true edge, disjunction chains the false edge, negation swaps
//! them. A final resolve pass converts labels into the forward `jt`/`jf`
//! byte offsets of the classic encoding.

use crate::ast::{Dir, Expr, Prim, ETH_IP};
use crate::insn::{Insn, JmpOp, Program, Src, Width};

/// The accept length returned for matching packets (tcpdump's default
/// snapshot length as emitted by `tcpdump -d`).
pub const ACCEPT_LEN: u32 = 262_144;

/// Compiles an expression into a verified-shape program.
///
/// # Panics
/// Panics if a jump offset would exceed classic BPF's 255-instruction
/// reach — practically unreachable for the expression sizes this grammar
/// produces (each primitive emits at most ~10 instructions).
pub fn compile(expr: &Expr) -> Program {
    let mut g = Gen::default();
    let lt = g.fresh();
    let lf = g.fresh();
    g.expr(expr, lt, lf);
    g.bind(lt);
    g.emit(Insn::RetK(ACCEPT_LEN));
    g.bind(lf);
    g.emit(Insn::RetK(0));
    g.resolve()
}

/// Symbolic jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Label(usize);

#[derive(Debug)]
enum Item {
    Concrete(Insn),
    /// Conditional jump with symbolic targets.
    Branch(JmpOp, Src, Label, Label),
}

#[derive(Default)]
struct Gen {
    items: Vec<Item>,
    /// label id -> item index it is bound to
    bindings: Vec<Option<usize>>,
}

impl Gen {
    fn fresh(&mut self) -> Label {
        self.bindings.push(None);
        Label(self.bindings.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        assert!(self.bindings[l.0].is_none(), "label bound twice");
        self.bindings[l.0] = Some(self.items.len());
    }

    fn emit(&mut self, i: Insn) {
        self.items.push(Item::Concrete(i));
    }

    fn branch(&mut self, op: JmpOp, src: Src, jt: Label, jf: Label) {
        self.items.push(Item::Branch(op, src, jt, jf));
    }

    fn expr(&mut self, e: &Expr, lt: Label, lf: Label) {
        match e {
            Expr::And(a, b) => {
                let mid = self.fresh();
                self.expr(a, mid, lf);
                self.bind(mid);
                self.expr(b, lt, lf);
            }
            Expr::Or(a, b) => {
                let mid = self.fresh();
                self.expr(a, lt, mid);
                self.bind(mid);
                self.expr(b, lt, lf);
            }
            Expr::Not(a) => self.expr(a, lf, lt),
            Expr::Prim(p) => self.prim(*p, lt, lf),
        }
    }

    fn prim(&mut self, p: Prim, lt: Label, lf: Label) {
        match p {
            Prim::EtherProto(v) => {
                self.emit(Insn::LdAbs(Width::Half, 12));
                self.branch(JmpOp::Eq, Src::K(u32::from(v)), lt, lf);
            }
            Prim::IpProto(proto) => {
                // Mirrors tcpdump's canonical `udp` program: check IPv6
                // carriage first, then IPv4. On the try-v4 path A still
                // holds the ethertype (the v6 block is skipped).
                self.emit(Insn::LdAbs(Width::Half, 12));
                let v6 = self.fresh();
                let try_v4 = self.fresh();
                self.branch(JmpOp::Eq, Src::K(0x86dd), v6, try_v4);
                self.bind(v6);
                self.emit(Insn::LdAbs(Width::Byte, 20));
                self.branch(JmpOp::Eq, Src::K(u32::from(proto)), lt, lf);
                self.bind(try_v4);
                let is_v4 = self.fresh();
                self.branch(JmpOp::Eq, Src::K(u32::from(ETH_IP)), is_v4, lf);
                self.bind(is_v4);
                self.emit(Insn::LdAbs(Width::Byte, 23));
                self.branch(JmpOp::Eq, Src::K(u32::from(proto)), lt, lf);
            }
            Prim::Host(dir, ip) => {
                let addr = u32::from(ip);
                self.addr_match(dir, addr, u32::MAX, lt, lf);
            }
            Prim::Net(dir, addr, mask) => {
                self.addr_match(dir, addr, mask, lt, lf);
            }
            Prim::Port(dir, port) => {
                self.port_match(dir, port, lt, lf);
            }
            Prim::LenLess(n) => {
                self.emit(Insn::LdLen);
                // less N: len <= N  <=>  !(len > N)
                self.branch(JmpOp::Gt, Src::K(n), lf, lt);
            }
            Prim::LenGreater(n) => {
                self.emit(Insn::LdLen);
                self.branch(JmpOp::Ge, Src::K(n), lt, lf);
            }
        }
    }

    fn addr_match(&mut self, dir: Dir, addr: u32, mask: u32, lt: Label, lf: Label) {
        // Require IPv4 first.
        self.emit(Insn::LdAbs(Width::Half, 12));
        let is_ip = self.fresh();
        self.branch(JmpOp::Eq, Src::K(u32::from(ETH_IP)), is_ip, lf);
        self.bind(is_ip);
        let test = |g: &mut Gen, off: u32, jt: Label, jf: Label| {
            g.emit(Insn::LdAbs(Width::Word, off));
            if mask != u32::MAX {
                g.emit(Insn::Alu(crate::insn::AluOp::And, Src::K(mask)));
            }
            g.branch(JmpOp::Eq, Src::K(addr), jt, jf);
        };
        match dir {
            Dir::Src => test(self, 26, lt, lf),
            Dir::Dst => test(self, 30, lt, lf),
            Dir::Either => {
                let try_dst = self.fresh();
                test(self, 26, lt, try_dst);
                self.bind(try_dst);
                test(self, 30, lt, lf);
            }
        }
    }

    fn port_match(&mut self, dir: Dir, port: u16, lt: Label, lf: Label) {
        // IPv4 only, TCP or UDP, not a fragment.
        self.emit(Insn::LdAbs(Width::Half, 12));
        let is_ip = self.fresh();
        self.branch(JmpOp::Eq, Src::K(u32::from(ETH_IP)), is_ip, lf);
        self.bind(is_ip);
        self.emit(Insn::LdAbs(Width::Byte, 23));
        let proto_ok = self.fresh();
        let try_udp = self.fresh();
        self.branch(JmpOp::Eq, Src::K(6), proto_ok, try_udp);
        self.bind(try_udp);
        self.branch(JmpOp::Eq, Src::K(17), proto_ok, lf);
        self.bind(proto_ok);
        self.emit(Insn::LdAbs(Width::Half, 20));
        let not_frag = self.fresh();
        self.branch(JmpOp::Set, Src::K(0x1fff), lf, not_frag);
        self.bind(not_frag);
        self.emit(Insn::LdxMsh(14));
        let want = u32::from(port);
        match dir {
            Dir::Src => {
                self.emit(Insn::LdInd(Width::Half, 14));
                self.branch(JmpOp::Eq, Src::K(want), lt, lf);
            }
            Dir::Dst => {
                self.emit(Insn::LdInd(Width::Half, 16));
                self.branch(JmpOp::Eq, Src::K(want), lt, lf);
            }
            Dir::Either => {
                let try_dst = self.fresh();
                self.emit(Insn::LdInd(Width::Half, 14));
                self.branch(JmpOp::Eq, Src::K(want), lt, try_dst);
                self.bind(try_dst);
                self.emit(Insn::LdInd(Width::Half, 16));
                self.branch(JmpOp::Eq, Src::K(want), lt, lf);
            }
        }
    }

    fn resolve(self) -> Program {
        let Gen { items, bindings } = self;
        // Labels bind to item indices, which are also instruction indices
        // because every item lowers to exactly one instruction.
        let target = |l: Label| -> usize { bindings[l.0].expect("unbound label") };
        items
            .into_iter()
            .enumerate()
            .map(|(idx, item)| match item {
                Item::Concrete(i) => i,
                Item::Branch(op, src, jt, jf) => {
                    let to = |l: Label| -> u8 {
                        let t = target(l);
                        assert!(t > idx, "backward jump generated");
                        let off = t - idx - 1;
                        u8::try_from(off).expect("jump offset exceeds classic BPF reach")
                    };
                    Insn::Jmp(op, src, to(jt), to(jf))
                }
            })
            .collect()
    }
}
