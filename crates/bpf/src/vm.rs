//! The classic BPF interpreter.

use crate::insn::{AluOp, Insn, JmpOp, Program, Src, Width, MEMWORDS};

/// An interpreter instance bound to a program.
///
/// Semantics follow the kernel's classic-BPF interpreter:
/// * loads beyond the packet reject the packet (return 0);
/// * division or modulo by zero rejects the packet;
/// * falling off the end of the program rejects the packet (the verifier
///   normally prevents this);
/// * all arithmetic is 32-bit wrapping, comparisons unsigned.
#[derive(Debug, Clone)]
pub struct Vm<'p> {
    program: &'p Program,
}

impl<'p> Vm<'p> {
    /// Creates a VM over a program.
    pub fn new(program: &'p Program) -> Self {
        Vm { program }
    }

    /// Runs the filter over a packet; returns the accept length (0 rejects).
    pub fn run(&self, pkt: &[u8]) -> u32 {
        let mut a: u32 = 0;
        let mut x: u32 = 0;
        let mut mem = [0u32; MEMWORDS];
        let mut pc: usize = 0;
        // The verifier guarantees termination (forward jumps only); the
        // explicit bound makes the interpreter safe on unverified programs.
        let mut fuel = self.program.len().saturating_mul(2) + 64;

        while pc < self.program.len() {
            if fuel == 0 {
                return 0;
            }
            fuel -= 1;
            let insn = self.program[pc];
            pc += 1;
            match insn {
                Insn::LdAbs(w, k) => match load(pkt, k as usize, w) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdInd(w, k) => match load(pkt, x as usize + k as usize, w) {
                    Some(v) => a = v,
                    None => return 0,
                },
                Insn::LdLen => a = pkt.len() as u32,
                Insn::LdImm(k) => a = k,
                Insn::LdMem(k) => a = mem[k as usize % MEMWORDS],
                Insn::LdxImm(k) => x = k,
                Insn::LdxLen => x = pkt.len() as u32,
                Insn::LdxMem(k) => x = mem[k as usize % MEMWORDS],
                Insn::LdxMsh(k) => match pkt.get(k as usize) {
                    Some(&b) => x = 4 * u32::from(b & 0x0f),
                    None => return 0,
                },
                Insn::St(k) => mem[k as usize % MEMWORDS] = a,
                Insn::Stx(k) => mem[k as usize % MEMWORDS] = x,
                Insn::Alu(op, src) => {
                    let s = match src {
                        Src::K(k) => k,
                        Src::X => x,
                    };
                    a = match op {
                        AluOp::Add => a.wrapping_add(s),
                        AluOp::Sub => a.wrapping_sub(s),
                        AluOp::Mul => a.wrapping_mul(s),
                        AluOp::Div => {
                            if s == 0 {
                                return 0;
                            }
                            a / s
                        }
                        AluOp::Mod => {
                            if s == 0 {
                                return 0;
                            }
                            a % s
                        }
                        AluOp::Or => a | s,
                        AluOp::And => a & s,
                        AluOp::Xor => a ^ s,
                        AluOp::Lsh => a.wrapping_shl(s),
                        AluOp::Rsh => a.wrapping_shr(s),
                    };
                }
                Insn::Neg => a = a.wrapping_neg(),
                Insn::Ja(k) => pc += k as usize,
                Insn::Jmp(op, src, jt, jf) => {
                    let s = match src {
                        Src::K(k) => k,
                        Src::X => x,
                    };
                    let taken = match op {
                        JmpOp::Eq => a == s,
                        JmpOp::Gt => a > s,
                        JmpOp::Ge => a >= s,
                        JmpOp::Set => a & s != 0,
                    };
                    pc += if taken { jt as usize } else { jf as usize };
                }
                Insn::RetK(k) => return k,
                Insn::RetA => return a,
                Insn::Tax => x = a,
                Insn::Txa => a = x,
            }
        }
        0
    }
}

fn load(pkt: &[u8], off: usize, w: Width) -> Option<u32> {
    let end = off.checked_add(w.bytes())?;
    if end > pkt.len() {
        return None;
    }
    Some(match w {
        Width::Byte => u32::from(pkt[off]),
        Width::Half => u32::from(u16::from_be_bytes([pkt[off], pkt[off + 1]])),
        Width::Word => u32::from_be_bytes([pkt[off], pkt[off + 1], pkt[off + 2], pkt[off + 3]]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn::*;
    use crate::insn::{JmpOp, Src, Width};

    /// The canonical `tcpdump -d udp` program for an Ethernet link:
    /// accept IPv4 (or IPv6) packets whose protocol is UDP.
    fn udp_program() -> Program {
        vec![
            LdAbs(Width::Half, 12),               // ethertype
            Jmp(JmpOp::Eq, Src::K(0x86dd), 0, 2), // ip6?
            LdAbs(Width::Byte, 20),               // ip6 next header
            Jmp(JmpOp::Eq, Src::K(17), 3, 4),     // udp?
            Jmp(JmpOp::Eq, Src::K(0x0800), 0, 3), // ip?
            LdAbs(Width::Byte, 23),               // ip protocol
            Jmp(JmpOp::Eq, Src::K(17), 0, 1),     // udp?
            RetK(262144),
            RetK(0),
        ]
    }

    fn udp_packet() -> Vec<u8> {
        let mut b = netproto::PacketBuilder::new();
        b.build(
            &netproto::FlowKey::udp(
                "131.225.2.9".parse().unwrap(),
                53,
                "10.0.0.1".parse().unwrap(),
                53,
            ),
            64,
        )
        .unwrap()
    }

    fn tcp_packet() -> Vec<u8> {
        let mut b = netproto::PacketBuilder::new();
        b.build(
            &netproto::FlowKey::tcp(
                "131.225.2.9".parse().unwrap(),
                53,
                "10.0.0.1".parse().unwrap(),
                53,
            ),
            64,
        )
        .unwrap()
    }

    #[test]
    fn udp_program_accepts_udp() {
        let prog = udp_program();
        assert_eq!(Vm::new(&prog).run(&udp_packet()), 262144);
    }

    #[test]
    fn udp_program_rejects_tcp() {
        let prog = udp_program();
        assert_eq!(Vm::new(&prog).run(&tcp_packet()), 0);
    }

    #[test]
    fn out_of_bounds_load_rejects() {
        let prog = vec![LdAbs(Width::Word, 1000), RetK(1)];
        assert_eq!(Vm::new(&prog).run(&[0u8; 64]), 0);
    }

    #[test]
    fn indirect_load_uses_x() {
        let prog = vec![
            LdxImm(2),
            LdInd(Width::Byte, 1), // pkt[2 + 1]
            RetA,
        ];
        assert_eq!(Vm::new(&prog).run(&[10, 11, 12, 13, 14]), 13);
    }

    #[test]
    fn ldx_msh_computes_ihl() {
        // byte 14 = 0x45 => X = 4 * 5 = 20
        let mut pkt = vec![0u8; 20];
        pkt[14] = 0x45;
        let prog = vec![LdxMsh(14), Txa, RetA];
        assert_eq!(Vm::new(&prog).run(&pkt), 20);
    }

    #[test]
    fn div_by_zero_rejects() {
        let prog = vec![LdImm(8), Alu(crate::insn::AluOp::Div, Src::K(0)), RetK(1)];
        assert_eq!(Vm::new(&prog).run(&[]), 0);
    }

    #[test]
    fn scratch_memory_works() {
        let prog = vec![LdImm(99), St(5), LdImm(0), LdMem(5), RetA];
        assert_eq!(Vm::new(&prog).run(&[]), 99);
    }

    #[test]
    fn arithmetic_wraps() {
        let prog = vec![
            LdImm(u32::MAX),
            Alu(crate::insn::AluOp::Add, Src::K(2)),
            RetA,
        ];
        assert_eq!(Vm::new(&prog).run(&[]), 1);
    }

    #[test]
    fn jset_tests_bits() {
        let prog = vec![
            LdAbs(Width::Byte, 0),
            Jmp(JmpOp::Set, Src::K(0x80), 0, 1),
            RetK(7),
            RetK(0),
        ];
        assert_eq!(Vm::new(&prog).run(&[0x81]), 7);
        assert_eq!(Vm::new(&prog).run(&[0x01]), 0);
    }

    #[test]
    fn empty_program_rejects() {
        let prog: Program = vec![];
        assert_eq!(Vm::new(&prog).run(&[1, 2, 3]), 0);
    }

    #[test]
    fn ret_len_idiom() {
        let prog = vec![LdLen, RetA];
        assert_eq!(Vm::new(&prog).run(&[0u8; 77]), 77);
    }
}
