//! Classic BPF disassembly in the `tcpdump -d` style.

use crate::insn::{AluOp, Insn, JmpOp, Program, Src, Width};

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::Word => "",
        Width::Half => "h",
        Width::Byte => "b",
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Lsh => "lsh",
        AluOp::Rsh => "rsh",
        AluOp::Mod => "mod",
        AluOp::Xor => "xor",
    }
}

fn jmp_name(op: JmpOp) -> &'static str {
    match op {
        JmpOp::Eq => "jeq",
        JmpOp::Gt => "jgt",
        JmpOp::Ge => "jge",
        JmpOp::Set => "jset",
    }
}

fn src_operand(s: Src) -> String {
    match s {
        Src::K(k) => format!("#{k:#x}"),
        Src::X => "x".into(),
    }
}

/// Renders one instruction (without its index) as tcpdump would.
pub fn mnemonic(insn: &Insn, pc: usize) -> String {
    match *insn {
        Insn::LdAbs(w, k) => format!("ld{}       [{k}]", width_suffix(w)),
        Insn::LdInd(w, k) => format!("ld{}       [x + {k}]", width_suffix(w)),
        Insn::LdLen => "ld        len".into(),
        Insn::LdImm(k) => format!("ld        #{k:#x}"),
        Insn::LdMem(k) => format!("ld        M[{k}]"),
        Insn::LdxImm(k) => format!("ldx       #{k:#x}"),
        Insn::LdxLen => "ldx       len".into(),
        Insn::LdxMem(k) => format!("ldx       M[{k}]"),
        Insn::LdxMsh(k) => format!("ldxb      4*([{k}]&0xf)"),
        Insn::St(k) => format!("st        M[{k}]"),
        Insn::Stx(k) => format!("stx       M[{k}]"),
        Insn::Alu(op, s) => format!("{:<9} {}", alu_name(op), src_operand(s)),
        Insn::Neg => "neg".into(),
        Insn::Ja(k) => format!("ja        {}", pc + 1 + k as usize),
        Insn::Jmp(op, s, jt, jf) => format!(
            "{:<9} {:<15} jt {}\tjf {}",
            jmp_name(op),
            src_operand(s),
            pc + 1 + jt as usize,
            pc + 1 + jf as usize
        ),
        Insn::RetK(k) => format!("ret       #{k}"),
        Insn::RetA => "ret       a".into(),
        Insn::Tax => "tax".into(),
        Insn::Txa => "txa".into(),
    }
}

/// Disassembles a whole program, one `(index) mnemonic` line per
/// instruction — the `tcpdump -d` format.
pub fn disassemble(prog: &Program) -> String {
    prog.iter()
        .enumerate()
        .map(|(pc, insn)| format!("({pc:03}) {}\n", mnemonic(insn, pc)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Filter;

    #[test]
    fn paper_filter_disassembles() {
        let f = Filter::compile("131.225.2 and udp").unwrap();
        let text = disassemble(f.program());
        assert!(text.contains("(000) ldh       [12]"), "{text}");
        assert!(text.contains("jeq       #0x800"), "{text}");
        assert!(text.contains("and       #0xffffff00"), "{text}");
        assert!(text.contains("ret       #262144"), "{text}");
        assert!(text.contains("ret       #0"), "{text}");
        // One line per instruction.
        assert_eq!(text.lines().count(), f.program().len());
    }

    #[test]
    fn jump_targets_are_absolute() {
        let f = Filter::compile("udp").unwrap();
        let text = disassemble(f.program());
        // A conditional jump must print absolute instruction indices.
        assert!(
            text.lines().any(|l| l.contains("jt ") && l.contains("jf ")),
            "{text}"
        );
    }

    #[test]
    fn port_filter_shows_msh_idiom() {
        let f = Filter::compile("port 53").unwrap();
        let text = disassemble(f.program());
        assert!(text.contains("ldxb      4*([14]&0xf)"), "{text}");
        assert!(text.contains("[x + 14]"), "{text}");
    }
}
