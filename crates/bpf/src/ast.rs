//! Filter expression AST and the reference evaluator.
//!
//! The evaluator mirrors, branch for branch, the code the compiler emits —
//! including classic BPF's "out-of-bounds load rejects the packet"
//! semantics, which makes `not host X` on a truncated packet *reject*
//! rather than accept. Evaluation is therefore three-valued:
//! `Some(true)` accept, `Some(false)` primitive failed, `None` packet
//! rejected outright (a load fell off the end). The differential property
//! test in `tests/differential.rs` checks compiled-VM agreement against
//! this evaluator on random expressions and packets.

use std::net::Ipv4Addr;

/// Direction qualifier on an address/port primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Match the source field only.
    Src,
    /// Match the destination field only.
    Dst,
    /// Match either field (tcpdump's default).
    Either,
}

/// A primitive test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prim {
    /// `host A.B.C.D` — IPv4 address equality.
    Host(Dir, Ipv4Addr),
    /// `net ...` — IPv4 prefix match; `addr` and `mask` are host-order
    /// 32-bit values (`addr` is pre-masked).
    Net(Dir, u32, u32),
    /// `port N` — TCP/UDP port match (IPv4, unfragmented packets only,
    /// as in tcpdump's generated code).
    Port(Dir, u16),
    /// EtherType equality: `ip`, `ip6`, `arp`.
    EtherProto(u16),
    /// IP protocol equality (checks IPv4 and IPv6 carriage): `tcp`,
    /// `udp`, `icmp`, …
    IpProto(u8),
    /// `less N` — frame length ≤ N.
    LenLess(u32),
    /// `greater N` — frame length ≥ N.
    LenGreater(u32),
}

/// A boolean combination of primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Conjunction (short-circuit, left to right).
    And(Box<Expr>, Box<Expr>),
    /// Disjunction (short-circuit, left to right).
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// A primitive test.
    Prim(Prim),
}

/// EtherType for IPv4.
pub const ETH_IP: u16 = 0x0800;
/// EtherType for ARP.
pub const ETH_ARP: u16 = 0x0806;
/// EtherType for IPv6.
pub const ETH_IP6: u16 = 0x86dd;

impl Expr {
    /// Convenience constructor: `a and b`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a or b`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `not a`.
    #[allow(clippy::should_implement_trait)] // DSL constructor, not ops::Not
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// Reference evaluation with BPF semantics; `true` iff the compiled
    /// program would accept the packet.
    pub fn matches(&self, pkt: &[u8]) -> bool {
        self.eval(pkt) == Some(true)
    }

    /// Three-valued evaluation: `None` means "an out-of-bounds load
    /// rejected the packet" (absorbing, even under `not`).
    pub fn eval(&self, pkt: &[u8]) -> Option<bool> {
        match self {
            Expr::And(a, b) => match a.eval(pkt)? {
                false => Some(false),
                true => b.eval(pkt),
            },
            Expr::Or(a, b) => match a.eval(pkt)? {
                true => Some(true),
                false => b.eval(pkt),
            },
            Expr::Not(a) => a.eval(pkt).map(|v| !v),
            Expr::Prim(p) => p.eval(pkt),
        }
    }
}

impl Prim {
    /// Three-valued primitive evaluation (see [`Expr::eval`]).
    pub fn eval(&self, pkt: &[u8]) -> Option<bool> {
        match *self {
            Prim::EtherProto(v) => Some(ldh(pkt, 12)? == u32::from(v)),
            Prim::IpProto(p) => {
                let ety = ldh(pkt, 12)?;
                if ety == u32::from(ETH_IP6) {
                    Some(ldb(pkt, 20)? == u32::from(p))
                } else if ety == u32::from(ETH_IP) {
                    Some(ldb(pkt, 23)? == u32::from(p))
                } else {
                    Some(false)
                }
            }
            Prim::Host(dir, ip) => {
                if ldh(pkt, 12)? != u32::from(ETH_IP) {
                    return Some(false);
                }
                let want = u32::from(ip);
                match dir {
                    Dir::Src => Some(ld(pkt, 26)? == want),
                    Dir::Dst => Some(ld(pkt, 30)? == want),
                    Dir::Either => {
                        if ld(pkt, 26)? == want {
                            Some(true)
                        } else {
                            Some(ld(pkt, 30)? == want)
                        }
                    }
                }
            }
            Prim::Net(dir, addr, mask) => {
                if ldh(pkt, 12)? != u32::from(ETH_IP) {
                    return Some(false);
                }
                match dir {
                    Dir::Src => Some(ld(pkt, 26)? & mask == addr),
                    Dir::Dst => Some(ld(pkt, 30)? & mask == addr),
                    Dir::Either => {
                        if ld(pkt, 26)? & mask == addr {
                            Some(true)
                        } else {
                            Some(ld(pkt, 30)? & mask == addr)
                        }
                    }
                }
            }
            Prim::Port(dir, port) => {
                if ldh(pkt, 12)? != u32::from(ETH_IP) {
                    return Some(false);
                }
                let proto = ldb(pkt, 23)?;
                if proto != 6 && proto != 17 {
                    return Some(false);
                }
                // Fragmented packets (offset != 0) have no transport header.
                if ldh(pkt, 20)? & 0x1fff != 0 {
                    return Some(false);
                }
                let ihl = 4 * (ldb(pkt, 14)? & 0x0f) as usize;
                let want = u32::from(port);
                match dir {
                    Dir::Src => Some(ldh(pkt, ihl + 14)? == want),
                    Dir::Dst => Some(ldh(pkt, ihl + 16)? == want),
                    Dir::Either => {
                        if ldh(pkt, ihl + 14)? == want {
                            Some(true)
                        } else {
                            Some(ldh(pkt, ihl + 16)? == want)
                        }
                    }
                }
            }
            Prim::LenLess(n) => Some(pkt.len() as u32 <= n),
            Prim::LenGreater(n) => Some(pkt.len() as u32 >= n),
        }
    }
}

fn ldb(pkt: &[u8], off: usize) -> Option<u32> {
    pkt.get(off).map(|&b| u32::from(b))
}

fn ldh(pkt: &[u8], off: usize) -> Option<u32> {
    if off + 2 > pkt.len() {
        None
    } else {
        Some(u32::from(u16::from_be_bytes([pkt[off], pkt[off + 1]])))
    }
}

fn ld(pkt: &[u8], off: usize) -> Option<u32> {
    if off + 4 > pkt.len() {
        None
    } else {
        Some(u32::from_be_bytes([
            pkt[off],
            pkt[off + 1],
            pkt[off + 2],
            pkt[off + 3],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netproto::{FlowKey, PacketBuilder};

    fn udp_pkt(src: &str, dst: &str, sport: u16, dport: u16) -> Vec<u8> {
        PacketBuilder::new()
            .build(
                &FlowKey::udp(src.parse().unwrap(), sport, dst.parse().unwrap(), dport),
                80,
            )
            .unwrap()
    }

    #[test]
    fn host_matches_either_direction() {
        let p = Prim::Host(Dir::Either, "10.0.0.9".parse().unwrap());
        assert!(Expr::Prim(p).matches(&udp_pkt("10.0.0.9", "10.0.0.2", 1, 2)));
        assert!(Expr::Prim(p).matches(&udp_pkt("10.0.0.2", "10.0.0.9", 1, 2)));
        assert!(!Expr::Prim(p).matches(&udp_pkt("10.0.0.2", "10.0.0.3", 1, 2)));
    }

    #[test]
    fn src_dst_are_directional() {
        let src = Expr::Prim(Prim::Host(Dir::Src, "10.0.0.9".parse().unwrap()));
        let dst = Expr::Prim(Prim::Host(Dir::Dst, "10.0.0.9".parse().unwrap()));
        let pkt = udp_pkt("10.0.0.9", "10.0.0.2", 1, 2);
        assert!(src.matches(&pkt));
        assert!(!dst.matches(&pkt));
    }

    #[test]
    fn net_prefix_matches() {
        // 131.225.2.0/24, the paper's filter prefix
        let p = Prim::Net(Dir::Either, 0x83e1_0200, 0xffff_ff00);
        assert!(Expr::Prim(p).matches(&udp_pkt("131.225.2.77", "8.8.8.8", 1, 2)));
        assert!(!Expr::Prim(p).matches(&udp_pkt("131.225.3.77", "8.8.8.8", 1, 2)));
    }

    #[test]
    fn port_matching_requires_udp_or_tcp() {
        let p = Expr::Prim(Prim::Port(Dir::Either, 53));
        assert!(p.matches(&udp_pkt("1.1.1.1", "2.2.2.2", 53, 9)));
        assert!(p.matches(&udp_pkt("1.1.1.1", "2.2.2.2", 9, 53)));
        assert!(!p.matches(&udp_pkt("1.1.1.1", "2.2.2.2", 9, 9)));
    }

    #[test]
    fn fragmented_packet_fails_port_match() {
        let mut pkt = udp_pkt("1.1.1.1", "2.2.2.2", 53, 53);
        pkt[20] = 0x00;
        pkt[21] = 0x10; // fragment offset 16
        assert!(!Expr::Prim(Prim::Port(Dir::Either, 53)).matches(&pkt));
    }

    #[test]
    fn not_of_oob_still_rejects() {
        let e = Expr::not(Expr::Prim(Prim::Host(
            Dir::Either,
            "10.0.0.1".parse().unwrap(),
        )));
        // 14-byte packet: ethertype is readable but the address load falls
        // off the end => packet rejected even under `not`.
        let mut tiny = vec![0u8; 14];
        tiny[12] = 0x08;
        tiny[13] = 0x00;
        assert_eq!(e.eval(&tiny), None);
        assert!(!e.matches(&tiny));
    }

    #[test]
    fn and_or_short_circuit() {
        let t = Expr::Prim(Prim::LenGreater(0));
        let f = Expr::Prim(Prim::LenLess(0));
        let pkt = [0u8; 10];
        assert!(Expr::or(f.clone(), t.clone()).matches(&pkt));
        assert!(!Expr::and(t.clone(), f.clone()).matches(&pkt));
        assert!(Expr::and(t.clone(), t.clone()).matches(&pkt));
        assert!(!Expr::or(f.clone(), f).matches(&pkt));
    }

    #[test]
    fn len_primitives() {
        let pkt = [0u8; 100];
        assert!(Expr::Prim(Prim::LenLess(100)).matches(&pkt));
        assert!(!Expr::Prim(Prim::LenLess(99)).matches(&pkt));
        assert!(Expr::Prim(Prim::LenGreater(100)).matches(&pkt));
        assert!(!Expr::Prim(Prim::LenGreater(101)).matches(&pkt));
    }
}
