//! Static checking of BPF programs, in the style of the kernel's
//! `bpf_check_classic`.
//!
//! Accepted programs are guaranteed to terminate (jumps only move forward)
//! and to keep scratch-memory accesses in bounds. The capture engines run
//! application-supplied filters, so the same trust boundary the kernel
//! enforces applies here.

use crate::insn::{Insn, Program, Src, MEMWORDS};

/// Maximum program length (`BPF_MAXINSNS`).
pub const MAXINSNS: usize = 4096;

/// Verifies a program; returns a human-readable reason on rejection.
pub fn verify(prog: &Program) -> Result<(), String> {
    if prog.is_empty() {
        return Err("empty program".into());
    }
    if prog.len() > MAXINSNS {
        return Err(format!("program too long: {} > {MAXINSNS}", prog.len()));
    }
    for (pc, insn) in prog.iter().enumerate() {
        match *insn {
            Insn::Ja(k) => {
                check_target(prog.len(), pc, k as usize).map_err(|e| format!("insn {pc}: {e}"))?;
            }
            Insn::Jmp(_, _, jt, jf) => {
                check_target(prog.len(), pc, jt as usize)
                    .map_err(|e| format!("insn {pc} (jt): {e}"))?;
                check_target(prog.len(), pc, jf as usize)
                    .map_err(|e| format!("insn {pc} (jf): {e}"))?;
            }
            Insn::LdMem(k) | Insn::LdxMem(k) | Insn::St(k) | Insn::Stx(k)
                if k as usize >= MEMWORDS =>
            {
                return Err(format!("insn {pc}: scratch slot {k} out of range"));
            }
            Insn::Alu(crate::insn::AluOp::Div, Src::K(0))
            | Insn::Alu(crate::insn::AluOp::Mod, Src::K(0)) => {
                return Err(format!("insn {pc}: constant division by zero"));
            }
            _ => {}
        }
    }
    // The last reachable instruction chain must end in a return; the
    // simplest sufficient condition (the kernel's) is that the final
    // instruction is a RET.
    match prog.last() {
        Some(Insn::RetA) | Some(Insn::RetK(_)) => Ok(()),
        _ => Err("program does not end with a return".into()),
    }
}

fn check_target(len: usize, pc: usize, off: usize) -> Result<(), String> {
    // Target is pc + 1 + off; it must land on a real instruction.
    let target = pc + 1 + off;
    if target >= len {
        Err(format!("jump target {target} beyond program end {len}"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn::*;
    use crate::insn::{AluOp, JmpOp, Src, Width};

    #[test]
    fn accepts_valid_program() {
        let prog = vec![
            LdAbs(Width::Half, 12),
            Jmp(JmpOp::Eq, Src::K(0x800), 0, 1),
            RetK(100),
            RetK(0),
        ];
        verify(&prog).unwrap();
    }

    #[test]
    fn rejects_empty() {
        assert!(verify(&vec![]).is_err());
    }

    #[test]
    fn rejects_jump_past_end() {
        let prog = vec![Jmp(JmpOp::Eq, Src::K(1), 5, 0), RetK(0)];
        let err = verify(&prog).unwrap_err();
        assert!(err.contains("jump target"), "{err}");
    }

    #[test]
    fn rejects_ja_past_end() {
        let prog = vec![Ja(100), RetK(0)];
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn rejects_missing_return() {
        let prog = vec![LdImm(1)];
        let err = verify(&prog).unwrap_err();
        assert!(err.contains("return"), "{err}");
    }

    #[test]
    fn rejects_bad_scratch_slot() {
        let prog = vec![St(16), RetK(0)];
        assert!(verify(&prog).is_err());
        let prog = vec![LdMem(99), RetK(0)];
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn rejects_constant_div_by_zero() {
        let prog = vec![LdImm(1), Alu(AluOp::Div, Src::K(0)), RetA];
        assert!(verify(&prog).is_err());
        // Division by X is allowed statically (checked at runtime).
        let prog = vec![LdImm(1), Alu(AluOp::Div, Src::X), RetA];
        verify(&prog).unwrap();
    }

    #[test]
    fn rejects_too_long() {
        let mut prog = vec![LdImm(0); MAXINSNS + 1];
        prog.push(RetK(0));
        assert!(verify(&prog).is_err());
    }

    #[test]
    fn jump_to_last_insn_is_ok() {
        let prog = vec![Jmp(JmpOp::Eq, Src::K(0), 0, 0), RetK(1)];
        verify(&prog).unwrap();
    }
}
