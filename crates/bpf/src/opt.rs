//! Peephole optimization of classic BPF programs.
//!
//! The label-based code generator occasionally produces jump chains
//! (a branch whose target is an unconditional jump) and, after other
//! rewrites, `ja 0` no-ops and unreachable instructions. [`optimize`]
//! performs three semantics-preserving passes:
//!
//! 1. **jump threading** — retarget any jump whose destination is a
//!    `ja k` to that jump's own destination (iterated to a fixed point);
//! 2. **dead-code elimination** — drop instructions unreachable from
//!    instruction 0;
//! 3. **`ja 0` removal** — delete jumps to the next instruction.
//!
//! Passes 2–3 renumber instructions, so every surviving jump offset is
//! rebuilt from an index map. Classic BPF conditional offsets are `u8`;
//! if a rebuilt offset would overflow (impossible for programs our
//! compiler emits, possible for adversarial input), the original program
//! is returned unchanged — optimization is best-effort, never wrong.
//!
//! Equivalence with the unoptimized program is property-tested in
//! `tests/differential.rs`.

use crate::insn::{Insn, Program};

/// Optimizes a verified program. The result is behaviourally equivalent.
pub fn optimize(prog: &Program) -> Program {
    let threaded = thread_jumps(prog);
    match compact(&threaded) {
        Some(p) => p,
        None => threaded,
    }
}

/// Follows chains of unconditional jumps to their final destination.
fn resolve(prog: &Program, mut target: usize) -> usize {
    let mut fuel = prog.len();
    while fuel > 0 {
        match prog.get(target) {
            Some(Insn::Ja(k)) => target = target + 1 + *k as usize,
            _ => break,
        }
        fuel -= 1;
    }
    target
}

fn thread_jumps(prog: &Program) -> Program {
    prog.iter()
        .enumerate()
        .map(|(pc, insn)| match *insn {
            Insn::Ja(k) => {
                let dest = resolve(prog, pc + 1 + k as usize);
                Insn::Ja((dest - pc - 1) as u32)
            }
            Insn::Jmp(op, src, jt, jf) => {
                let t = resolve(prog, pc + 1 + jt as usize);
                let f = resolve(prog, pc + 1 + jf as usize);
                let (jt, jf) = match (u8::try_from(t - pc - 1), u8::try_from(f - pc - 1)) {
                    (Ok(t8), Ok(f8)) => (t8, f8),
                    _ => (jt, jf), // out of reach: keep the chain
                };
                Insn::Jmp(op, src, jt, jf)
            }
            other => other,
        })
        .collect()
}

/// Removes unreachable instructions and `ja 0` no-ops, rebuilding jump
/// offsets. Returns `None` if any rebuilt offset would overflow.
fn compact(prog: &Program) -> Option<Program> {
    // Reachability from instruction 0.
    let mut reachable = vec![false; prog.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if pc >= prog.len() || reachable[pc] {
            continue;
        }
        reachable[pc] = true;
        match prog[pc] {
            Insn::Ja(k) => stack.push(pc + 1 + k as usize),
            Insn::Jmp(_, _, jt, jf) => {
                stack.push(pc + 1 + jt as usize);
                stack.push(pc + 1 + jf as usize);
            }
            Insn::RetA | Insn::RetK(_) => {}
            _ => stack.push(pc + 1),
        }
    }

    // Keep reachable instructions that are not `ja 0`.
    let keep: Vec<bool> = prog
        .iter()
        .enumerate()
        .map(|(pc, insn)| reachable[pc] && !matches!(insn, Insn::Ja(0)))
        .collect();

    // Map old index -> new index (for dropped instructions, the next
    // kept one — exactly what a fall-through or `ja 0` target needs).
    let mut new_index = vec![0usize; prog.len() + 1];
    let mut n = 0usize;
    for (pc, &k) in keep.iter().enumerate() {
        new_index[pc] = n;
        if k {
            n += 1;
        }
    }
    new_index[prog.len()] = n;
    let map = |old: usize| -> usize { new_index[old.min(prog.len())] };

    let mut out = Vec::with_capacity(n);
    for (pc, insn) in prog.iter().enumerate() {
        if !keep[pc] {
            continue;
        }
        let here = map(pc);
        let rebuilt = match *insn {
            Insn::Ja(k) => {
                let dest = map(pc + 1 + k as usize);
                Insn::Ja((dest - here - 1) as u32)
            }
            Insn::Jmp(op, src, jt, jf) => {
                let t = map(pc + 1 + jt as usize);
                let f = map(pc + 1 + jf as usize);
                let t8 = u8::try_from(t.checked_sub(here + 1)?).ok()?;
                let f8 = u8::try_from(f.checked_sub(here + 1)?).ok()?;
                Insn::Jmp(op, src, t8, f8)
            }
            other => other,
        };
        out.push(rebuilt);
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Insn::*;
    use crate::insn::{JmpOp, Src, Width};
    use crate::{verifier, Vm};

    #[test]
    fn threads_through_ja_chains() {
        // jmp -> ja -> ja -> ret
        let prog = vec![
            Jmp(JmpOp::Eq, Src::K(1), 0, 1), // jt -> 1 (ja), jf -> 2 (ja)
            Ja(1),                           // -> 3
            Ja(1),                           // -> 4
            RetK(7),
            RetK(0),
        ];
        let opt = optimize(&prog);
        verifier::verify(&opt).unwrap();
        // Both ja chains collapse; the dead jas are removed.
        assert!(opt.iter().all(|i| !matches!(i, Ja(_))), "{opt:?}");
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn removes_unreachable_code() {
        let prog = vec![
            RetK(1),
            LdImm(99), // unreachable
            RetK(0),   // unreachable
        ];
        let opt = optimize(&prog);
        assert_eq!(opt, vec![RetK(1)]);
    }

    #[test]
    fn removes_ja_zero() {
        let prog = vec![LdAbs(Width::Half, 12), Ja(0), RetA];
        let opt = optimize(&prog);
        assert_eq!(opt, vec![LdAbs(Width::Half, 12), RetA]);
    }

    #[test]
    fn semantics_preserved_on_compiler_output() {
        let exprs = [
            "131.225.2 and udp",
            "(tcp or udp) and not port 53",
            "src net 10.0.0.0/8 or dst host 8.8.8.8",
            "greater 100 and less 1000",
        ];
        let mut builder = netproto::PacketBuilder::new();
        let pkts: Vec<Vec<u8>> = (0..32u16)
            .map(|i| {
                let flow = netproto::FlowKey::udp(
                    std::net::Ipv4Addr::new(131, 225, 2, (i % 8) as u8 + 1),
                    1000 + i,
                    std::net::Ipv4Addr::new(8, 8, 8, 8),
                    if i % 2 == 0 { 53 } else { 80 },
                );
                builder.build(&flow, 64 + usize::from(i) * 16).unwrap()
            })
            .collect();
        for expr in exprs {
            let prog = crate::compiler::compile(&crate::parser::parse(expr).unwrap());
            let opt = optimize(&prog);
            verifier::verify(&opt).unwrap();
            assert!(opt.len() <= prog.len());
            for pkt in &pkts {
                assert_eq!(
                    Vm::new(&prog).run(pkt) > 0,
                    Vm::new(&opt).run(pkt) > 0,
                    "{expr} diverged"
                );
            }
        }
    }

    #[test]
    fn already_optimal_program_unchanged() {
        let prog = vec![
            LdAbs(Width::Half, 12),
            Jmp(JmpOp::Eq, Src::K(0x800), 0, 1),
            RetK(1),
            RetK(0),
        ];
        assert_eq!(optimize(&prog), prog);
    }
}
