//! The classic BPF instruction set.
//!
//! Instructions are represented twice: as the typed enum [`Insn`] (what the
//! compiler emits and the VM executes) and as the raw 8-byte
//! `sock_filter`-compatible encoding [`RawInsn`] (what `tcpdump -ddd`
//! prints and what a kernel would accept). Conversions between the two are
//! lossless for every valid instruction, and tested as such.

/// Number of scratch memory slots (`BPF_MEMWORDS`).
pub const MEMWORDS: usize = 16;

/// Operand source for ALU and jump instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Immediate constant `k`.
    K(u32),
    /// The index register X.
    X,
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// A + src
    Add,
    /// A - src
    Sub,
    /// A * src
    Mul,
    /// A / src (division by zero rejects the packet)
    Div,
    /// A | src
    Or,
    /// A & src
    And,
    /// A << src
    Lsh,
    /// A >> src
    Rsh,
    /// A % src (modulo by zero rejects the packet)
    Mod,
    /// A ^ src
    Xor,
}

/// Jump comparisons (all compare A against the source operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JmpOp {
    /// A == src
    Eq,
    /// A > src (unsigned)
    Gt,
    /// A >= src (unsigned)
    Ge,
    /// A & src != 0
    Set,
}

/// Load width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 8-bit load.
    Byte,
    /// 16-bit big-endian load.
    Half,
    /// 32-bit big-endian load.
    Word,
}

impl Width {
    /// Size of the load in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// A classic BPF instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// A ← packet\[k .. k+w\] (absolute load, big-endian).
    LdAbs(Width, u32),
    /// A ← packet\[X+k .. X+k+w\] (indirect load).
    LdInd(Width, u32),
    /// A ← packet length.
    LdLen,
    /// A ← k.
    LdImm(u32),
    /// A ← M\[k\].
    LdMem(u32),
    /// X ← k.
    LdxImm(u32),
    /// X ← packet length.
    LdxLen,
    /// X ← M\[k\].
    LdxMem(u32),
    /// X ← 4 × (packet\[k\] & 0x0f) — the IPv4 header-length idiom.
    LdxMsh(u32),
    /// M\[k\] ← A.
    St(u32),
    /// M\[k\] ← X.
    Stx(u32),
    /// ALU operation on A.
    Alu(AluOp, Src),
    /// A ← −A (two's complement).
    Neg,
    /// Unconditional jump forward by k instructions.
    Ja(u32),
    /// Conditional jump: if `op(A, src)` jump forward `jt`, else `jf`.
    Jmp(JmpOp, Src, u8, u8),
    /// Return k (accept length; 0 rejects).
    RetK(u32),
    /// Return A.
    RetA,
    /// X ← A.
    Tax,
    /// A ← X.
    Txa,
}

/// A BPF program: a sequence of instructions executed from index 0.
pub type Program = Vec<Insn>;

/// The raw `sock_filter` wire encoding: `{ code, jt, jf, k }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawInsn {
    /// Opcode (class | size | mode | op | src).
    pub code: u16,
    /// Jump-if-true offset.
    pub jt: u8,
    /// Jump-if-false offset.
    pub jf: u8,
    /// Generic constant field.
    pub k: u32,
}

// Opcode class constants (from <linux/bpf_common.h>).
const BPF_LD: u16 = 0x00;
const BPF_LDX: u16 = 0x01;
const BPF_ST: u16 = 0x02;
const BPF_STX: u16 = 0x03;
const BPF_ALU: u16 = 0x04;
const BPF_JMP: u16 = 0x05;
const BPF_RET: u16 = 0x06;
const BPF_MISC: u16 = 0x07;

const BPF_W: u16 = 0x00;
const BPF_H: u16 = 0x08;
const BPF_B: u16 = 0x10;

const BPF_IMM: u16 = 0x00;
const BPF_ABS: u16 = 0x20;
const BPF_IND: u16 = 0x40;
const BPF_MEM: u16 = 0x60;
const BPF_LEN: u16 = 0x80;
const BPF_MSH: u16 = 0xa0;

const BPF_ADD: u16 = 0x00;
const BPF_SUB: u16 = 0x10;
const BPF_MUL: u16 = 0x20;
const BPF_DIV: u16 = 0x30;
const BPF_OR: u16 = 0x40;
const BPF_AND: u16 = 0x50;
const BPF_LSH: u16 = 0x60;
const BPF_RSH: u16 = 0x70;
const BPF_NEG: u16 = 0x80;
const BPF_MOD: u16 = 0x90;
const BPF_XOR: u16 = 0xa0;

const BPF_JA: u16 = 0x00;
const BPF_JEQ: u16 = 0x10;
const BPF_JGT: u16 = 0x20;
const BPF_JGE: u16 = 0x30;
const BPF_JSET: u16 = 0x40;

const BPF_K: u16 = 0x00;
const BPF_X: u16 = 0x08;

const BPF_A: u16 = 0x10;

const BPF_TAX: u16 = 0x00;
const BPF_TXA: u16 = 0x80;

fn width_bits(w: Width) -> u16 {
    match w {
        Width::Word => BPF_W,
        Width::Half => BPF_H,
        Width::Byte => BPF_B,
    }
}

fn alu_bits(op: AluOp) -> u16 {
    match op {
        AluOp::Add => BPF_ADD,
        AluOp::Sub => BPF_SUB,
        AluOp::Mul => BPF_MUL,
        AluOp::Div => BPF_DIV,
        AluOp::Or => BPF_OR,
        AluOp::And => BPF_AND,
        AluOp::Lsh => BPF_LSH,
        AluOp::Rsh => BPF_RSH,
        AluOp::Mod => BPF_MOD,
        AluOp::Xor => BPF_XOR,
    }
}

fn jmp_bits(op: JmpOp) -> u16 {
    match op {
        JmpOp::Eq => BPF_JEQ,
        JmpOp::Gt => BPF_JGT,
        JmpOp::Ge => BPF_JGE,
        JmpOp::Set => BPF_JSET,
    }
}

fn src_bits(s: Src) -> (u16, u32) {
    match s {
        Src::K(k) => (BPF_K, k),
        Src::X => (BPF_X, 0),
    }
}

impl Insn {
    /// Encodes to the raw `sock_filter` form.
    pub fn encode(&self) -> RawInsn {
        let (code, jt, jf, k) = match *self {
            Insn::LdAbs(w, k) => (BPF_LD | width_bits(w) | BPF_ABS, 0, 0, k),
            Insn::LdInd(w, k) => (BPF_LD | width_bits(w) | BPF_IND, 0, 0, k),
            Insn::LdLen => (BPF_LD | BPF_W | BPF_LEN, 0, 0, 0),
            Insn::LdImm(k) => (BPF_LD | BPF_W | BPF_IMM, 0, 0, k),
            Insn::LdMem(k) => (BPF_LD | BPF_W | BPF_MEM, 0, 0, k),
            Insn::LdxImm(k) => (BPF_LDX | BPF_W | BPF_IMM, 0, 0, k),
            Insn::LdxLen => (BPF_LDX | BPF_W | BPF_LEN, 0, 0, 0),
            Insn::LdxMem(k) => (BPF_LDX | BPF_W | BPF_MEM, 0, 0, k),
            Insn::LdxMsh(k) => (BPF_LDX | BPF_B | BPF_MSH, 0, 0, k),
            Insn::St(k) => (BPF_ST, 0, 0, k),
            Insn::Stx(k) => (BPF_STX, 0, 0, k),
            Insn::Alu(op, s) => {
                let (sb, k) = src_bits(s);
                (BPF_ALU | alu_bits(op) | sb, 0, 0, k)
            }
            Insn::Neg => (BPF_ALU | BPF_NEG, 0, 0, 0),
            Insn::Ja(k) => (BPF_JMP | BPF_JA, 0, 0, k),
            Insn::Jmp(op, s, jt, jf) => {
                let (sb, k) = src_bits(s);
                (BPF_JMP | jmp_bits(op) | sb, jt, jf, k)
            }
            Insn::RetK(k) => (BPF_RET | BPF_K, 0, 0, k),
            Insn::RetA => (BPF_RET | BPF_A, 0, 0, 0),
            Insn::Tax => (BPF_MISC | BPF_TAX, 0, 0, 0),
            Insn::Txa => (BPF_MISC | BPF_TXA, 0, 0, 0),
        };
        RawInsn { code, jt, jf, k }
    }

    /// Decodes from the raw form; `None` for invalid opcodes.
    pub fn decode(raw: RawInsn) -> Option<Insn> {
        let class = raw.code & 0x07;
        let k = raw.k;
        Some(match class {
            BPF_LD => {
                let mode = raw.code & 0xe0;
                let width = match raw.code & 0x18 {
                    BPF_W => Width::Word,
                    BPF_H => Width::Half,
                    BPF_B => Width::Byte,
                    _ => return None,
                };
                match mode {
                    BPF_ABS => Insn::LdAbs(width, k),
                    BPF_IND => Insn::LdInd(width, k),
                    BPF_IMM if width == Width::Word => Insn::LdImm(k),
                    BPF_MEM if width == Width::Word => Insn::LdMem(k),
                    BPF_LEN if width == Width::Word => Insn::LdLen,
                    _ => return None,
                }
            }
            BPF_LDX => match (raw.code & 0xe0, raw.code & 0x18) {
                (BPF_IMM, BPF_W) => Insn::LdxImm(k),
                (BPF_MEM, BPF_W) => Insn::LdxMem(k),
                (BPF_LEN, BPF_W) => Insn::LdxLen,
                (BPF_MSH, BPF_B) => Insn::LdxMsh(k),
                _ => return None,
            },
            BPF_ST => Insn::St(k),
            BPF_STX => Insn::Stx(k),
            BPF_ALU => {
                let op = raw.code & 0xf0;
                if op == BPF_NEG {
                    return Some(Insn::Neg);
                }
                let src = if raw.code & BPF_X != 0 {
                    Src::X
                } else {
                    Src::K(k)
                };
                let op = match op {
                    BPF_ADD => AluOp::Add,
                    BPF_SUB => AluOp::Sub,
                    BPF_MUL => AluOp::Mul,
                    BPF_DIV => AluOp::Div,
                    BPF_OR => AluOp::Or,
                    BPF_AND => AluOp::And,
                    BPF_LSH => AluOp::Lsh,
                    BPF_RSH => AluOp::Rsh,
                    BPF_MOD => AluOp::Mod,
                    BPF_XOR => AluOp::Xor,
                    _ => return None,
                };
                Insn::Alu(op, src)
            }
            BPF_JMP => {
                let op = raw.code & 0xf0;
                if op == BPF_JA {
                    return Some(Insn::Ja(k));
                }
                let src = if raw.code & BPF_X != 0 {
                    Src::X
                } else {
                    Src::K(k)
                };
                let op = match op {
                    BPF_JEQ => JmpOp::Eq,
                    BPF_JGT => JmpOp::Gt,
                    BPF_JGE => JmpOp::Ge,
                    BPF_JSET => JmpOp::Set,
                    _ => return None,
                };
                Insn::Jmp(op, src, raw.jt, raw.jf)
            }
            BPF_RET => match raw.code & 0x18 {
                BPF_A => Insn::RetA,
                BPF_K => Insn::RetK(k),
                _ => return None,
            },
            BPF_MISC => match raw.code & 0xf8 {
                BPF_TAX => Insn::Tax,
                BPF_TXA => Insn::Txa,
                _ => return None,
            },
            _ => return None,
        })
    }
}

/// Encodes a whole program to raw form.
pub fn encode_program(prog: &[Insn]) -> Vec<RawInsn> {
    prog.iter().map(Insn::encode).collect()
}

/// Decodes a raw program; `None` if any instruction is invalid.
pub fn decode_program(raw: &[RawInsn]) -> Option<Program> {
    raw.iter().map(|&r| Insn::decode(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_insns() -> Vec<Insn> {
        use AluOp::*;
        use Insn::*;
        use JmpOp::*;
        let mut v = vec![
            LdAbs(Width::Word, 26),
            LdAbs(Width::Half, 12),
            LdAbs(Width::Byte, 23),
            LdInd(Width::Word, 4),
            LdInd(Width::Half, 14),
            LdInd(Width::Byte, 0),
            LdLen,
            LdImm(0xdead_beef),
            LdMem(3),
            LdxImm(7),
            LdxLen,
            LdxMem(15),
            LdxMsh(14),
            St(0),
            Stx(15),
            Neg,
            Ja(9),
            RetK(65535),
            RetA,
            Tax,
            Txa,
        ];
        for op in [Add, Sub, Mul, Div, Or, And, Lsh, Rsh, Mod, Xor] {
            v.push(Alu(op, Src::K(3)));
            v.push(Alu(op, Src::X));
        }
        for op in [Eq, Gt, Ge, Set] {
            v.push(Jmp(op, Src::K(0x0800), 1, 2));
            v.push(Jmp(op, Src::X, 0, 5));
        }
        v
    }

    #[test]
    fn encode_decode_roundtrip_all() {
        for insn in all_sample_insns() {
            let raw = insn.encode();
            assert_eq!(Insn::decode(raw), Some(insn), "raw={raw:?}");
        }
    }

    #[test]
    fn known_tcpdump_encoding() {
        // `tcpdump -dd udp` canonical first instruction:
        // { 0x28, 0, 0, 0x0000000c } = ldh [12]
        assert_eq!(
            Insn::LdAbs(Width::Half, 12).encode(),
            RawInsn {
                code: 0x28,
                jt: 0,
                jf: 0,
                k: 12
            }
        );
        // { 0x15, 0, 5, 0x00000800 } = jeq #0x800 jt 0 jf 5 shape
        assert_eq!(
            Insn::Jmp(JmpOp::Eq, Src::K(0x800), 0, 5).encode(),
            RawInsn {
                code: 0x15,
                jt: 0,
                jf: 5,
                k: 0x800
            }
        );
        // { 0x30, 0, 0, 0x00000017 } = ldb [23]
        assert_eq!(
            Insn::LdAbs(Width::Byte, 23).encode(),
            RawInsn {
                code: 0x30,
                jt: 0,
                jf: 0,
                k: 23
            }
        );
        // { 0xb1, 0, 0, 0x0000000e } = ldxb 4*([14]&0xf)
        assert_eq!(
            Insn::LdxMsh(14).encode(),
            RawInsn {
                code: 0xb1,
                jt: 0,
                jf: 0,
                k: 14
            }
        );
        // { 0x6, 0, 0, 0x00040000 } = ret #262144
        assert_eq!(
            Insn::RetK(0x40000).encode(),
            RawInsn {
                code: 0x06,
                jt: 0,
                jf: 0,
                k: 0x40000
            }
        );
    }

    #[test]
    fn invalid_raw_decodes_to_none() {
        assert_eq!(
            Insn::decode(RawInsn {
                code: 0xffff,
                jt: 0,
                jf: 0,
                k: 0
            }),
            None
        );
    }

    #[test]
    fn program_roundtrip() {
        let prog = all_sample_insns();
        let raw = encode_program(&prog);
        assert_eq!(decode_program(&raw), Some(prog));
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
    }
}
