//! # bpf — classic BPF virtual machine and filter compiler
//!
//! The paper's `pkt_handler` workload is "capture a packet and apply a
//! Berkeley Packet Filter *x* times" with the filter `131.225.2 and UDP`
//! (§2.2). To make that workload genuine rather than a stand-in, this
//! crate implements:
//!
//! * the classic BPF instruction set ([`insn::Insn`]) with the raw
//!   `sock_filter`-compatible encoding ([`insn::RawInsn`]);
//! * an interpreter ([`vm::Vm`]) with kernel-compatible semantics
//!   (out-of-bounds loads reject the packet, division by zero rejects);
//! * a static [`verifier`] in the style of the kernel's `bpf_check_classic`
//!   (forward jumps only, in-bounds targets, valid scratch slots);
//! * a compiler ([`compiler::compile`]) for a tcpdump-subset expression
//!   grammar — `host`/`net`/`port` qualifiers with `src`/`dst` direction,
//!   protocol primitives (`ip`, `ip6`, `arp`, `tcp`, `udp`), frame-length
//!   tests (`less`, `greater`) and `and`/`or`/`not` with parentheses;
//! * a reference evaluator ([`ast::Expr::eval`]) used by the
//!   differential property tests: for every expression and packet,
//!   compiled-program output must equal direct AST evaluation.
//!
//! ```
//! use bpf::Filter;
//!
//! let filter = Filter::compile("131.225.2 and udp").unwrap();
//! let mut builder = netproto::PacketBuilder::new();
//! let pkt = builder.build(&netproto::FlowKey::udp(
//!     "131.225.2.9".parse().unwrap(), 53,
//!     "10.0.0.1".parse().unwrap(), 53), 64).unwrap();
//! assert!(filter.matches(&pkt));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod compiler;
pub mod disasm;
pub mod insn;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod verifier;
pub mod vm;

pub use ast::Expr;
pub use insn::{Insn, Program, RawInsn};
pub use vm::Vm;

/// Errors from compiling or verifying a filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error at byte offset.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// Description of the problem.
        msg: String,
    },
    /// Parse error.
    Parse(String),
    /// Verifier rejection.
    Verify(String),
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::Lex { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Verify(m) => write!(f, "verifier: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// A compiled, verified packet filter.
///
/// This is the type applications hold; it wraps the verified [`Program`]
/// and runs it through the VM per packet.
#[derive(Debug, Clone)]
pub struct Filter {
    program: Program,
    source: String,
}

impl Filter {
    /// Compiles and verifies a tcpdump-style expression.
    pub fn compile(expr: &str) -> Result<Self, Error> {
        let ast = parser::parse(expr)?;
        let program = compiler::compile(&ast);
        verifier::verify(&program).map_err(Error::Verify)?;
        Ok(Filter {
            program,
            source: expr.to_string(),
        })
    }

    /// Compiles, optimizes (jump threading + dead-code elimination) and
    /// verifies an expression — `pcap_compile` with optimization on.
    pub fn compile_optimized(expr: &str) -> Result<Self, Error> {
        let ast = parser::parse(expr)?;
        let program = opt::optimize(&compiler::compile(&ast));
        verifier::verify(&program).map_err(Error::Verify)?;
        Ok(Filter {
            program,
            source: expr.to_string(),
        })
    }

    /// Disassembles the program in the `tcpdump -d` format.
    pub fn disassemble(&self) -> String {
        disasm::disassemble(&self.program)
    }

    /// Wraps an already-built program (verifies it first).
    pub fn from_program(program: Program) -> Result<Self, Error> {
        verifier::verify(&program).map_err(Error::Verify)?;
        Ok(Filter {
            program,
            source: String::new(),
        })
    }

    /// Runs the filter; true if the packet is accepted.
    pub fn matches(&self, packet: &[u8]) -> bool {
        vm::Vm::new(&self.program).run(packet) > 0
    }

    /// The accept length the filter returns for this packet (0 = reject).
    pub fn run(&self, packet: &[u8]) -> u32 {
        vm::Vm::new(&self.program).run(packet)
    }

    /// The underlying instruction sequence.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The source expression, if compiled from text.
    pub fn source(&self) -> &str {
        &self.source
    }
}
