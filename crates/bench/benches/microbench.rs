//! Criterion microbenchmarks for the hot paths of the reproduction.
//!
//! These measure the real (non-simulated) costs: BPF compilation and
//! per-packet filtering (the `pkt_handler` workload), Toeplitz hashing
//! (RSS steering), ring-buffer-pool operations (the WireCAP data path),
//! packet building/parsing, and pcap savefile I/O.
//!
//! Run with `cargo bench -p bench`.

use bpf::Filter;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use netproto::{FlowKey, PacketBuilder};
use nicsim::rss::RssHasher;
use std::net::Ipv4Addr;
use wirecap::pool::RingBufferPool;
use wirecap::WireCapConfig;

fn sample_flow(i: u16) -> FlowKey {
    FlowKey::udp(
        Ipv4Addr::new(131, 225, 2, (i % 250) as u8 + 1),
        9_000 + i,
        Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
        443,
    )
}

fn bench_bpf(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpf");
    g.bench_function("compile_paper_filter", |b| {
        b.iter(|| Filter::compile(black_box("131.225.2 and UDP")).unwrap())
    });

    let filter = Filter::compile("131.225.2 and UDP").unwrap();
    let pkt = PacketBuilder::new().build(&sample_flow(1), 64).unwrap();
    g.throughput(Throughput::Elements(1));
    g.bench_function("match_64b_packet", |b| {
        b.iter(|| filter.matches(black_box(&pkt)))
    });

    // The paper's pkt_handler inner loop: the filter applied 300 times.
    g.throughput(Throughput::Elements(300));
    g.bench_function("pkt_handler_x300", |b| {
        b.iter(|| {
            let mut v = false;
            for _ in 0..300 {
                v = filter.matches(black_box(&pkt));
            }
            v
        })
    });
    g.finish();
}

fn bench_rss(c: &mut Criterion) {
    let mut g = c.benchmark_group("rss");
    let hasher = RssHasher::default();
    let flow = sample_flow(7);
    g.throughput(Throughput::Elements(1));
    g.bench_function("toeplitz_hash_flow", |b| {
        b.iter(|| hasher.hash_flow(black_box(&flow)))
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring_buffer_pool");
    // One full WireCAP cycle: M DMA landings, capture, recycle. This is
    // the per-chunk cost the capture thread pays.
    let cfg = WireCapConfig::basic(256, 100, 0);
    g.throughput(Throughput::Elements(256));
    g.bench_function("dma_capture_recycle_chunk_m256", |b| {
        let mut pool = RingBufferPool::open(0, 0, &cfg);
        b.iter(|| {
            for t in 0..256u64 {
                assert!(pool.on_dma(t));
            }
            let (metas, _) = pool.capture_full();
            for meta in &metas {
                pool.recycle(meta).unwrap();
            }
            pool.replenish();
        })
    });
    g.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut g = c.benchmark_group("netproto");
    let mut builder = PacketBuilder::new();
    let flow = sample_flow(3);
    g.throughput(Throughput::Elements(1));
    g.bench_function("build_64b_frame", |b| {
        b.iter(|| builder.build(black_box(&flow), 64).unwrap())
    });
    let frame = PacketBuilder::new().build(&flow, 1500).unwrap();
    g.bench_function("parse_frame", |b| {
        b.iter(|| netproto::parse_frame(black_box(&frame)).unwrap())
    });
    g.finish();
}

fn bench_savefile(c: &mut Criterion) {
    let mut g = c.benchmark_group("pcap_savefile");
    let packets: Vec<netproto::Packet> = {
        let mut b = PacketBuilder::new();
        (0..1_000u16)
            .map(|i| {
                b.build_packet(u64::from(i) * 1_000, &sample_flow(i), 300)
                    .unwrap()
            })
            .collect()
    };
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("write_1k_packets", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(400_000);
            pcap::savefile::write_file(
                &mut buf,
                black_box(&packets),
                pcap::Precision::Nanos,
                65_535,
            )
            .unwrap();
            buf
        })
    });
    let mut file = Vec::new();
    pcap::savefile::write_file(&mut file, &packets, pcap::Precision::Nanos, 65_535).unwrap();
    g.bench_function("read_1k_packets", |b| {
        b.iter(|| pcap::savefile::read_file(black_box(&file[..])).unwrap())
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    // End-to-end simulation throughput: how many simulated wire-rate
    // packets per second of wall-clock the WireCAP model sustains.
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("wirecap_100k_wire_rate_packets", |b| {
        b.iter(|| {
            let cfg = engines::EngineConfig::paper(300);
            let mut gen = traffic::WireRateGen::paper_burst(100_000);
            apps::harness::run(
                apps::harness::EngineKind::WireCap(WireCapConfig::basic(256, 500, 300)),
                1,
                cfg,
                &mut gen,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bpf,
    bench_rss,
    bench_pool,
    bench_packets,
    bench_savefile,
    bench_simulation
);
criterion_main!(benches);
